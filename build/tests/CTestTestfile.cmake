# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/fresque_integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/record_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/engine_unit_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_node_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_bridge_test[1]_include.cmake")
include("/root/repo/build/tests/collector_edge_test[1]_include.cmake")
include("/root/repo/build/tests/conservation_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_vectors_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/grand_tour_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/randomer_statistics_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_store_test[1]_include.cmake")
