file(REMOVE_RECURSE
  "CMakeFiles/collector_edge_test.dir/collector_edge_test.cc.o"
  "CMakeFiles/collector_edge_test.dir/collector_edge_test.cc.o.d"
  "collector_edge_test"
  "collector_edge_test.pdb"
  "collector_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
