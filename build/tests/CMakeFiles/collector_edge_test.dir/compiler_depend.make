# Empty compiler generated dependencies file for collector_edge_test.
# This may be replaced when dependencies are built.
