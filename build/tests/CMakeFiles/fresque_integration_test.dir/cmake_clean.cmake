file(REMOVE_RECURSE
  "CMakeFiles/fresque_integration_test.dir/fresque_integration_test.cc.o"
  "CMakeFiles/fresque_integration_test.dir/fresque_integration_test.cc.o.d"
  "fresque_integration_test"
  "fresque_integration_test.pdb"
  "fresque_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
