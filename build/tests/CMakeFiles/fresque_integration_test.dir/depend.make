# Empty dependencies file for fresque_integration_test.
# This may be replaced when dependencies are built.
