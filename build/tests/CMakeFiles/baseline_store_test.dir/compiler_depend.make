# Empty compiler generated dependencies file for baseline_store_test.
# This may be replaced when dependencies are built.
