file(REMOVE_RECURSE
  "CMakeFiles/baseline_store_test.dir/baseline_store_test.cc.o"
  "CMakeFiles/baseline_store_test.dir/baseline_store_test.cc.o.d"
  "baseline_store_test"
  "baseline_store_test.pdb"
  "baseline_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
