file(REMOVE_RECURSE
  "CMakeFiles/cloud_node_test.dir/cloud_node_test.cc.o"
  "CMakeFiles/cloud_node_test.dir/cloud_node_test.cc.o.d"
  "cloud_node_test"
  "cloud_node_test.pdb"
  "cloud_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
