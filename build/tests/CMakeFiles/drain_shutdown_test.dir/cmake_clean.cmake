file(REMOVE_RECURSE
  "CMakeFiles/drain_shutdown_test.dir/drain_shutdown_test.cc.o"
  "CMakeFiles/drain_shutdown_test.dir/drain_shutdown_test.cc.o.d"
  "drain_shutdown_test"
  "drain_shutdown_test.pdb"
  "drain_shutdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drain_shutdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
