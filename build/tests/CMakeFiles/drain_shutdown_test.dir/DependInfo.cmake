
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/drain_shutdown_test.cc" "tests/CMakeFiles/drain_shutdown_test.dir/drain_shutdown_test.cc.o" "gcc" "tests/CMakeFiles/drain_shutdown_test.dir/drain_shutdown_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fresque_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fresque_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fresque_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/fresque_client.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/fresque_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fresque_net.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fresque_index.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/fresque_record.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fresque_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
