# Empty compiler generated dependencies file for drain_shutdown_test.
# This may be replaced when dependencies are built.
