# Empty dependencies file for engine_unit_test.
# This may be replaced when dependencies are built.
