file(REMOVE_RECURSE
  "CMakeFiles/engine_unit_test.dir/engine_unit_test.cc.o"
  "CMakeFiles/engine_unit_test.dir/engine_unit_test.cc.o.d"
  "engine_unit_test"
  "engine_unit_test.pdb"
  "engine_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
