# Empty compiler generated dependencies file for randomer_statistics_test.
# This may be replaced when dependencies are built.
