file(REMOVE_RECURSE
  "CMakeFiles/randomer_statistics_test.dir/randomer_statistics_test.cc.o"
  "CMakeFiles/randomer_statistics_test.dir/randomer_statistics_test.cc.o.d"
  "randomer_statistics_test"
  "randomer_statistics_test.pdb"
  "randomer_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomer_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
