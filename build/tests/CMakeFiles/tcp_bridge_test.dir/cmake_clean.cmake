file(REMOVE_RECURSE
  "CMakeFiles/tcp_bridge_test.dir/tcp_bridge_test.cc.o"
  "CMakeFiles/tcp_bridge_test.dir/tcp_bridge_test.cc.o.d"
  "tcp_bridge_test"
  "tcp_bridge_test.pdb"
  "tcp_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
