# Empty compiler generated dependencies file for tcp_bridge_test.
# This may be replaced when dependencies are built.
