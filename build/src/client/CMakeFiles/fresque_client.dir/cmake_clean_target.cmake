file(REMOVE_RECURSE
  "libfresque_client.a"
)
