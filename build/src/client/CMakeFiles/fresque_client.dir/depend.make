# Empty dependencies file for fresque_client.
# This may be replaced when dependencies are built.
