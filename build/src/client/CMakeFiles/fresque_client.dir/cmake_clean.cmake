file(REMOVE_RECURSE
  "CMakeFiles/fresque_client.dir/client.cc.o"
  "CMakeFiles/fresque_client.dir/client.cc.o.d"
  "libfresque_client.a"
  "libfresque_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
