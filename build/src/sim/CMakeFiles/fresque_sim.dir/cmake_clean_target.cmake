file(REMOVE_RECURSE
  "libfresque_sim.a"
)
