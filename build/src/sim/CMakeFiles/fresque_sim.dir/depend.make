# Empty dependencies file for fresque_sim.
# This may be replaced when dependencies are built.
