file(REMOVE_RECURSE
  "CMakeFiles/fresque_sim.dir/cost_model.cc.o"
  "CMakeFiles/fresque_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/fresque_sim.dir/pipeline.cc.o"
  "CMakeFiles/fresque_sim.dir/pipeline.cc.o.d"
  "libfresque_sim.a"
  "libfresque_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
