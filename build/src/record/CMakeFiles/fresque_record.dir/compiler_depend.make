# Empty compiler generated dependencies file for fresque_record.
# This may be replaced when dependencies are built.
