file(REMOVE_RECURSE
  "CMakeFiles/fresque_record.dir/dataset.cc.o"
  "CMakeFiles/fresque_record.dir/dataset.cc.o.d"
  "CMakeFiles/fresque_record.dir/parser.cc.o"
  "CMakeFiles/fresque_record.dir/parser.cc.o.d"
  "CMakeFiles/fresque_record.dir/record.cc.o"
  "CMakeFiles/fresque_record.dir/record.cc.o.d"
  "CMakeFiles/fresque_record.dir/schema.cc.o"
  "CMakeFiles/fresque_record.dir/schema.cc.o.d"
  "CMakeFiles/fresque_record.dir/secure_codec.cc.o"
  "CMakeFiles/fresque_record.dir/secure_codec.cc.o.d"
  "CMakeFiles/fresque_record.dir/value.cc.o"
  "CMakeFiles/fresque_record.dir/value.cc.o.d"
  "libfresque_record.a"
  "libfresque_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
