
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/record/dataset.cc" "src/record/CMakeFiles/fresque_record.dir/dataset.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/dataset.cc.o.d"
  "/root/repo/src/record/parser.cc" "src/record/CMakeFiles/fresque_record.dir/parser.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/parser.cc.o.d"
  "/root/repo/src/record/record.cc" "src/record/CMakeFiles/fresque_record.dir/record.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/record.cc.o.d"
  "/root/repo/src/record/schema.cc" "src/record/CMakeFiles/fresque_record.dir/schema.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/schema.cc.o.d"
  "/root/repo/src/record/secure_codec.cc" "src/record/CMakeFiles/fresque_record.dir/secure_codec.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/secure_codec.cc.o.d"
  "/root/repo/src/record/value.cc" "src/record/CMakeFiles/fresque_record.dir/value.cc.o" "gcc" "src/record/CMakeFiles/fresque_record.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
