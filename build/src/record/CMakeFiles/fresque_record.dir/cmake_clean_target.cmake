file(REMOVE_RECURSE
  "libfresque_record.a"
)
