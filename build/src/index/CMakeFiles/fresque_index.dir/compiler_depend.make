# Empty compiler generated dependencies file for fresque_index.
# This may be replaced when dependencies are built.
