
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/binning.cc" "src/index/CMakeFiles/fresque_index.dir/binning.cc.o" "gcc" "src/index/CMakeFiles/fresque_index.dir/binning.cc.o.d"
  "/root/repo/src/index/index.cc" "src/index/CMakeFiles/fresque_index.dir/index.cc.o" "gcc" "src/index/CMakeFiles/fresque_index.dir/index.cc.o.d"
  "/root/repo/src/index/layout.cc" "src/index/CMakeFiles/fresque_index.dir/layout.cc.o" "gcc" "src/index/CMakeFiles/fresque_index.dir/layout.cc.o.d"
  "/root/repo/src/index/matching.cc" "src/index/CMakeFiles/fresque_index.dir/matching.cc.o" "gcc" "src/index/CMakeFiles/fresque_index.dir/matching.cc.o.d"
  "/root/repo/src/index/overflow.cc" "src/index/CMakeFiles/fresque_index.dir/overflow.cc.o" "gcc" "src/index/CMakeFiles/fresque_index.dir/overflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fresque_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
