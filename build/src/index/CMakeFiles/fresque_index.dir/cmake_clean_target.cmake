file(REMOVE_RECURSE
  "libfresque_index.a"
)
