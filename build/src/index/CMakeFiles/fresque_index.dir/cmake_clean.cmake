file(REMOVE_RECURSE
  "CMakeFiles/fresque_index.dir/binning.cc.o"
  "CMakeFiles/fresque_index.dir/binning.cc.o.d"
  "CMakeFiles/fresque_index.dir/index.cc.o"
  "CMakeFiles/fresque_index.dir/index.cc.o.d"
  "CMakeFiles/fresque_index.dir/layout.cc.o"
  "CMakeFiles/fresque_index.dir/layout.cc.o.d"
  "CMakeFiles/fresque_index.dir/matching.cc.o"
  "CMakeFiles/fresque_index.dir/matching.cc.o.d"
  "CMakeFiles/fresque_index.dir/overflow.cc.o"
  "CMakeFiles/fresque_index.dir/overflow.cc.o.d"
  "libfresque_index.a"
  "libfresque_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
