
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bucketization.cc" "src/baseline/CMakeFiles/fresque_baseline.dir/bucketization.cc.o" "gcc" "src/baseline/CMakeFiles/fresque_baseline.dir/bucketization.cc.o.d"
  "/root/repo/src/baseline/ope.cc" "src/baseline/CMakeFiles/fresque_baseline.dir/ope.cc.o" "gcc" "src/baseline/CMakeFiles/fresque_baseline.dir/ope.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
