file(REMOVE_RECURSE
  "libfresque_baseline.a"
)
