# Empty dependencies file for fresque_baseline.
# This may be replaced when dependencies are built.
