file(REMOVE_RECURSE
  "CMakeFiles/fresque_baseline.dir/bucketization.cc.o"
  "CMakeFiles/fresque_baseline.dir/bucketization.cc.o.d"
  "CMakeFiles/fresque_baseline.dir/ope.cc.o"
  "CMakeFiles/fresque_baseline.dir/ope.cc.o.d"
  "libfresque_baseline.a"
  "libfresque_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
