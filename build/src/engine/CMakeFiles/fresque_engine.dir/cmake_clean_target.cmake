file(REMOVE_RECURSE
  "libfresque_engine.a"
)
