
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cloud_node.cc" "src/engine/CMakeFiles/fresque_engine.dir/cloud_node.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/cloud_node.cc.o.d"
  "/root/repo/src/engine/collector_nodes.cc" "src/engine/CMakeFiles/fresque_engine.dir/collector_nodes.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/collector_nodes.cc.o.d"
  "/root/repo/src/engine/dummy_schedule.cc" "src/engine/CMakeFiles/fresque_engine.dir/dummy_schedule.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/dummy_schedule.cc.o.d"
  "/root/repo/src/engine/fresque_collector.cc" "src/engine/CMakeFiles/fresque_engine.dir/fresque_collector.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/fresque_collector.cc.o.d"
  "/root/repo/src/engine/pined_rq.cc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rq.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rq.cc.o.d"
  "/root/repo/src/engine/pined_rqpp.cc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rqpp.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rqpp.cc.o.d"
  "/root/repo/src/engine/pined_rqpp_parallel.cc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rqpp_parallel.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/pined_rqpp_parallel.cc.o.d"
  "/root/repo/src/engine/randomer.cc" "src/engine/CMakeFiles/fresque_engine.dir/randomer.cc.o" "gcc" "src/engine/CMakeFiles/fresque_engine.dir/randomer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fresque_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/record/CMakeFiles/fresque_record.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fresque_index.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fresque_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/fresque_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
