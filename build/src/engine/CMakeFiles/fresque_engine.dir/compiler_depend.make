# Empty compiler generated dependencies file for fresque_engine.
# This may be replaced when dependencies are built.
