file(REMOVE_RECURSE
  "CMakeFiles/fresque_engine.dir/cloud_node.cc.o"
  "CMakeFiles/fresque_engine.dir/cloud_node.cc.o.d"
  "CMakeFiles/fresque_engine.dir/collector_nodes.cc.o"
  "CMakeFiles/fresque_engine.dir/collector_nodes.cc.o.d"
  "CMakeFiles/fresque_engine.dir/dummy_schedule.cc.o"
  "CMakeFiles/fresque_engine.dir/dummy_schedule.cc.o.d"
  "CMakeFiles/fresque_engine.dir/fresque_collector.cc.o"
  "CMakeFiles/fresque_engine.dir/fresque_collector.cc.o.d"
  "CMakeFiles/fresque_engine.dir/pined_rq.cc.o"
  "CMakeFiles/fresque_engine.dir/pined_rq.cc.o.d"
  "CMakeFiles/fresque_engine.dir/pined_rqpp.cc.o"
  "CMakeFiles/fresque_engine.dir/pined_rqpp.cc.o.d"
  "CMakeFiles/fresque_engine.dir/pined_rqpp_parallel.cc.o"
  "CMakeFiles/fresque_engine.dir/pined_rqpp_parallel.cc.o.d"
  "CMakeFiles/fresque_engine.dir/randomer.cc.o"
  "CMakeFiles/fresque_engine.dir/randomer.cc.o.d"
  "libfresque_engine.a"
  "libfresque_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
