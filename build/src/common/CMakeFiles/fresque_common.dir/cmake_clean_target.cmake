file(REMOVE_RECURSE
  "libfresque_common.a"
)
