# Empty compiler generated dependencies file for fresque_common.
# This may be replaced when dependencies are built.
