file(REMOVE_RECURSE
  "CMakeFiles/fresque_common.dir/bytes.cc.o"
  "CMakeFiles/fresque_common.dir/bytes.cc.o.d"
  "CMakeFiles/fresque_common.dir/clock.cc.o"
  "CMakeFiles/fresque_common.dir/clock.cc.o.d"
  "CMakeFiles/fresque_common.dir/logging.cc.o"
  "CMakeFiles/fresque_common.dir/logging.cc.o.d"
  "CMakeFiles/fresque_common.dir/stats.cc.o"
  "CMakeFiles/fresque_common.dir/stats.cc.o.d"
  "CMakeFiles/fresque_common.dir/status.cc.o"
  "CMakeFiles/fresque_common.dir/status.cc.o.d"
  "libfresque_common.a"
  "libfresque_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
