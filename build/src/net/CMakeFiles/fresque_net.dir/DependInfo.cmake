
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/fresque_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/fresque_net.dir/message.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/fresque_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/fresque_net.dir/node.cc.o.d"
  "/root/repo/src/net/payloads.cc" "src/net/CMakeFiles/fresque_net.dir/payloads.cc.o" "gcc" "src/net/CMakeFiles/fresque_net.dir/payloads.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/fresque_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/fresque_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/tcp_bridge.cc" "src/net/CMakeFiles/fresque_net.dir/tcp_bridge.cc.o" "gcc" "src/net/CMakeFiles/fresque_net.dir/tcp_bridge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fresque_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fresque_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
