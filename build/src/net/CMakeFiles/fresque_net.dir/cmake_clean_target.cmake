file(REMOVE_RECURSE
  "libfresque_net.a"
)
