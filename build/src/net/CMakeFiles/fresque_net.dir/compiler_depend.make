# Empty compiler generated dependencies file for fresque_net.
# This may be replaced when dependencies are built.
