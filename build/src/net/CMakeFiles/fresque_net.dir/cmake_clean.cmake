file(REMOVE_RECURSE
  "CMakeFiles/fresque_net.dir/message.cc.o"
  "CMakeFiles/fresque_net.dir/message.cc.o.d"
  "CMakeFiles/fresque_net.dir/node.cc.o"
  "CMakeFiles/fresque_net.dir/node.cc.o.d"
  "CMakeFiles/fresque_net.dir/payloads.cc.o"
  "CMakeFiles/fresque_net.dir/payloads.cc.o.d"
  "CMakeFiles/fresque_net.dir/tcp.cc.o"
  "CMakeFiles/fresque_net.dir/tcp.cc.o.d"
  "CMakeFiles/fresque_net.dir/tcp_bridge.cc.o"
  "CMakeFiles/fresque_net.dir/tcp_bridge.cc.o.d"
  "libfresque_net.a"
  "libfresque_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
