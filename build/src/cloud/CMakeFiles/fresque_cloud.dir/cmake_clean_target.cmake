file(REMOVE_RECURSE
  "libfresque_cloud.a"
)
