# Empty dependencies file for fresque_cloud.
# This may be replaced when dependencies are built.
