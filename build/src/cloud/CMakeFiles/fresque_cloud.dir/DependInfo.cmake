
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/server.cc" "src/cloud/CMakeFiles/fresque_cloud.dir/server.cc.o" "gcc" "src/cloud/CMakeFiles/fresque_cloud.dir/server.cc.o.d"
  "/root/repo/src/cloud/snapshot.cc" "src/cloud/CMakeFiles/fresque_cloud.dir/snapshot.cc.o" "gcc" "src/cloud/CMakeFiles/fresque_cloud.dir/snapshot.cc.o.d"
  "/root/repo/src/cloud/storage.cc" "src/cloud/CMakeFiles/fresque_cloud.dir/storage.cc.o" "gcc" "src/cloud/CMakeFiles/fresque_cloud.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fresque_index.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fresque_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fresque_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
