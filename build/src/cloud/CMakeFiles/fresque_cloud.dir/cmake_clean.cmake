file(REMOVE_RECURSE
  "CMakeFiles/fresque_cloud.dir/server.cc.o"
  "CMakeFiles/fresque_cloud.dir/server.cc.o.d"
  "CMakeFiles/fresque_cloud.dir/snapshot.cc.o"
  "CMakeFiles/fresque_cloud.dir/snapshot.cc.o.d"
  "CMakeFiles/fresque_cloud.dir/storage.cc.o"
  "CMakeFiles/fresque_cloud.dir/storage.cc.o.d"
  "libfresque_cloud.a"
  "libfresque_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
