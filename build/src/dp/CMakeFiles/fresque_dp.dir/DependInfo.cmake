
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/budget.cc" "src/dp/CMakeFiles/fresque_dp.dir/budget.cc.o" "gcc" "src/dp/CMakeFiles/fresque_dp.dir/budget.cc.o.d"
  "/root/repo/src/dp/individual_ledger.cc" "src/dp/CMakeFiles/fresque_dp.dir/individual_ledger.cc.o" "gcc" "src/dp/CMakeFiles/fresque_dp.dir/individual_ledger.cc.o.d"
  "/root/repo/src/dp/laplace.cc" "src/dp/CMakeFiles/fresque_dp.dir/laplace.cc.o" "gcc" "src/dp/CMakeFiles/fresque_dp.dir/laplace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fresque_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fresque_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
