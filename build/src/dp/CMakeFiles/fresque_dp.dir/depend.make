# Empty dependencies file for fresque_dp.
# This may be replaced when dependencies are built.
