file(REMOVE_RECURSE
  "CMakeFiles/fresque_dp.dir/budget.cc.o"
  "CMakeFiles/fresque_dp.dir/budget.cc.o.d"
  "CMakeFiles/fresque_dp.dir/individual_ledger.cc.o"
  "CMakeFiles/fresque_dp.dir/individual_ledger.cc.o.d"
  "CMakeFiles/fresque_dp.dir/laplace.cc.o"
  "CMakeFiles/fresque_dp.dir/laplace.cc.o.d"
  "libfresque_dp.a"
  "libfresque_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
