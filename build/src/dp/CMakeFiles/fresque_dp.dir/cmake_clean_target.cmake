file(REMOVE_RECURSE
  "libfresque_dp.a"
)
