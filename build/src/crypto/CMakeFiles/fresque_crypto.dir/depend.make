# Empty dependencies file for fresque_crypto.
# This may be replaced when dependencies are built.
