file(REMOVE_RECURSE
  "CMakeFiles/fresque_crypto.dir/aes.cc.o"
  "CMakeFiles/fresque_crypto.dir/aes.cc.o.d"
  "CMakeFiles/fresque_crypto.dir/cbc.cc.o"
  "CMakeFiles/fresque_crypto.dir/cbc.cc.o.d"
  "CMakeFiles/fresque_crypto.dir/chacha20.cc.o"
  "CMakeFiles/fresque_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/fresque_crypto.dir/hmac.cc.o"
  "CMakeFiles/fresque_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/fresque_crypto.dir/key_manager.cc.o"
  "CMakeFiles/fresque_crypto.dir/key_manager.cc.o.d"
  "CMakeFiles/fresque_crypto.dir/sha256.cc.o"
  "CMakeFiles/fresque_crypto.dir/sha256.cc.o.d"
  "libfresque_crypto.a"
  "libfresque_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
