file(REMOVE_RECURSE
  "libfresque_crypto.a"
)
