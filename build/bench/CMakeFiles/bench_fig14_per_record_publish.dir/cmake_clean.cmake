file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_per_record_publish.dir/bench_fig14_per_record_publish.cc.o"
  "CMakeFiles/bench_fig14_per_record_publish.dir/bench_fig14_per_record_publish.cc.o.d"
  "bench_fig14_per_record_publish"
  "bench_fig14_per_record_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_per_record_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
