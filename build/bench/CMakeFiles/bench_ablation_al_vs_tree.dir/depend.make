# Empty dependencies file for bench_ablation_al_vs_tree.
# This may be replaced when dependencies are built.
