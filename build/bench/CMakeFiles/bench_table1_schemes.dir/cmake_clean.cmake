file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_schemes.dir/bench_table1_schemes.cc.o"
  "CMakeFiles/bench_table1_schemes.dir/bench_table1_schemes.cc.o.d"
  "bench_table1_schemes"
  "bench_table1_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
