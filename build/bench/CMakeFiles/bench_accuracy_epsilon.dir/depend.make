# Empty dependencies file for bench_accuracy_epsilon.
# This may be replaced when dependencies are built.
