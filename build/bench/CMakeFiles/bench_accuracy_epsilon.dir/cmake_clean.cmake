file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_epsilon.dir/bench_accuracy_epsilon.cc.o"
  "CMakeFiles/bench_accuracy_epsilon.dir/bench_accuracy_epsilon.cc.o.d"
  "bench_accuracy_epsilon"
  "bench_accuracy_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
