# Empty dependencies file for bench_fig13_publishing_time.
# This may be replaced when dependencies are built.
