file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_matching.dir/bench_fig15_matching.cc.o"
  "CMakeFiles/bench_fig15_matching.dir/bench_fig15_matching.cc.o.d"
  "bench_fig15_matching"
  "bench_fig15_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
