# Empty dependencies file for bench_fig15_matching.
# This may be replaced when dependencies are built.
