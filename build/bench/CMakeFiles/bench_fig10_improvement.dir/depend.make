# Empty dependencies file for bench_fig10_improvement.
# This may be replaced when dependencies are built.
