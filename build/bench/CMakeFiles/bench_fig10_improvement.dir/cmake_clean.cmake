file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_improvement.dir/bench_fig10_improvement.cc.o"
  "CMakeFiles/bench_fig10_improvement.dir/bench_fig10_improvement.cc.o.d"
  "bench_fig10_improvement"
  "bench_fig10_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
