# Empty compiler generated dependencies file for bench_fig11_vs_parallel.
# This may be replaced when dependencies are built.
