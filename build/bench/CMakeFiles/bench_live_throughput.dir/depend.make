# Empty dependencies file for bench_live_throughput.
# This may be replaced when dependencies are built.
