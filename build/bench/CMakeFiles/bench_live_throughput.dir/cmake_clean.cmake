file(REMOVE_RECURSE
  "CMakeFiles/bench_live_throughput.dir/bench_live_throughput.cc.o"
  "CMakeFiles/bench_live_throughput.dir/bench_live_throughput.cc.o.d"
  "bench_live_throughput"
  "bench_live_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
