# Empty dependencies file for bench_fig17_alpha_publish.
# This may be replaced when dependencies are built.
