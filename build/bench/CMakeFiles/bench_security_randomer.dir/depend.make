# Empty dependencies file for bench_security_randomer.
# This may be replaced when dependencies are built.
