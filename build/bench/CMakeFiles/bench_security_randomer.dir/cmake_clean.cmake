file(REMOVE_RECURSE
  "CMakeFiles/bench_security_randomer.dir/bench_security_randomer.cc.o"
  "CMakeFiles/bench_security_randomer.dir/bench_security_randomer.cc.o.d"
  "bench_security_randomer"
  "bench_security_randomer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_randomer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
