# Empty dependencies file for bench_fig18_randomer_throughput.
# This may be replaced when dependencies are built.
