# Empty dependencies file for bench_fig16_budget_publish.
# This may be replaced when dependencies are built.
