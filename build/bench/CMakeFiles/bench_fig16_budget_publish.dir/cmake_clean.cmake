file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_budget_publish.dir/bench_fig16_budget_publish.cc.o"
  "CMakeFiles/bench_fig16_budget_publish.dir/bench_fig16_budget_publish.cc.o.d"
  "bench_fig16_budget_publish"
  "bench_fig16_budget_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_budget_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
