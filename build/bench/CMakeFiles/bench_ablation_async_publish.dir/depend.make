# Empty dependencies file for bench_ablation_async_publish.
# This may be replaced when dependencies are built.
