file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_publish.dir/bench_ablation_async_publish.cc.o"
  "CMakeFiles/bench_ablation_async_publish.dir/bench_ablation_async_publish.cc.o.d"
  "bench_ablation_async_publish"
  "bench_ablation_async_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
