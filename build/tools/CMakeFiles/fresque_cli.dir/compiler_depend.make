# Empty compiler generated dependencies file for fresque_cli.
# This may be replaced when dependencies are built.
