file(REMOVE_RECURSE
  "CMakeFiles/fresque_cli.dir/fresque_cli.cc.o"
  "CMakeFiles/fresque_cli.dir/fresque_cli.cc.o.d"
  "fresque_cli"
  "fresque_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fresque_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
