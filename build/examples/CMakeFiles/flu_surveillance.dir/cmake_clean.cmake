file(REMOVE_RECURSE
  "CMakeFiles/flu_surveillance.dir/flu_surveillance.cpp.o"
  "CMakeFiles/flu_surveillance.dir/flu_surveillance.cpp.o.d"
  "flu_surveillance"
  "flu_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flu_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
