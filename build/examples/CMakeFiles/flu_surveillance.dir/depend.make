# Empty dependencies file for flu_surveillance.
# This may be replaced when dependencies are built.
