# Empty dependencies file for attacker_view.
# This may be replaced when dependencies are built.
