file(REMOVE_RECURSE
  "CMakeFiles/attacker_view.dir/attacker_view.cpp.o"
  "CMakeFiles/attacker_view.dir/attacker_view.cpp.o.d"
  "attacker_view"
  "attacker_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacker_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
