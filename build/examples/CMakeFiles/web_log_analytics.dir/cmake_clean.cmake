file(REMOVE_RECURSE
  "CMakeFiles/web_log_analytics.dir/web_log_analytics.cpp.o"
  "CMakeFiles/web_log_analytics.dir/web_log_analytics.cpp.o.d"
  "web_log_analytics"
  "web_log_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_log_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
