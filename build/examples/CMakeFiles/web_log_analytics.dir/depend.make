# Empty dependencies file for web_log_analytics.
# This may be replaced when dependencies are built.
