#include <gtest/gtest.h>

#include <vector>

#include "cloud/server.h"
#include "cloud/storage.h"
#include "crypto/chacha20.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/payloads.h"

namespace fresque {
namespace cloud {
namespace {

index::DomainBinning TinyBinning() {
  auto b = index::DomainBinning::Create(0, 10, 1);  // 10 leaves
  return std::move(b).ValueOrDie();
}

net::IndexPublication MakePublication(const index::DomainBinning& binning,
                                      const std::vector<int64_t>& counts) {
  auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), binning, counts);
  index::OverflowArrays ovf(binning.num_bins(), 1);
  return net::IndexPublication(std::move(idx).ValueOrDie(), std::move(ovf));
}

// ---------------------------------------------------------------- Storage

TEST(SegmentStorageTest, AppendReadRoundTrip) {
  SegmentStorage storage(64);  // tiny segments to force rollover
  std::vector<PhysicalAddress> addrs;
  for (int i = 0; i < 20; ++i) {
    Bytes rec(10, static_cast<uint8_t>(i));
    addrs.push_back(storage.Append(rec));
  }
  EXPECT_GT(storage.num_segments(), 1u);
  EXPECT_EQ(storage.num_records(), 20u);
  EXPECT_EQ(storage.total_bytes(), 200u);
  for (int i = 0; i < 20; ++i) {
    auto rec = storage.Read(addrs[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, Bytes(10, static_cast<uint8_t>(i)));
  }
}

TEST(SegmentStorageTest, OversizedRecordStillStored) {
  SegmentStorage storage(16);
  Bytes big(100, 0x7);
  auto addr = storage.Append(big);
  auto back = storage.Read(addr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(SegmentStorageTest, ReadRejectsBadAddress) {
  SegmentStorage storage;
  storage.Append(Bytes(8, 1));
  PhysicalAddress bad{.segment = 9, .offset = 0, .length = 8};
  EXPECT_FALSE(storage.Read(bad).ok());
  PhysicalAddress past{.segment = 0, .offset = 4, .length = 100};
  EXPECT_FALSE(storage.Read(past).ok());
}

// ------------------------------------------------------------- CloudServer

TEST(CloudServerTest, LifecycleErrors) {
  CloudServer server(TinyBinning());
  EXPECT_TRUE(server.StartPublication(0).ok());
  EXPECT_EQ(server.StartPublication(0).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(server.IngestRecord(7, 0, Bytes{1}).ok());  // unknown pn

  auto pub = MakePublication(server.binning(), std::vector<int64_t>(10, 1));
  EXPECT_TRUE(server.PublishIndexed(0, std::move(pub)).ok());
  // Double publish and post-publish ingest both fail.
  auto pub2 = MakePublication(server.binning(), std::vector<int64_t>(10, 1));
  EXPECT_FALSE(server.PublishIndexed(0, std::move(pub2)).ok());
  EXPECT_FALSE(server.IngestRecord(0, 1, Bytes{1}).ok());
}

TEST(CloudServerTest, MetadataMatchingGroupsByLeaf) {
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  // 3 records in leaf 2, 1 in leaf 5.
  (void)server.IngestRecord(0, 2, Bytes{1});
  (void)server.IngestRecord(0, 2, Bytes{2});
  (void)server.IngestRecord(0, 5, Bytes{3});
  (void)server.IngestRecord(0, 2, Bytes{4});

  std::vector<int64_t> counts(10, 0);
  counts[2] = 3;
  counts[5] = 1;
  auto stats = server.PublishIndexed(
      0, MakePublication(server.binning(), counts));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_matched, 4u);

  // Query leaf 2 only: [2, 2.5].
  auto result = server.ExecuteQuery({2.0, 2.5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->indexed_records.size(), 3u);
  // Query everything.
  auto all = server.ExecuteQuery({0.0, 9.9});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->indexed_records.size(), 4u);
}

TEST(CloudServerTest, NegativeLeafIsPrunedButOthersSurvive) {
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestRecord(0, 2, Bytes{1});
  (void)server.IngestRecord(0, 3, Bytes{2});
  std::vector<int64_t> counts(10, 0);
  counts[2] = -1;  // noisy count went negative
  counts[3] = 1;
  auto stats =
      server.PublishIndexed(0, MakePublication(server.binning(), counts));
  ASSERT_TRUE(stats.ok());
  auto result = server.ExecuteQuery({0.0, 9.9});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->indexed_records.size(), 1u);  // leaf 2 unreachable
  EXPECT_EQ(result->indexed_records[0].e_record, Bytes{2});
}

TEST(CloudServerTest, TaggedMatchingRebuildsPointers) {
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(3).ok());
  index::MatchingTable table;
  (void)table.Add(111, 4);
  (void)table.Add(222, 4);
  (void)table.Add(333, 8);
  (void)server.IngestTagged(3, 111, Bytes{0xA});
  (void)server.IngestTagged(3, 222, Bytes{0xB});
  (void)server.IngestTagged(3, 333, Bytes{0xC});

  std::vector<int64_t> counts(10, 0);
  counts[4] = 2;
  counts[8] = 1;
  auto stats = server.PublishWithMatchingTable(
      3, MakePublication(server.binning(), counts), table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_matched, 3u);

  auto result = server.ExecuteQuery({4.0, 4.9});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->indexed_records.size(), 2u);
}

TEST(CloudServerTest, TaggedMatchingDropsMissingTags) {
  // A streamed tag with no matching-table entry joins to nothing: the
  // publication still installs, the orphan record is stored but
  // unreachable, and the rest of the join is unaffected.
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestTagged(0, 999, Bytes{1});  // no table entry
  (void)server.IngestTagged(0, 111, Bytes{2});
  index::MatchingTable table;
  (void)table.Add(111, 4);
  std::vector<int64_t> counts(10, 0);
  counts[4] = 1;
  auto stats = server.PublishWithMatchingTable(
      0, MakePublication(server.binning(), counts), table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_matched, 1u);
  auto all = server.ExecuteQuery({0.0, 9.9});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->indexed_records.size(), 1u);
  EXPECT_EQ(all->indexed_records[0].e_record, Bytes{2});
}

TEST(CloudServerTest, OpenPublicationFiltersByLeafInterval) {
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestRecord(0, 1, Bytes{1});
  (void)server.IngestRecord(0, 7, Bytes{2});
  // No publish: unindexed path.
  auto result = server.ExecuteQuery({1.0, 1.9});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unindexed_records.size(), 1u);
  EXPECT_EQ(result->indexed_records.size(), 0u);
  auto all = server.ExecuteQuery({0.0, 9.9});
  EXPECT_EQ(all->unindexed_records.size(), 2u);
}

TEST(CloudServerTest, OverflowSlotsReturnedForTouchedLeaves) {
  CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  crypto::SecureRandom rng(1);
  auto layout = index::IndexLayout::Create(10, 4);
  std::vector<int64_t> counts(10, 1);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), server.binning(), counts);
  index::OverflowArrays ovf(10, 2);
  (void)ovf.Insert(3, Bytes{0xEE}, &rng);
  ASSERT_TRUE(ovf.PadWithDummies([&] { return rng.RandomBytes(4); }).ok());
  auto stats = server.PublishIndexed(
      0, net::IndexPublication(std::move(idx).ValueOrDie(), std::move(ovf)));
  ASSERT_TRUE(stats.ok());

  auto result = server.ExecuteQuery({3.0, 3.5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->overflow_records.size(), 2u);  // real + padding slot
}

TEST(CloudServerTest, PublishBatchStoresAndPublishesAtOnce) {
  CloudServer server(TinyBinning());
  std::vector<std::pair<uint32_t, Bytes>> batch = {
      {1, Bytes{0x1}}, {1, Bytes{0x2}}, {6, Bytes{0x3}}};
  std::vector<int64_t> counts(10, 0);
  counts[1] = 2;
  counts[6] = 1;
  auto stats = server.PublishBatch(
      9, MakePublication(server.binning(), counts), batch);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_matched, 3u);
  EXPECT_EQ(server.total_records(), 3u);
  auto result = server.ExecuteQuery({0.0, 9.9});
  EXPECT_EQ(result->indexed_records.size(), 3u);
}

TEST(CloudServerTest, ApproximateCountSumsPublishedIndexes) {
  CloudServer server(TinyBinning());
  for (uint64_t pn = 0; pn < 2; ++pn) {
    ASSERT_TRUE(server.StartPublication(pn).ok());
    std::vector<int64_t> counts(10, 0);
    counts[3] = 5 + static_cast<int64_t>(pn);
    counts[7] = 2;
    ASSERT_TRUE(
        server
            .PublishIndexed(pn, MakePublication(server.binning(), counts))
            .ok());
  }
  // Leaf 3 only: 5 + 6 across the two publications.
  EXPECT_EQ(server.ApproximateCount({3.0, 3.9}), 11);
  // Whole domain: 5+2 + 6+2.
  EXPECT_EQ(server.ApproximateCount({0.0, 9.9}), 15);
  // Open publications contribute nothing.
  ASSERT_TRUE(server.StartPublication(9).ok());
  (void)server.IngestRecord(9, 3, Bytes{1});
  EXPECT_EQ(server.ApproximateCount({3.0, 3.9}), 11);
}

TEST(CloudServerTest, QuerySpansMultiplePublications) {
  CloudServer server(TinyBinning());
  for (uint64_t pn = 0; pn < 3; ++pn) {
    ASSERT_TRUE(server.StartPublication(pn).ok());
    (void)server.IngestRecord(pn, 5, Bytes{static_cast<uint8_t>(pn)});
    std::vector<int64_t> counts(10, 0);
    counts[5] = 1;
    ASSERT_TRUE(
        server
            .PublishIndexed(pn, MakePublication(server.binning(), counts))
            .ok());
  }
  auto result = server.ExecuteQuery({5.0, 5.5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->indexed_records.size(), 3u);
  // Each carries its publication number for client-side key derivation.
  std::set<uint64_t> pns;
  for (const auto& rr : result->indexed_records) pns.insert(rr.pn);
  EXPECT_EQ(pns.size(), 3u);
  EXPECT_EQ(server.num_publications(), 3u);
}

}  // namespace
}  // namespace cloud
}  // namespace fresque
