#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "engine/pined_rq.h"
#include "engine/pined_rqpp.h"
#include "engine/pined_rqpp_parallel.h"
#include "record/dataset.h"

namespace fresque {
namespace {

struct Fixture {
  record::DatasetSpec spec;
  engine::CollectorConfig cfg;
  cloud::CloudServer server;
  engine::CloudNode cloud_node;
  crypto::KeyManager keys;
  std::vector<record::Record> truth;

  explicit Fixture(record::DatasetSpec s, size_t workers = 2)
      : spec(std::move(s)),
        cfg(MakeConfig()),
        server(MakeBinning()),
        cloud_node(&server),
        keys(Bytes(32, 0xAB)) {
    cfg.num_computing_nodes = workers;
    cloud_node.Start();
  }

  engine::CollectorConfig MakeConfig() {
    engine::CollectorConfig c;
    c.dataset = spec;
    c.epsilon = 1.0;
    c.delta = 0.99;
    c.seed = 4242;
    return c;
  }

  index::DomainBinning MakeBinning() {
    auto b = index::DomainBinning::Create(spec.domain_min, spec.domain_max,
                                          spec.bin_width);
    return std::move(b).ValueOrDie();
  }

  template <typename Collector>
  void Drive(Collector& collector, size_t n, int intervals) {
    auto gen = record::MakeGenerator(spec, 31337);
    ASSERT_TRUE(gen.ok());
    for (int iv = 0; iv < intervals; ++iv) {
      for (size_t i = 0; i < n; ++i) {
        std::string line = (*gen)->NextLine();
        auto rec = spec.parser->Parse(line);
        ASSERT_TRUE(rec.ok());
        truth.push_back(std::move(*rec));
        ASSERT_TRUE(collector.Ingest(line).ok());
      }
      ASSERT_TRUE(collector.Publish().ok());
    }
    ASSERT_TRUE(collector.Shutdown().ok());
    cloud_node.Shutdown();
    ASSERT_TRUE(cloud_node.first_error().ok())
        << cloud_node.first_error().ToString();
  }

  void CheckRecall(double min_recall) {
    client::Client client(keys, &spec.parser->schema());
    index::RangeQuery q{spec.domain_min, spec.domain_max};
    auto acc = client.QueryWithGroundTruth(server, q, truth);
    ASSERT_TRUE(acc.ok()) << acc.status().ToString();
    EXPECT_GT(acc->expected, 0u);
    EXPECT_GE(acc->Recall(), min_recall);
    EXPECT_LE(acc->Recall(), 1.0);
    EXPECT_EQ(acc->matched, acc->returned);
  }
};

TEST(PinedRqTest, BatchPublishAndQueryGowalla) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  Fixture fx(*spec);
  engine::PinedRqCollector collector(fx.cfg, fx.keys, fx.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  fx.Drive(collector, 2000, 2);

  EXPECT_EQ(fx.server.num_publications(), 2u);
  EXPECT_EQ(collector.parse_errors(), 0u);
  auto reports = collector.Reports();
  ASSERT_EQ(reports.size(), 2u);
  // All the work happened at publish: the stall must be visible.
  EXPECT_GT(reports[0].dispatcher_millis, 0.0);
  EXPECT_EQ(reports[0].real_records, 2000u);
  fx.CheckRecall(0.75);
}

TEST(PinedRqTest, PublishEmptyIntervalStillPublishes) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  Fixture fx(*spec);
  engine::PinedRqCollector collector(fx.cfg, fx.keys, fx.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  ASSERT_TRUE(collector.Publish().ok());  // pure-noise publication
  ASSERT_TRUE(collector.Shutdown().ok());
  fx.cloud_node.Shutdown();
  EXPECT_TRUE(fx.cloud_node.first_error().ok());
  EXPECT_EQ(fx.server.num_publications(), 1u);
  auto reports = collector.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].real_records, 0u);
  // Positive noise still materializes dummies in an empty publication.
  EXPECT_GT(reports[0].dummy_records, 0u);
}

TEST(PinedRqPpTest, StreamingPublishAndQueryGowalla) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  Fixture fx(*spec);
  engine::PinedRqPpCollector collector(fx.cfg, fx.keys,
                                       fx.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  fx.Drive(collector, 2000, 2);

  EXPECT_EQ(collector.parse_errors(), 0u);
  // Tagged streaming: publications complete only after the matching
  // table arrives, and matching re-reads every stored record.
  auto stats = fx.cloud_node.matching_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].records_matched, 2000u);  // records + dummies
  fx.CheckRecall(0.75);
}

TEST(PinedRqPpTest, NasaParsingPathWorks) {
  auto spec = record::NasaDataset();
  ASSERT_TRUE(spec.ok());
  Fixture fx(*spec);
  engine::PinedRqPpCollector collector(fx.cfg, fx.keys,
                                       fx.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  fx.Drive(collector, 1500, 1);
  EXPECT_EQ(collector.parse_errors(), 0u);
  fx.CheckRecall(0.75);
}

class ParallelPpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelPpTest, EndToEndGowalla) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  Fixture fx(*spec, GetParam());
  engine::ParallelPinedRqPpCollector collector(fx.cfg, fx.keys,
                                               fx.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  fx.Drive(collector, 2000, 2);
  EXPECT_EQ(collector.parse_errors(), 0u);
  ASSERT_EQ(fx.cloud_node.matching_stats().size(), 2u);
  fx.CheckRecall(0.75);
}

INSTANTIATE_TEST_SUITE_P(VaryWorkers, ParallelPpTest,
                         ::testing::Values(1, 3));

TEST(BaselineEquivalenceTest, AllPrototypesAnswerTheSameQuery) {
  // The four prototypes must agree (up to DP noise) on what a range query
  // returns: same workload, same seed, same epsilon.
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  constexpr size_t kN = 1500;
  index::RangeQuery q{spec->domain_min + 100 * 3600.0,
                      spec->domain_min + 500 * 3600.0};

  size_t expected = 0;
  std::vector<size_t> answers;
  for (int proto = 0; proto < 4; ++proto) {
    Fixture fx(*spec);
    switch (proto) {
      case 0: {
        engine::PinedRqCollector c(fx.cfg, fx.keys, fx.cloud_node.inbox());
        ASSERT_TRUE(c.Start().ok());
        fx.Drive(c, kN, 1);
        break;
      }
      case 1: {
        engine::PinedRqPpCollector c(fx.cfg, fx.keys, fx.cloud_node.inbox());
        ASSERT_TRUE(c.Start().ok());
        fx.Drive(c, kN, 1);
        break;
      }
      case 2: {
        engine::ParallelPinedRqPpCollector c(fx.cfg, fx.keys,
                                             fx.cloud_node.inbox());
        ASSERT_TRUE(c.Start().ok());
        fx.Drive(c, kN, 1);
        break;
      }
      case 3: {
        engine::FresqueCollector c(fx.cfg, fx.keys, fx.cloud_node.inbox());
        ASSERT_TRUE(c.Start().ok());
        fx.Drive(c, kN, 1);
        break;
      }
    }
    client::Client client(fx.keys, &fx.spec.parser->schema());
    auto acc = client.QueryWithGroundTruth(fx.server, q, fx.truth);
    ASSERT_TRUE(acc.ok());
    expected = acc->expected;
    answers.push_back(acc->matched);
  }
  ASSERT_GT(expected, 0u);
  for (size_t a : answers) {
    EXPECT_NEAR(static_cast<double>(a), static_cast<double>(expected),
                0.25 * static_cast<double>(expected));
  }
}

}  // namespace
}  // namespace fresque
