#include <gtest/gtest.h>

#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "index/index.h"
#include "index/overflow.h"
#include "net/payloads.h"
#include "record/secure_codec.h"

namespace fresque {
namespace client {
namespace {

// A hand-built cloud with known plaintexts, bypassing the collector, so
// client behaviour is tested in isolation.
class ClientTestFixture : public ::testing::Test {
 protected:
  ClientTestFixture()
      : binning_(MakeBinning()),
        server_(binning_),
        keys_(Bytes(32, 0x5A)),
        rng_(1),
        schema_(MakeSchema()) {}

  static index::DomainBinning MakeBinning() {
    auto b = index::DomainBinning::Create(0, 100, 10);  // 10 leaves
    return std::move(b).ValueOrDie();
  }

  static record::Schema MakeSchema() {
    auto s = record::Schema::Create(
        {{"id", record::ValueType::kInt64},
         {"v", record::ValueType::kDouble}},
        "v");
    return std::move(s).ValueOrDie();
  }

  record::Record Make(int64_t id, double v) {
    return record::Record({record::Value(id), record::Value(v)});
  }

  // Publishes records (+ n_dummies) under publication `pn`.
  void Publish(uint64_t pn, const std::vector<record::Record>& records,
               int n_dummies = 0) {
    ASSERT_TRUE(server_.StartPublication(pn).ok());
    auto codec =
        record::SecureRecordCodec::Create(keys_.RecordKey(pn), &schema_,
                                          &rng_);
    ASSERT_TRUE(codec.ok());
    std::vector<int64_t> counts(binning_.num_bins(), 0);
    for (const auto& rec : records) {
      double v = *rec.IndexedValue(schema_);
      uint32_t leaf = static_cast<uint32_t>(binning_.LeafOffset(v));
      ++counts[leaf];
      auto ct = codec->EncryptRecord(rec);
      ASSERT_TRUE(ct.ok());
      ASSERT_TRUE(server_.IngestRecord(pn, leaf, *ct).ok());
    }
    for (int i = 0; i < n_dummies; ++i) {
      auto ct = codec->EncryptDummy(24);
      ASSERT_TRUE(server_.IngestRecord(pn, i % 10, *ct).ok());
      ++counts[i % 10];  // dummies count like positive noise
    }
    auto layout = index::IndexLayout::Create(binning_.num_bins(), 4);
    auto idx = index::HistogramIndex::FromLeafCounts(
        std::move(layout).ValueOrDie(), binning_, counts);
    index::OverflowArrays ovf(binning_.num_bins(), 1);
    ASSERT_TRUE(
        ovf.PadWithDummies([&] { return codec->EncryptDummy(24).ValueOrDie(); })
            .ok());
    ASSERT_TRUE(server_
                    .PublishIndexed(pn, net::IndexPublication(
                                            std::move(idx).ValueOrDie(),
                                            std::move(ovf)))
                    .ok());
  }

  index::DomainBinning binning_;
  cloud::CloudServer server_;
  crypto::KeyManager keys_;
  crypto::SecureRandom rng_;
  record::Schema schema_;
};

TEST_F(ClientTestFixture, ExactPostFilterRemovesBinOvercoverage) {
  // Records at 11, 15, 19 share leaf 1; query [14, 16] matches only 15.
  Publish(0, {Make(1, 11), Make(2, 15), Make(3, 19)});
  Client client(keys_, &schema_);
  auto result = client.Query(server_, {14, 16});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].value(0).AsInt64(), 2);
}

TEST_F(ClientTestFixture, DummiesAreInvisible) {
  Publish(0, {Make(1, 55)}, /*n_dummies=*/30);
  Client client(keys_, &schema_);
  auto result = client.Query(server_, {0, 99});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // 30 dummies + overflow padding dropped
}

TEST_F(ClientTestFixture, PerPublicationKeysAreDerivedCorrectly) {
  Publish(0, {Make(1, 5)});
  Publish(1, {Make(2, 5)});
  Publish(7, {Make(3, 5)});
  Client client(keys_, &schema_);
  auto result = client.Query(server_, {0, 9});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // one per publication, three keys
}

TEST_F(ClientTestFixture, WrongMasterSecretFailsToDecrypt) {
  Publish(0, {Make(1, 5)});
  crypto::KeyManager wrong(Bytes(32, 0xFF));
  Client client(wrong, &schema_);
  auto result = client.Query(server_, {0, 9});
  // CBC padding check fails (w.h.p.) => Corruption surfaces.
  EXPECT_FALSE(result.ok());
}

TEST_F(ClientTestFixture, GroundTruthAccounting) {
  std::vector<record::Record> recs = {Make(1, 5), Make(2, 15), Make(3, 25),
                                      Make(4, 35)};
  Publish(0, recs);
  Client client(keys_, &schema_);
  auto acc = client.QueryWithGroundTruth(server_, {10, 30}, recs);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc->expected, 2u);  // 15, 25
  EXPECT_EQ(acc->matched, 2u);
  EXPECT_DOUBLE_EQ(acc->Recall(), 1.0);
}

TEST_F(ClientTestFixture, EmptyRangeReturnsNothing) {
  Publish(0, {Make(1, 5)});
  Client client(keys_, &schema_);
  auto result = client.Query(server_, {90, 99});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  auto acc = client.QueryWithGroundTruth(server_, {90, 99}, {Make(1, 5)});
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc->expected, 0u);
  EXPECT_DOUBLE_EQ(acc->Recall(), 1.0);  // vacuous
}

}  // namespace
}  // namespace client
}  // namespace fresque
