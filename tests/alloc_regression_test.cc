// Allocation-count regression tests for the steady-state ingest hot path.
//
// The point of ParseInto + BatchEncryptor + SerializeAppend is that once
// every scratch buffer has grown to its working size, processing one more
// record touches the heap zero times. These tests pin that property with
// a counting global operator new: warm the path up, snapshot the counter,
// run many more iterations, and require the count to stay flat. A future
// change that sneaks a per-record allocation back in fails loudly here
// instead of showing up as a throughput mystery.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/chacha20.h"
#include "record/parser.h"
#include "record/record.h"
#include "record/schema.h"
#include "record/secure_codec.h"

// Sanitizers interpose their own allocator and may allocate internally,
// so allocation counts are only meaningful in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FRESQUE_ALLOC_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FRESQUE_ALLOC_TEST_UNDER_SANITIZER 1
#endif
#endif

#ifndef FRESQUE_ALLOC_TEST_UNDER_SANITIZER
#define FRESQUE_ALLOC_TEST_UNDER_SANITIZER 0
#endif

#define SKIP_UNDER_SANITIZER()                                          \
  do {                                                                  \
    if (FRESQUE_ALLOC_TEST_UNDER_SANITIZER) {                           \
      GTEST_SKIP() << "allocation counts not meaningful under a "       \
                      "sanitizer's interposed allocator";               \
    }                                                                   \
  } while (0)

namespace {

std::atomic<uint64_t> g_allocations{0};

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

#if !FRESQUE_ALLOC_TEST_UNDER_SANITIZER

// Counting allocator: every heap allocation in this binary bumps the
// counter. Sized/aligned variants forward here via the usual fallbacks.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !FRESQUE_ALLOC_TEST_UNDER_SANITIZER

namespace fresque {
namespace record {
namespace {

constexpr int kWarmup = 64;
constexpr int kMeasured = 2000;

TEST(AllocRegressionTest, ApacheParseIntoIsAllocationFreeAtSteadyState) {
  SKIP_UNDER_SANITIZER();
  auto parser = ApacheLogParser::Create();
  ASSERT_TRUE(parser.ok());
  const std::string line =
      "burger.letters.com - - [01/Jul/1995:00:00:11 -0400] "
      "\"GET /shuttle/countdown/liftoff.html HTTP/1.0\" 304 5866";

  Record scratch;
  for (int i = 0; i < kWarmup; ++i) {
    ASSERT_TRUE((*parser)->ParseInto(line, &scratch).ok());
  }
  // No gtest macros between the snapshots: only the code under test runs.
  const uint64_t before = AllocationCount();
  bool all_ok = true;
  for (int i = 0; i < kMeasured; ++i) {
    all_ok &= (*parser)->ParseInto(line, &scratch).ok();
  }
  const uint64_t after = AllocationCount();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after, before) << "ParseInto allocated on the steady-state path";
}

TEST(AllocRegressionTest, CsvParseIntoIsAllocationFreeAtSteadyState) {
  SKIP_UNDER_SANITIZER();
  auto schema = Schema::Create({{"user", ValueType::kInt64},
                                {"checkin_time", ValueType::kInt64},
                                {"location", ValueType::kInt64}},
                               "checkin_time");
  ASSERT_TRUE(schema.ok());
  CsvParser parser(*schema);
  const std::string line = "10971,1287530127,772196";

  Record scratch;
  for (int i = 0; i < kWarmup; ++i) {
    ASSERT_TRUE(parser.ParseInto(line, &scratch).ok());
  }
  const uint64_t before = AllocationCount();
  bool all_ok = true;
  for (int i = 0; i < kMeasured; ++i) {
    all_ok &= parser.ParseInto(line, &scratch).ok();
  }
  const uint64_t after = AllocationCount();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after, before);
}

TEST(AllocRegressionTest, SerializeAppendIsAllocationFreeAtSteadyState) {
  SKIP_UNDER_SANITIZER();
  auto parser = ApacheLogParser::Create();
  ASSERT_TRUE(parser.ok());
  const std::string line =
      "unicomp6.unicomp.net - - [01/Jul/1995:00:00:06 -0400] "
      "\"GET /shuttle/countdown/ HTTP/1.0\" 200 3985";
  Record rec;
  ASSERT_TRUE((*parser)->ParseInto(line, &rec).ok());
  RecordCodec codec(&(*parser)->schema());

  Bytes out;
  for (int i = 0; i < kWarmup; ++i) {
    out.clear();
    ASSERT_TRUE(codec.SerializeAppend(rec, &out).ok());
  }
  const uint64_t before = AllocationCount();
  bool all_ok = true;
  for (int i = 0; i < kMeasured; ++i) {
    out.clear();
    all_ok &= codec.SerializeAppend(rec, &out).ok();
  }
  const uint64_t after = AllocationCount();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after, before);
}

// The full computing-node encrypt path: parse, stage into the batch
// encryptor, flush into retained ciphertext buffers. Zero allocations per
// steady-state batch — the arena, item lists, CBC scratch, and every out
// buffer keep their capacity.
TEST(AllocRegressionTest, BatchEncryptIsAllocationFreeAtSteadyState) {
  SKIP_UNDER_SANITIZER();
  auto parser = ApacheLogParser::Create();
  ASSERT_TRUE(parser.ok());
  const std::string line =
      "burger.letters.com - - [01/Jul/1995:00:00:11 -0400] "
      "\"GET /shuttle/countdown/video/livevideo.gif HTTP/1.0\" 200 0";

  crypto::SecureRandom rng(99);
  auto codec =
      SecureRecordCodec::Create(Bytes(16, 0x42), &(*parser)->schema(), &rng);
  ASSERT_TRUE(codec.ok());
  SecureRecordCodec::BatchEncryptor enc(&*codec);

  constexpr size_t kBatch = 32;
  Record scratch;
  std::vector<Bytes> outs(kBatch);  // retained ciphertext buffers

  auto run_batch = [&]() -> bool {
    bool ok = true;
    for (size_t i = 0; i < kBatch; ++i) {
      ok &= (*parser)->ParseInto(line, &scratch).ok();
      if (i % 4 == 3) {
        enc.StageDummy(/*padding_len=*/64, &outs[i]);
      } else {
        ok &= enc.StageRecord(scratch, &outs[i]).ok();
      }
    }
    ok &= enc.Flush().ok();
    return ok;
  };

  for (int i = 0; i < kWarmup; ++i) {
    ASSERT_TRUE(run_batch());
  }
  const uint64_t before = AllocationCount();
  bool all_ok = true;
  for (int i = 0; i < kMeasured / 10; ++i) all_ok &= run_batch();
  const uint64_t after = AllocationCount();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after, before)
      << "batch encrypt allocated on the steady-state path";
}

}  // namespace
}  // namespace record
}  // namespace fresque
