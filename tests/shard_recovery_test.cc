// Shard drain/restart recovery (DESIGN.md §17): a sharded pipeline
// running with per-shard durability directories must come back from
// RecoverShardedCloud with byte-identical query results — WAL replay is
// deterministic, so the recovered ciphertext set equals the live one
// exactly, per shard and merged.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "client/client.h"
#include "crypto/key_manager.h"
#include "record/dataset.h"
#include "shard/pipeline.h"
#include "shard/sharded_cloud.h"

namespace fresque {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// All ciphertexts of a result in a canonical order, pn-tagged. Every
/// e_record is unique (fresh CBC IV per record), so sorted vectors
/// compare as multisets.
std::vector<std::pair<uint64_t, Bytes>> Canonical(
    const query::QueryResult& r) {
  std::vector<std::pair<uint64_t, Bytes>> out;
  for (const auto* v :
       {&r.indexed_records, &r.overflow_records, &r.unindexed_records}) {
    for (const auto& rec : *v) out.emplace_back(rec.pn, rec.e_record);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ShardRecoveryTest, DrainRestartRecoversByteIdenticalState) {
  auto spec_or = record::GowallaDataset();
  ASSERT_TRUE(spec_or.ok());
  const auto spec = std::move(spec_or).ValueOrDie();
  const std::string dir = FreshDir("shard_recovery_live");

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.collector.seed = 17;
  cfg.shard.num_shards = 3;
  cfg.durability.data_dir = dir;
  crypto::KeyManager keys(Bytes(32, 0x42));

  constexpr size_t kLines = 1800;
  std::vector<size_t> live_shard_records;
  size_t live_pubs = 0;
  std::vector<std::pair<uint64_t, Bytes>> live_merged;
  const index::RangeQuery all{spec.domain_min, spec.domain_max};
  {
    shard::ShardedPipeline pipe(cfg, keys);
    ASSERT_TRUE(pipe.Start().ok());
    auto gen = record::MakeGenerator(spec, 808);
    ASSERT_TRUE(gen.ok());
    for (size_t i = 0; i < kLines; ++i) {
      ASSERT_TRUE(pipe.Ingest((*gen)->NextLine()).ok());
      if (i + 1 == kLines / 2) {
      ASSERT_TRUE(pipe.Publish().ok());
    }
    }
    ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();

    live_pubs = pipe.cloud()->num_publications();
    EXPECT_EQ(live_pubs, 2u);
    for (size_t s = 0; s < 3; ++s) {
      live_shard_records.push_back(pipe.cloud()->shard(s)->total_records());
      // Per-shard durability directories exist and are named by contract.
      EXPECT_TRUE(fs::exists(shard::ShardDataDir(dir, s))) << s;
    }
    auto res = pipe.cloud()->ExecuteQuery(all);
    ASSERT_TRUE(res.ok());
    live_merged = Canonical(*res);
  }

  auto rec = shard::RecoverShardedCloud(dir, spec, cfg.shard);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->shards.size(), 3u);
  for (const auto& s : rec->shards) {
    EXPECT_TRUE(s.recovered) << "shard " << s.shard;
    EXPECT_GT(s.stats.records_replayed + (s.stats.snapshot_loaded ? 1 : 0), 0u)
        << "shard " << s.shard << " recovered no state";
  }
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(rec->cloud->shard(s)->total_records(), live_shard_records[s])
        << "shard " << s;
  }
  EXPECT_EQ(rec->cloud->num_publications(), live_pubs);

  // Byte-identical merged query: WAL replay restores the exact ciphertext
  // stream, so the fanned-out result must match the live one as a
  // multiset of (pn, e_record) pairs.
  shard::FanoutStats stats;
  auto res = rec->cloud->ExecuteQuery(all, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.probed.size(), 3u);
  EXPECT_EQ(stats.TotalRecords(), res->TotalRecords());
  EXPECT_EQ(Canonical(*res), live_merged);

  // And the client's keys still decrypt the recovered result.
  client::Client client(keys, &spec.parser->schema());
  auto recs = client.Decrypt(*res, all);
  ASSERT_TRUE(recs.ok());
  EXPECT_GE(recs->size(), kLines * 7 / 10);
  EXPECT_LE(recs->size(), kLines);
}

TEST(ShardRecoveryTest, FreshDirectoryRecoversEmptyUsableShards) {
  auto spec_or = record::GowallaDataset();
  ASSERT_TRUE(spec_or.ok());
  const auto spec = std::move(spec_or).ValueOrDie();
  const std::string dir = FreshDir("shard_recovery_empty");

  shard::ShardOptions opts;
  opts.num_shards = 4;
  auto rec = shard::RecoverShardedCloud(dir, spec, opts);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->shards.size(), 4u);
  for (const auto& s : rec->shards) {
    EXPECT_FALSE(s.recovered) << "shard " << s.shard;
  }
  EXPECT_EQ(rec->cloud->total_records(), 0u);
  EXPECT_EQ(rec->cloud->num_publications(), 0u);

  // The empty recovered facade still serves (empty) fan-out queries.
  shard::FanoutStats stats;
  auto res = rec->cloud->ExecuteQuery({spec.domain_min, spec.domain_max},
                                      &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->TotalRecords(), 0u);
  EXPECT_EQ(stats.probed.size(), 4u);
}

TEST(ShardRecoveryTest, PartialShardStateRecoversMixed) {
  // Only some shards ever see records (a narrow key range): the ones that
  // ingested recover their state, the idle ones come back empty but
  // usable — restart must not require uniform activity.
  auto spec_or = record::GowallaDataset();
  ASSERT_TRUE(spec_or.ok());
  const auto spec = std::move(spec_or).ValueOrDie();
  const std::string dir = FreshDir("shard_recovery_partial");

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.shard.num_shards = 3;
  cfg.durability.data_dir = dir;
  crypto::KeyManager keys(Bytes(32, 0x42));

  std::vector<size_t> live(3, 0);
  uint64_t routed_to_0 = 0;
  {
    shard::ShardedPipeline pipe(cfg, keys);
    ASSERT_TRUE(pipe.Start().ok());
    // Craft lines that all land in shard 0's slice: take generated lines
    // and keep only those the placement maps to shard 0.
    auto gen = record::MakeGenerator(spec, 909);
    ASSERT_TRUE(gen.ok());
    size_t kept = 0;
    while (kept < 300) {
      const std::string line = (*gen)->NextLine();
      auto v = spec.parser->IndexedValue(line);
      ASSERT_TRUE(v.ok());
      if (pipe.placement().ShardOf(*v) != 0) continue;
      ASSERT_TRUE(pipe.Ingest(line).ok());
      ++kept;
    }
    ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();
    auto m = pipe.Metrics();
    routed_to_0 = m.router.per_shard[0];
    EXPECT_EQ(routed_to_0, 300u);
    EXPECT_EQ(m.router.per_shard[1], 0u);
    EXPECT_EQ(m.router.per_shard[2], 0u);
    for (size_t s = 0; s < 3; ++s) {
      live[s] = pipe.cloud()->shard(s)->total_records();
    }
    // Idle shards stored no real records (dummies from empty-interval
    // publications may exist; real mass is all in shard 0).
    EXPECT_GE(live[0], 300u * 7 / 10);
  }

  auto rec = shard::RecoverShardedCloud(dir, spec, cfg.shard);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->shards[0].recovered);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(rec->cloud->shard(s)->total_records(), live[s]) << "shard " << s;
  }
}

}  // namespace
}  // namespace fresque
