// Adversarial-input robustness: every decoder that consumes bytes from
// the network or disk must return a Status on garbage — never crash,
// hang, or over-read. Random-mutation fuzzing with a deterministic seed.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/message.h"
#include "net/payloads.h"
#include "record/record.h"
#include "record/schema.h"

namespace fresque {
namespace {

// Random byte strings of assorted sizes.
std::vector<Bytes> RandomInputs(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Bytes> out;
  for (size_t i = 0; i < count; ++i) {
    Bytes b(rng.NextBounded(200));
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.Next());
    out.push_back(std::move(b));
  }
  return out;
}

// Mutations of a valid encoding: truncations, bit flips, extensions.
std::vector<Bytes> Mutations(const Bytes& valid, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Bytes> out;
  for (size_t cut = 0; cut < valid.size(); cut += 1 + valid.size() / 17) {
    out.emplace_back(valid.begin(), valid.begin() + cut);
  }
  for (int i = 0; i < 64 && !valid.empty(); ++i) {
    Bytes m = valid;
    m[rng.NextBounded(m.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBounded(8));
    out.push_back(std::move(m));
  }
  Bytes extended = valid;
  extended.push_back(0xFF);
  out.push_back(std::move(extended));
  return out;
}

TEST(RobustnessTest, MessageDeserializeNeverCrashes) {
  net::Message m;
  m.type = net::MessageType::kCloudRecord;
  m.pn = 7;
  m.payload = Bytes(24, 0x3C);
  Bytes valid = m.Serialize();
  for (const auto& input : Mutations(valid, 1)) {
    auto r = net::Message::Deserialize(input);
    if (r.ok()) {
      // A surviving mutation must still be internally consistent.
      EXPECT_LE(static_cast<int>(r->type),
                static_cast<int>(net::MessageType::kShutdown));
    }
  }
  for (const auto& input : RandomInputs(500, 2)) {
    (void)net::Message::Deserialize(input);
  }
}

TEST(RobustnessTest, IndexDeserializeNeverCrashes) {
  auto binning = index::DomainBinning::Create(0, 64, 1);
  crypto::SecureRandom rng(3);
  auto tmpl = index::IndexTemplate::Create(*binning, 4, 1.0, &rng);
  Bytes valid = tmpl->noise_index().Serialize();
  for (const auto& input : Mutations(valid, 4)) {
    (void)index::HistogramIndex::Deserialize(input);
  }
  for (const auto& input : RandomInputs(500, 5)) {
    (void)index::HistogramIndex::Deserialize(input);
  }
}

TEST(RobustnessTest, OverflowDeserializeNeverCrashes) {
  crypto::SecureRandom rng(6);
  index::OverflowArrays ovf(8, 2);
  ASSERT_TRUE(ovf.PadWithDummies([&] { return rng.RandomBytes(8); }).ok());
  Bytes valid = ovf.Serialize();
  for (const auto& input : Mutations(valid, 7)) {
    (void)index::OverflowArrays::Deserialize(input);
  }
  for (const auto& input : RandomInputs(300, 8)) {
    (void)index::OverflowArrays::Deserialize(input);
  }
}

TEST(RobustnessTest, MatchingTableDeserializeNeverCrashes) {
  index::MatchingTable t;
  for (uint64_t i = 0; i < 50; ++i) (void)t.Add(i * 977, i % 8);
  Bytes valid = t.Serialize();
  for (const auto& input : Mutations(valid, 9)) {
    (void)index::MatchingTable::Deserialize(input);
  }
}

TEST(RobustnessTest, IndexPublicationDecodeNeverCrashes) {
  auto binning = index::DomainBinning::Create(0, 16, 1);
  crypto::SecureRandom rng(10);
  auto tmpl = index::IndexTemplate::Create(*binning, 4, 1.0, &rng);
  net::IndexPublication pub(tmpl->noise_index(),
                            index::OverflowArrays(16, 1));
  Bytes valid = net::EncodeIndexPublication(pub);
  for (const auto& input : Mutations(valid, 11)) {
    (void)net::DecodeIndexPublication(input);
    (void)net::VerifyIndexPublicationPayload(input, Bytes(32, 1));
  }
}

TEST(RobustnessTest, CbcDecryptNeverCrashes) {
  auto cbc = crypto::AesCbc::Create(Bytes(32, 0x77));
  crypto::SecureRandom rng(12);
  auto valid = cbc->Encrypt(Bytes(40, 0x01),
                            [&](uint8_t* o, size_t n) { rng.Fill(o, n); });
  for (const auto& input : Mutations(*valid, 13)) {
    (void)cbc->Decrypt(input);
  }
  for (const auto& input : RandomInputs(500, 14)) {
    (void)cbc->Decrypt(input);
  }
}

TEST(RobustnessTest, RecordDeserializeNeverCrashes) {
  auto schema = record::Schema::Create(
      {{"a", record::ValueType::kInt64},
       {"s", record::ValueType::kString},
       {"d", record::ValueType::kDouble}},
      "a");
  record::RecordCodec codec(&*schema);
  record::Record rec({record::Value(int64_t{5}),
                      record::Value(std::string("abc")),
                      record::Value(2.0)});
  Bytes valid = *codec.Serialize(rec);
  for (const auto& input : Mutations(valid, 15)) {
    (void)codec.Deserialize(input);
  }
  for (const auto& input : RandomInputs(500, 16)) {
    (void)codec.Deserialize(input);
  }
}

TEST(RobustnessTest, AlSnapshotDecodeNeverCrashes) {
  Bytes valid = net::EncodeAlSnapshot({1, -2, 3});
  for (const auto& input : Mutations(valid, 17)) {
    (void)net::DecodeAlSnapshot(input);
  }
  // Huge claimed length must not allocate the moon.
  BinaryWriter w;
  w.PutU64(~0ULL);
  auto r = net::DecodeAlSnapshot(w.buffer());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace fresque
