// Regression tests for the graceful drain-and-ack protocol: Shutdown()
// must publish the open interval (zero record loss), WaitForPublication()
// must bound publication latency, the drained publication must survive a
// cloud restart once acked (ack implies durability), and the checking
// node must survive a lost template without wedging a publication or
// leaking its buffers.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "engine/cloud_node.h"
#include "engine/collector_nodes.h"
#include "engine/fresque_collector.h"
#include "index/index.h"
#include "record/dataset.h"

namespace fresque {
namespace {

using std::chrono::milliseconds;

struct Rig {
  record::DatasetSpec spec;
  cloud::CloudServer server;
  engine::CloudNode cloud_node;
  crypto::KeyManager keys;

  Rig()
      : spec(std::move(record::GowallaDataset()).ValueOrDie()),
        server(MakeBinning(spec)),
        cloud_node(&server),
        keys(Bytes(32, 0x5D)) {
    cloud_node.Start();
  }

  static index::DomainBinning MakeBinning(const record::DatasetSpec& s) {
    return std::move(index::DomainBinning::Create(s.domain_min, s.domain_max,
                                                  s.bin_width))
        .ValueOrDie();
  }

  engine::CollectorConfig Config(size_t k = 2) {
    engine::CollectorConfig c;
    c.dataset = spec;
    c.num_computing_nodes = k;
    c.seed = 777;
    return c;
  }
};

TEST(DrainShutdownTest, OpenIntervalSurvivesShutdownWithZeroLoss) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(3), rig.keys,
                                     rig.cloud_node.inbox());
  rig.cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(rig.spec, 4242);
  ASSERT_TRUE(gen.ok());
  constexpr uint64_t kRecords = 1000;
  for (uint64_t i = 0; i < kRecords; ++i) {
    collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }

  // No explicit Publish(): Shutdown() must drain the open interval.
  ASSERT_TRUE(collector.Shutdown().ok());
  Status acked = collector.WaitForPublication(0, milliseconds(15000));
  EXPECT_TRUE(acked.ok()) << acked.ToString();
  rig.cloud_node.Shutdown();

  ASSERT_TRUE(rig.cloud_node.first_error().ok())
      << rig.cloud_node.first_error().ToString();
  auto stats = rig.cloud_node.matching_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].pn, 0u);

  // Every ingested record made it out of the collector...
  engine::PublishReport report{};
  for (const auto& r : collector.Reports()) {
    if (r.pn == 0) report = r;
  }
  EXPECT_EQ(report.real_records, kRecords);
  EXPECT_GT(report.dummy_records, 0u);  // padded dummies flushed too

  // ...and conservation holds at the cloud: streamed = reals forwarded
  // (reals minus removed) plus dummies. Nothing died in the randomer.
  EXPECT_EQ(rig.server.total_records(),
            report.real_records - report.removed_records +
                report.dummy_records);

  auto metrics = collector.Metrics();
  EXPECT_EQ(metrics.TotalDrops(), 0u);
  EXPECT_EQ(metrics.publications_completed, 1u);
  EXPECT_EQ(metrics.publications_failed, 0u);
}

TEST(DrainShutdownTest, UntouchedOpenIntervalIsNotPublished) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  rig.cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());
  // Nothing ingested: drain has nothing to save, so no publication (and
  // no privacy budget burned on a noise-only index nobody asked for).
  ASSERT_TRUE(collector.Shutdown().ok());
  Status acked = collector.WaitForPublication(0, milliseconds(200));
  EXPECT_TRUE(acked.IsDeadlineExceeded()) << acked.ToString();
  rig.cloud_node.Shutdown();
  EXPECT_TRUE(rig.cloud_node.matching_stats().empty());
}

TEST(DrainShutdownTest, ExplicitPublishAndDrainedIntervalBothAck) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  rig.cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(rig.spec, 11);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());

  EXPECT_TRUE(collector.WaitForPublication(0, milliseconds(15000)).ok());
  EXPECT_TRUE(collector.WaitForPublication(1, milliseconds(15000)).ok());
  rig.cloud_node.Shutdown();

  ASSERT_TRUE(rig.cloud_node.first_error().ok());
  EXPECT_EQ(rig.cloud_node.matching_stats().size(), 2u);
  auto metrics = collector.Metrics();
  EXPECT_EQ(metrics.publications_completed, 2u);
  // All pipeline threads have wound down; their counters add up.
  for (const auto& n : metrics.nodes) {
    EXPECT_FALSE(n.running) << n.name;
    EXPECT_GT(n.frames_processed, 0u) << n.name;
  }
}

TEST(DrainShutdownTest, DrainedIntervalSurvivesCloudRestart) {
  // The drain path with durability attached: the publication created by
  // Shutdown() (never explicitly Publish()ed) is acked only after its WAL
  // install committed, so stopping the cloud and recovering from disk
  // must reproduce it — same conservation totals, same query answers.
  std::string dir = std::string(::testing::TempDir()) + "/drain_restart";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(spec->domain_min,
                                              spec->domain_max,
                                              spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);

  durability::WalOptions wopts;
  wopts.dir = dir;
  wopts.fsync_policy = durability::FsyncPolicy::kNever;  // speed; the test
  // models a clean stop, not a power cut — crash cuts live in
  // crash_recovery_test.cc.
  auto wal = durability::Wal::Open(std::move(wopts));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(cloud_node.AttachDurability(wal->get()).ok());
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x5D));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 3;
  cfg.seed = 777;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 4242);
  ASSERT_TRUE(gen.ok());
  constexpr uint64_t kRecords = 600;
  for (uint64_t i = 0; i < kRecords; ++i) {
    collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  // No explicit Publish(): only the drain produces publication 0.
  ASSERT_TRUE(collector.Shutdown().ok());
  ASSERT_TRUE(collector.WaitForPublication(0, milliseconds(15000)).ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();

  engine::PublishReport report{};
  for (const auto& r : collector.Reports()) {
    if (r.pn == 0) report = r;
  }
  EXPECT_EQ(report.real_records, kRecords);

  // "Restart": rebuild the cloud purely from the durability directory.
  auto recovered = durability::RecoveryManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->stats.installs_replayed, 1u);
  ASSERT_EQ(recovered->server->num_publications(), 1u);

  // Conservation survives the restart: the recovered store holds exactly
  // what the collector streamed (reals minus removed, plus dummies).
  EXPECT_EQ(recovered->server->total_records(),
            report.real_records - report.removed_records +
                report.dummy_records);
  EXPECT_EQ(recovered->server->total_records(), server.total_records());
  EXPECT_EQ(recovered->server->total_bytes(), server.total_bytes());

  // Re-query after the restart: several sub-ranges answer identically to
  // the pre-restart server, and the integrity evidence still verifies.
  client::Client client(keys, &spec->parser->schema());
  const double lo = spec->domain_min;
  const double hi = spec->domain_max;
  const double span = hi - lo;
  const index::RangeQuery queries[] = {
      {lo, hi},
      {lo, lo + span / 3},
      {lo + span / 4, lo + span / 2},
      {hi - span / 5, hi},
  };
  for (const auto& q : queries) {
    auto before = client.Query(server, q);
    auto after = client.Query(*recovered->server, q);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(before->size(), after->size()) << "[" << q.lo << ", " << q.hi << "]";
  }
  EXPECT_TRUE(client.VerifyPublication(*recovered->server, 0).ok());
  std::filesystem::remove_all(dir);
}

TEST(DrainShutdownTest, WaitForPublicationTimesOutOnUnknownPn) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  EXPECT_TRUE(collector.WaitForPublication(5).IsFailedPrecondition());
  ASSERT_TRUE(collector.Start().ok());
  Status st = collector.WaitForPublication(5, milliseconds(50));
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.inbox()->Push([] {
    net::Message m;
    m.type = net::MessageType::kShutdown;
    return m;
  }());
  rig.cloud_node.Shutdown();
}

// --- Checking-node barrier hardening, driven directly through its inbox.

net::Message TaggedRecord(uint64_t pn) {
  net::Message m;
  m.type = net::MessageType::kTaggedRecord;
  m.pn = pn;
  m.leaf = 0;
  return m;
}

net::Message Barrier(net::MessageType type, uint64_t pn) {
  net::Message m;
  m.type = type;
  m.pn = pn;
  return m;
}

TEST(CheckingNodeTest, LostTemplateCompletesBarrierAndEvictsPending) {
  engine::CollectorConfig cfg;
  cfg.num_computing_nodes = 2;
  cfg.max_pending_per_publication = 8;  // small cap to exercise the bound
  auto merger = net::MakeMailbox(64);
  auto cloud = net::MakeMailbox(64);
  auto acks = net::MakeMailbox(64);
  engine::internal::ReportSink reports;
  engine::internal::CheckingNodeImpl node(cfg, merger, cloud, &reports, acks);
  node.Start();

  // 13 records for a publication whose template never arrives: 8 buffer,
  // 5 hit the kMaxPending bound and drop immediately.
  for (int i = 0; i < 13; ++i) node.inbox()->Push(TaggedRecord(0));
  // The publish barrier completes despite the missing interval state...
  for (int i = 0; i < 2; ++i) {
    node.inbox()->Push(Barrier(net::MessageType::kPublish, 0));
  }
  for (int i = 0; i < 2; ++i) {
    node.inbox()->Push(Barrier(net::MessageType::kShutdown, 0));
  }
  node.Join();

  // ...dropping the buffered records (counted, not leaked) and acking the
  // publication as failed so no WaitForPublication() wedges on it.
  EXPECT_EQ(node.pending_dropped(), 13u);
  EXPECT_EQ(node.publications_failed(), 1u);
  EXPECT_EQ(node.publications_flushed(), 0u);

  auto ack = acks->TryPop();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, net::MessageType::kPublicationAck);
  EXPECT_EQ(ack->pn, 0u);
  EXPECT_NE(ack->leaf, 0u);  // failure
  EXPECT_FALSE(ack->payload.empty());

  // The merger saw only the forwarded shutdown — no AL snapshot for a
  // publication that never existed.
  auto fwd = merger->TryPop();
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->type, net::MessageType::kShutdown);
  EXPECT_FALSE(merger->TryPop().has_value());
  EXPECT_FALSE(cloud->TryPop().has_value());
}

TEST(CheckingNodeTest, LaterBarrierEvictsEarlierOrphanedPending) {
  engine::CollectorConfig cfg;
  cfg.num_computing_nodes = 1;
  auto merger = net::MakeMailbox(64);
  auto cloud = net::MakeMailbox(64);
  auto acks = net::MakeMailbox(64);
  engine::internal::ReportSink reports;
  engine::internal::CheckingNodeImpl node(cfg, merger, cloud, &reports, acks);
  node.Start();

  // Records of publication 3 whose template is lost; the barrier of the
  // later publication 7 proves template 3 can never arrive anymore.
  for (int i = 0; i < 4; ++i) node.inbox()->Push(TaggedRecord(3));
  node.inbox()->Push(Barrier(net::MessageType::kPublish, 7));
  node.inbox()->Push(Barrier(net::MessageType::kShutdown, 0));
  node.Join();

  EXPECT_EQ(node.pending_dropped(), 4u);
  // Publication 7 is acked as failed (no state); 3 never completed a
  // barrier, so its loss surfaces through the metric alone.
  EXPECT_EQ(node.publications_failed(), 1u);
  auto ack = acks->TryPop();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->pn, 7u);
}

}  // namespace
}  // namespace fresque
