// Unit coverage for the concurrent query engine (src/query, DESIGN.md
// §15): tag filter, leaf-descriptor cache, view manager, executor, and
// the CloudServer integration (snapshot-consistent ExecuteQuery, view
// rebuild after SaveSnapshot/LoadSnapshot).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "cloud/server.h"
#include "index/matching.h"
#include "net/payloads.h"
#include "query/context.h"
#include "query/executor.h"
#include "query/leaf_cache.h"
#include "query/scan.h"
#include "query/tag_filter.h"
#include "query/view.h"

namespace fresque {
namespace query {
namespace {

// ---------------------------------------------------------------- TagFilter

TEST(TagFilterTest, EmptyFilterNeverExcludes) {
  TagFilter f;
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.MayContain(0));
  EXPECT_TRUE(f.MayContain(0xdeadbeef));
}

TEST(TagFilterTest, NoFalseNegatives) {
  index::MatchingTable table;
  for (uint64_t t = 0; t < 5000; ++t) {
    ASSERT_TRUE(table.Add(t * 0x9e3779b97f4a7c15ULL + 7, t % 64).ok());
  }
  TagFilter f = TagFilter::Build(table);
  EXPECT_EQ(f.keys(), table.size());
  for (const auto& [tag, leaf] : table.entries()) {
    (void)leaf;
    EXPECT_TRUE(f.MayContain(tag)) << "false negative for tag " << tag;
  }
}

TEST(TagFilterTest, FalsePositiveRateIsBounded) {
  index::MatchingTable table;
  for (uint64_t t = 0; t < 10000; ++t) {
    ASSERT_TRUE(table.Add(t, 0).ok());
  }
  TagFilter f = TagFilter::Build(table);
  size_t fp = 0;
  const size_t probes = 20000;
  for (size_t i = 0; i < probes; ++i) {
    uint64_t absent = 1000000 + i;  // disjoint from inserted range
    if (f.MayContain(absent)) ++fp;
  }
  // ~12 bits/key with 4 probe bits in one word: a few percent FP. The
  // bound is loose on purpose — this guards against a broken hash, not a
  // drifting constant.
  EXPECT_LT(static_cast<double>(fp) / probes, 0.15);
}

// ---------------------------------------------------------------- LeafCache

TEST(LeafCacheTest, HitMissAndEvictionAccounting) {
  LeafCache cache(2);
  auto build = [](double lo) {
    return [lo] {
      LeafDescriptor d;
      d.lo = lo;
      return d;
    };
  };
  EXPECT_EQ(cache.GetOrBuild(1, 0, build(10)).lo, 10);  // miss
  EXPECT_EQ(cache.GetOrBuild(1, 0, build(99)).lo, 10);  // hit: cached value
  EXPECT_EQ(cache.GetOrBuild(1, 1, build(20)).lo, 20);  // miss, cache full
  EXPECT_EQ(cache.GetOrBuild(1, 2, build(30)).lo, 30);  // miss, evicts (1,0)
  EXPECT_EQ(cache.GetOrBuild(1, 0, build(55)).lo, 55);  // rebuilt after evict

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_GE(s.evictions, 2u);
  EXPECT_LE(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_GT(s.HitRatio(), 0.0);
}

TEST(LeafCacheTest, LruKeepsRecentlyTouchedEntries) {
  LeafCache cache(2);
  auto make = [](double lo) {
    return [lo] {
      LeafDescriptor d;
      d.lo = lo;
      return d;
    };
  };
  (void)cache.GetOrBuild(0, 0, make(1));
  (void)cache.GetOrBuild(0, 1, make(2));
  (void)cache.GetOrBuild(0, 0, make(1));   // touch (0,0): now most recent
  (void)cache.GetOrBuild(0, 2, make(3));   // evicts (0,1)
  uint64_t misses_before = cache.stats().misses;
  (void)cache.GetOrBuild(0, 0, make(1));   // still cached
  EXPECT_EQ(cache.stats().misses, misses_before);
}

TEST(LeafCacheTest, InvalidateDropsOnePublication) {
  LeafCache cache(16);
  auto d = [] { return LeafDescriptor{}; };
  (void)cache.GetOrBuild(1, 0, d);
  (void)cache.GetOrBuild(1, 1, d);
  (void)cache.GetOrBuild(2, 0, d);
  cache.Invalidate(1);
  EXPECT_EQ(cache.stats().size, 1u);
  uint64_t misses_before = cache.stats().misses;
  (void)cache.GetOrBuild(2, 0, d);  // survivor still hits
  EXPECT_EQ(cache.stats().misses, misses_before);
}

// -------------------------------------------------------------- ViewManager

std::shared_ptr<const InstalledPublication> MakeInstalled(
    uint64_t pn, const index::DomainBinning& binning) {
  auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), binning,
      std::vector<int64_t>(binning.num_bins(), 1));
  return std::make_shared<const InstalledPublication>(
      pn, cloud::SegmentStorage(), std::move(idx).ValueOrDie(),
      index::OverflowArrays(binning.num_bins(), 1),
      std::vector<std::vector<cloud::PhysicalAddress>>(binning.num_bins()),
      Bytes{}, TagFilter());
}

TEST(ViewManagerTest, InstallAdvancesEpochAndKeepsOldViewsImmutable) {
  auto binning =
      std::move(index::DomainBinning::Create(0, 10, 1)).ValueOrDie();
  ViewManager views;
  auto v0 = views.Current();
  EXPECT_EQ(v0->epoch(), 0u);
  EXPECT_EQ(v0->num_publications(), 0u);

  EXPECT_EQ(views.Install(MakeInstalled(5, binning)), 1u);
  auto v1 = views.Current();
  EXPECT_EQ(v1->num_publications(), 1u);
  // The previously pinned view is untouched.
  EXPECT_EQ(v0->num_publications(), 0u);

  EXPECT_EQ(views.Install(MakeInstalled(2, binning)), 2u);
  auto v2 = views.Current();
  ASSERT_EQ(v2->num_publications(), 2u);
  // Sorted by pn.
  EXPECT_EQ(v2->publications()[0]->pn, 2u);
  EXPECT_EQ(v2->publications()[1]->pn, 5u);
  EXPECT_NE(v2->Find(5), nullptr);
  EXPECT_EQ(v2->Find(7), nullptr);
}

TEST(ViewManagerTest, ReinstallReplacesAndRetireRemoves) {
  auto binning =
      std::move(index::DomainBinning::Create(0, 10, 1)).ValueOrDie();
  ViewManager views;
  (void)views.Install(MakeInstalled(1, binning));
  (void)views.Install(MakeInstalled(1, binning));  // replace, not append
  EXPECT_EQ(views.Current()->num_publications(), 1u);

  auto pinned = views.Current();
  EXPECT_TRUE(views.Retire(1));
  EXPECT_FALSE(views.Retire(1));
  EXPECT_EQ(views.Current()->num_publications(), 0u);
  // A pinned older view keeps serving the retired publication.
  EXPECT_NE(pinned->Find(1), nullptr);
}

TEST(ViewManagerTest, RetiredPublicationFreedOnlyWhenLastPinDrops) {
  auto binning =
      std::move(index::DomainBinning::Create(0, 10, 1)).ValueOrDie();
  ViewManager views;
  (void)views.Install(MakeInstalled(3, binning));
  auto pinned = views.Current();
  std::weak_ptr<const InstalledPublication> weak = pinned->Find(3);
  ASSERT_FALSE(weak.expired());
  (void)views.Retire(3);
  EXPECT_FALSE(weak.expired());  // pinned view still references it
  pinned.reset();
  EXPECT_TRUE(weak.expired());  // last reference gone => GC'd
}

// ------------------------------------------------------------ QueryExecutor

TEST(QueryExecutorTest, ExecutesThroughHandler) {
  QueryExecutor exec(
      [](const index::RangeQuery& q, const QueryContext&) {
        QueryResult r;
        r.indexed_records.push_back(
            {static_cast<uint64_t>(q.lo), Bytes{0x1}});
        return Result<QueryResult>(std::move(r));
      });
  auto r = exec.Execute({4.0, 5.0});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->indexed_records.size(), 1u);
  EXPECT_EQ(r->indexed_records[0].pn, 4u);
  exec.Shutdown();
  auto m = exec.metrics();
  EXPECT_EQ(m.submitted, 1u);
  EXPECT_EQ(m.executed, 1u);
  EXPECT_EQ(m.inflight, 0);
}

TEST(QueryExecutorTest, DeadlineExpiredInQueueNeverRuns) {
  std::atomic<int> runs{0};
  QueryExecutor exec([&](const index::RangeQuery&, const QueryContext&) {
    ++runs;
    return Result<QueryResult>(QueryResult{});
  });
  QueryOptions opts;
  opts.deadline = std::chrono::nanoseconds(1);
  // The deadline is in the past by the time a worker pops the ticket.
  auto r = exec.Execute({0, 1}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  exec.Shutdown();
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(exec.metrics().deadline_exceeded, 1u);
}

TEST(QueryExecutorTest, DeadlineAbortsMidScan) {
  QueryExecutor exec(
      [](const index::RangeQuery&,
         const QueryContext& ctx) -> Result<QueryResult> {
        // Simulate a long batched scan that honors ctx between batches.
        for (int i = 0; i < 1000; ++i) {
          FRESQUE_RETURN_NOT_OK(ctx.Check());
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return QueryResult{};
      });
  QueryOptions opts;
  opts.deadline = std::chrono::milliseconds(20);
  auto r = exec.Execute({0, 1}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  exec.Shutdown();
}

TEST(QueryExecutorTest, CancellationAbortsCooperatively) {
  std::atomic<bool> entered{false};
  QueryExecutor exec(
      [&](const index::RangeQuery&,
          const QueryContext& ctx) -> Result<QueryResult> {
        entered = true;
        while (true) {
          FRESQUE_RETURN_NOT_OK(ctx.Check());
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  auto ticket = exec.Submit({0, 1});
  ASSERT_TRUE(ticket.ok());
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*ticket)->Cancel();
  auto r = (*ticket)->Wait();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  exec.Shutdown();
  EXPECT_EQ(exec.metrics().cancelled, 1u);
}

TEST(QueryExecutorTest, AdmissionShedsWhenQueueFull) {
  std::atomic<bool> release{false};
  ExecutorOptions opts;
  opts.num_threads = 1;
  opts.queue_capacity = 1;
  QueryExecutor exec(
      [&](const index::RangeQuery&, const QueryContext&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Result<QueryResult>(QueryResult{});
      },
      opts);

  // Saturate: one running (after the worker pops it), one queued, then
  // submissions must shed. Submit until we observe Overloaded.
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  bool shed = false;
  for (int i = 0; i < 50 && !shed; ++i) {
    auto t = exec.Submit({0, 1});
    if (t.ok()) {
      tickets.push_back(*t);
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kOverloaded);
      shed = true;
    }
  }
  EXPECT_TRUE(shed);
  EXPECT_GE(exec.metrics().shed, 1u);
  release = true;
  for (auto& t : tickets) (void)t->Wait();
  exec.Shutdown();
}

TEST(QueryExecutorTest, SubmitAfterShutdownFails) {
  QueryExecutor exec([](const index::RangeQuery&, const QueryContext&) {
    return Result<QueryResult>(QueryResult{});
  });
  exec.Shutdown();
  exec.Shutdown();  // idempotent
  auto t = exec.Submit({0, 1});
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------- CloudServer + query engine

index::DomainBinning TinyBinning() {
  return std::move(index::DomainBinning::Create(0, 10, 1)).ValueOrDie();
}

net::IndexPublication MakePublication(const index::DomainBinning& binning,
                                      const std::vector<int64_t>& counts) {
  auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), binning, counts);
  index::OverflowArrays ovf(binning.num_bins(), 1);
  return net::IndexPublication(std::move(idx).ValueOrDie(), std::move(ovf));
}

TEST(CloudServerViewTest, InstallPublishesViewEpochs) {
  cloud::CloudServer server(TinyBinning());
  EXPECT_EQ(server.view_epoch(), 0u);
  EXPECT_EQ(server.CurrentView()->num_publications(), 0u);

  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestRecord(0, 2, Bytes{1});
  EXPECT_EQ(server.view_epoch(), 0u);  // open pub: not in the view yet

  std::vector<int64_t> counts(10, 0);
  counts[2] = 1;
  ASSERT_TRUE(
      server.PublishIndexed(0, MakePublication(server.binning(), counts))
          .ok());
  EXPECT_EQ(server.view_epoch(), 1u);
  auto view = server.CurrentView();
  ASSERT_EQ(view->num_publications(), 1u);
  EXPECT_EQ(view->publications()[0]->pn, 0u);
  EXPECT_EQ(view->publications()[0]->storage.num_records(), 1u);
}

TEST(CloudServerViewTest, PinnedViewIsolatedFromLaterInstalls) {
  cloud::CloudServer server(TinyBinning());
  std::vector<int64_t> counts(10, 0);
  counts[5] = 1;
  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestRecord(0, 5, Bytes{0xA});
  ASSERT_TRUE(
      server.PublishIndexed(0, MakePublication(server.binning(), counts))
          .ok());

  auto pinned = server.CurrentView();

  ASSERT_TRUE(server.StartPublication(1).ok());
  (void)server.IngestRecord(1, 5, Bytes{0xB});
  ASSERT_TRUE(
      server.PublishIndexed(1, MakePublication(server.binning(), counts))
          .ok());

  // The pinned snapshot still sees exactly one publication; a fresh scan
  // of it returns only pn 0's record.
  EXPECT_EQ(pinned->num_publications(), 1u);
  QueryResult out;
  ASSERT_TRUE(
      ScanView(*pinned, {5.0, 5.9}, QueryContext{}, nullptr, &out).ok());
  ASSERT_EQ(out.indexed_records.size(), 1u);
  EXPECT_EQ(out.indexed_records[0].pn, 0u);
  // The current view sees both.
  EXPECT_EQ(server.CurrentView()->num_publications(), 2u);
}

TEST(CloudServerViewTest, ContextualQueryMatchesLegacyQuery) {
  cloud::CloudServer server(TinyBinning());
  std::vector<int64_t> counts(10, 0);
  counts[3] = 2;
  counts[7] = 1;
  ASSERT_TRUE(server.StartPublication(0).ok());
  (void)server.IngestRecord(0, 3, Bytes{1});
  (void)server.IngestRecord(0, 3, Bytes{2});
  (void)server.IngestRecord(0, 7, Bytes{3});
  ASSERT_TRUE(
      server.PublishIndexed(0, MakePublication(server.binning(), counts))
          .ok());
  // Leave a second publication open so the unindexed path is exercised.
  ASSERT_TRUE(server.StartPublication(1).ok());
  (void)server.IngestRecord(1, 3, Bytes{9});

  auto legacy = server.ExecuteQuery({3.0, 3.9});
  auto ctxful = server.ExecuteQuery({3.0, 3.9}, QueryContext{});
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(ctxful.ok());
  EXPECT_EQ(legacy->indexed_records.size(), ctxful->indexed_records.size());
  EXPECT_EQ(legacy->unindexed_records.size(),
            ctxful->unindexed_records.size());
  EXPECT_EQ(legacy->indexed_records.size(), 2u);
  EXPECT_EQ(legacy->unindexed_records.size(), 1u);
}

TEST(CloudServerViewTest, ExpiredDeadlineSurfacesFromScan) {
  cloud::CloudServer server(TinyBinning());
  std::vector<int64_t> counts(10, 1);
  ASSERT_TRUE(server.StartPublication(0).ok());
  for (uint32_t leaf = 0; leaf < 10; ++leaf) {
    (void)server.IngestRecord(0, leaf, Bytes{static_cast<uint8_t>(leaf)});
  }
  ASSERT_TRUE(
      server.PublishIndexed(0, MakePublication(server.binning(), counts))
          .ok());
  QueryContext ctx;
  ctx.deadline_ns = 1;  // epoch + 1ns: expired long ago
  auto r = server.ExecuteQuery({0.0, 9.9}, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CloudServerViewTest, SnapshotRoundTripRebuildsView) {
  std::string path = ::testing::TempDir() + "/query_view_snapshot.bin";
  {
    cloud::CloudServer server(TinyBinning());
    std::vector<int64_t> counts(10, 0);
    counts[4] = 2;
    ASSERT_TRUE(server.StartPublication(0).ok());
    (void)server.IngestRecord(0, 4, Bytes{0x1});
    (void)server.IngestRecord(0, 4, Bytes{0x2});
    ASSERT_TRUE(
        server.PublishIndexed(0, MakePublication(server.binning(), counts))
            .ok());
    ASSERT_TRUE(server.StartPublication(1).ok());  // open at save time
    (void)server.IngestRecord(1, 4, Bytes{0x3});
    ASSERT_TRUE(server.SaveSnapshot(path).ok());
  }
  auto restored = cloud::CloudServer::LoadSnapshot(path);
  ASSERT_TRUE(restored.ok());
  // The installed publication is back in the view; the open one is not.
  EXPECT_EQ((*restored)->CurrentView()->num_publications(), 1u);
  EXPECT_GE((*restored)->view_epoch(), 1u);
  auto r = (*restored)->ExecuteQuery({4.0, 4.9}, QueryContext{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->indexed_records.size(), 2u);
  EXPECT_EQ(r->unindexed_records.size(), 1u);
  EXPECT_EQ((*restored)->total_records(), 3u);
  std::remove(path.c_str());
}

TEST(CloudServerViewTest, LeafCacheServesRepeatQueries) {
  cloud::CloudServer server(TinyBinning());
  std::vector<int64_t> counts(10, 1);
  ASSERT_TRUE(server.StartPublication(0).ok());
  for (uint32_t leaf = 0; leaf < 10; ++leaf) {
    (void)server.IngestRecord(0, leaf, Bytes{static_cast<uint8_t>(leaf)});
  }
  ASSERT_TRUE(
      server.PublishIndexed(0, MakePublication(server.binning(), counts))
          .ok());
  ASSERT_TRUE(server.ExecuteQuery({0.0, 9.9}).ok());
  uint64_t misses_after_first = server.leaf_cache().stats().misses;
  EXPECT_GT(misses_after_first, 0u);
  ASSERT_TRUE(server.ExecuteQuery({0.0, 9.9}).ok());
  auto s = server.leaf_cache().stats();
  EXPECT_EQ(s.misses, misses_after_first);  // all hits the second time
  EXPECT_GT(s.hits, 0u);
}

TEST(CloudServerViewTest, TagFilterCountsAbsentTags) {
  cloud::CloudServer server(TinyBinning());
  ASSERT_TRUE(server.StartPublication(0).ok());
  index::MatchingTable table;
  for (uint64_t t = 0; t < 512; ++t) {
    ASSERT_TRUE(table.Add(t, static_cast<uint32_t>(t % 10)).ok());
  }
  // Half the streamed tags have table entries, half do not.
  for (uint64_t t = 0; t < 64; ++t) {
    (void)server.IngestTagged(0, t, Bytes{static_cast<uint8_t>(t)});
    (void)server.IngestTagged(0, 1u << 20 | t, Bytes{0xFF});
  }
  std::vector<int64_t> counts(10, 7);
  auto stats = server.PublishWithMatchingTable(
      0, MakePublication(server.binning(), counts), table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_matched, 64u);
  // Most absent tags are screened by the filter without a table probe
  // (false positives may leak a few through to the hash lookup).
  EXPECT_GT(stats->filter_negatives, 32u);
  EXPECT_LE(stats->filter_negatives, 64u);
}

}  // namespace
}  // namespace query
}  // namespace fresque
