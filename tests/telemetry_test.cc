#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/queue.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace fresque {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// Registry basics

TEST(RegistryTest, SameNameReturnsSamePointer) {
  Registry reg;
  Counter* a = reg.GetCounter("test.counter");
  Counter* b = reg.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.other"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
}

TEST(RegistryTest, SnapshotReflectsWrites) {
  Registry reg;
  reg.GetCounter("c1")->Add(3);
  reg.GetCounter("c1")->Add(4);
  reg.GetGauge("g1")->Set(-17);
  reg.GetHistogram("h1")->Record(1000);
  reg.GetHistogram("h1")->Record(2000);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c1");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -17);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_EQ(snap.histograms[0].sum, 3000u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].Mean(), 1500.0);
}

TEST(RegistryTest, ResetForTestZeroesButKeepsPointers) {
  Registry reg;
  Counter* c = reg.GetCounter("c");
  c->Add(5);
  reg.GetHistogram("h")->Record(9);
  reg.ResetForTest();
  EXPECT_EQ(c, reg.GetCounter("c"));
  EXPECT_EQ(c->Value(), 0u);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries

TEST(HistogramTest, BucketIndexEdgeValues) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  for (size_t k = 0; k < 64; ++k) {
    EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << k), k + 1)
        << "v=2^" << k;
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  // Buckets must tile [0, UINT64_MAX] with no gaps or overlaps, and every
  // bound must map back into its own bucket.
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    const uint64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "lower bound of " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi), b) << "upper bound of " << b;
    if (b + 1 < Histogram::kBucketCount) {
      EXPECT_EQ(Histogram::BucketLowerBound(b + 1), hi + 1)
          << "gap between buckets " << b << " and " << b + 1;
    }
  }
}

TEST(HistogramTest, RecordLandsInComputedBucket) {
  Histogram h;
  const uint64_t samples[] = {0, 1, 2, 3, 1023, 1024, UINT64_MAX};
  for (uint64_t v : samples) h.Record(v);
  for (uint64_t v : samples) {
    EXPECT_GE(h.BucketValue(Histogram::BucketIndex(v)), 1u) << "v=" << v;
  }
  EXPECT_EQ(h.Count(), 7u);
  // Sum wraps modulo 2^64 (7 + UINT64_MAX + ... ); just check it moved.
  EXPECT_NE(h.Sum(), 0u);
  h.RecordNanos(-5);  // clamps to 0
  EXPECT_EQ(h.BucketValue(0), 2u);
}

TEST(HistogramTest, QuantileInterpolatesWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);  // all in bucket 10
  HistogramSnapshot snap;
  snap.count = h.Count();
  snap.sum = h.Sum();
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    snap.buckets[b] = h.BucketValue(b);
  }
  const double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, static_cast<double>(Histogram::BucketLowerBound(10)));
  EXPECT_LE(p50, static_cast<double>(Histogram::BucketUpperBound(10)) + 1);
  EXPECT_DOUBLE_EQ(snap.Quantile(-1.0), snap.Quantile(0.0));  // clamped
}

// ---------------------------------------------------------------------------
// Registry under concurrency (exactness + TSan cleanliness)

TEST(RegistryConcurrencyTest, ParallelWritersAndSnapshotReader) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = reg.Snapshot();
      for (const auto& [name, v] : snap.counters) {
        EXPECT_LE(v, static_cast<uint64_t>(kThreads) * kIters);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      // Half the threads share one metric, half use per-thread names, so
      // both contended and uncontended registration paths are exercised.
      Counter* shared = reg.GetCounter("conc.shared");
      Counter* own = reg.GetCounter("conc.t" + std::to_string(t));
      Histogram* h = reg.GetHistogram("conc.hist");
      for (int i = 0; i < kIters; ++i) {
        shared->Add(1);
        own->Add(1);
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  MetricsSnapshot snap = reg.Snapshot();
  uint64_t shared = 0, own_total = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "conc.shared") {
      shared = v;
    } else {
      own_total += v;
    }
  }
  EXPECT_EQ(shared, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(own_total, static_cast<uint64_t>(kThreads) * kIters);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Exporters: Prometheus text and JSON roundtrip

TEST(ExportTest, PrometheusTextShape) {
  Registry reg;
  reg.GetCounter("ingest.records_in")->Add(42);
  reg.GetGauge("node.cn0.queue_depth")->Set(7);
  reg.GetHistogram("wal.fsync_ns")->Record(1500);

  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE fresque_ingest_records_in counter"),
            std::string::npos);
  EXPECT_NE(text.find("fresque_ingest_records_in 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fresque_node_cn0_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("fresque_node_cn0_queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fresque_wal_fsync_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fresque_wal_fsync_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fresque_wal_fsync_ns_sum 1500"), std::string::npos);
  EXPECT_NE(text.find("fresque_wal_fsync_ns_count 1"), std::string::npos);
}

TEST(ExportTest, PrometheusBucketsAreCumulative) {
  Registry reg;
  Histogram* h = reg.GetHistogram("cum");
  h->Record(1);    // bucket 1
  h->Record(100);  // bucket 7
  const std::string text = ToPrometheusText(reg.Snapshot());
  // Every le="..." count must be <= the final +Inf count of 2, and the
  // series must end at 2.
  EXPECT_NE(text.find("fresque_cum_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fresque_cum_bucket{le=\"1\"} 1"), std::string::npos);
}

TEST(ExportTest, JsonRoundtripPreservesSnapshot) {
  Registry reg;
  reg.GetCounter("a.b")->Add(123);
  reg.GetGauge("g")->Set(-5);
  Histogram* h = reg.GetHistogram("lat");
  h->Record(0);
  h->Record(999);
  h->Record(UINT64_MAX);

  MetricsSnapshot before = reg.Snapshot();
  const std::string json = ToJson(before);
  ASSERT_TRUE(ValidateJsonSyntax(json).ok()) << json;

  Result<MetricsSnapshot> parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MetricsSnapshot& after = parsed.ValueOrDie();
  ASSERT_EQ(after.counters.size(), before.counters.size());
  EXPECT_EQ(after.counters[0].first, "a.b");
  EXPECT_EQ(after.counters[0].second, 123u);
  ASSERT_EQ(after.gauges.size(), 1u);
  EXPECT_EQ(after.gauges[0].second, -5);
  ASSERT_EQ(after.histograms.size(), 1u);
  EXPECT_EQ(after.histograms[0].count, before.histograms[0].count);
  EXPECT_EQ(after.histograms[0].sum, before.histograms[0].sum);
  EXPECT_EQ(after.histograms[0].buckets, before.histograms[0].buckets);
}

TEST(ExportTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseMetricsJson("").ok());
  EXPECT_FALSE(ParseMetricsJson("{").ok());
  EXPECT_FALSE(ParseMetricsJson("[]").ok());
  EXPECT_FALSE(ParseMetricsJson("{\"counters\": 3}").ok());
  EXPECT_FALSE(ValidateJsonSyntax("{\"a\": }").ok());
  EXPECT_FALSE(ValidateJsonSyntax("{\"a\": 1} trailing").ok());
  EXPECT_TRUE(ValidateJsonSyntax("{\"a\": [1, 2.5e3, true, null]}").ok());
}

TEST(ExportTest, FormatMetricsTableListsEveryMetric) {
  Registry reg;
  reg.GetCounter("rows.counter")->Add(1);
  reg.GetGauge("rows.gauge")->Set(2);
  reg.GetHistogram("rows.hist")->Record(3);
  const std::string table = FormatMetricsTable(reg.Snapshot());
  EXPECT_NE(table.find("rows.counter"), std::string::npos);
  EXPECT_NE(table.find("rows.gauge"), std::string::npos);
  EXPECT_NE(table.find("rows.hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer: ring wraparound, dropped accounting, Chrome JSON golden shape

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global()->ResetForTest(); }
  void TearDown() override { Tracer::Global()->ResetForTest(); }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  EXPECT_FALSE(Tracer::Global()->enabled());
  { ScopedSpan span("ignored"); }
  TracerStats stats = Tracer::Global()->GetStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.threads, 0u);
}

TEST_F(TracerTest, RingWraparoundCountsDropped) {
  constexpr size_t kCapacity = 8;
  constexpr uint64_t kSpans = 20;
  Tracer::Global()->Enable(kCapacity);
  Tracer::Global()->SetCurrentThreadName("wrap-test");
  for (uint64_t i = 0; i < kSpans; ++i) {
    ScopedSpan span("wrap");
  }
  TracerStats stats = Tracer::Global()->GetStats();
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.recorded, kSpans);
  EXPECT_EQ(stats.retained, kCapacity);
  EXPECT_EQ(stats.dropped, kSpans - kCapacity);
}

TEST_F(TracerTest, ChromeTraceJsonIsValidAndNamed) {
  Tracer::Global()->Enable(64);
  Tracer::Global()->SetCurrentThreadName("golden-thread");
  { ScopedSpan span("alpha"); }
  { ScopedSpan span("beta"); }
  Tracer::Global()->Disable();

  const std::string json = Tracer::Global()->ToChromeTraceJson();
  ASSERT_TRUE(ValidateJsonSyntax(json).ok()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("golden-thread"), std::string::npos);
}

TEST_F(TracerTest, MultiThreadSpansLandInSeparateBuffers) {
  Tracer::Global()->Enable(1024);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Tracer::Global()->SetCurrentThreadName("worker" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("mt");
      }
    });
  }
  for (auto& th : threads) th.join();
  TracerStats stats = Tracer::Global()->GetStats();
  EXPECT_EQ(stats.threads, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.recorded,
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(stats.dropped, 0u);
  const std::string json = Tracer::Global()->ToChromeTraceJson();
  ASSERT_TRUE(ValidateJsonSyntax(json).ok());
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(json.find("worker" + std::to_string(t)), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// BoundedQueue wait hook

TEST(QueueWaitHookTest, SampledItemsReportTheirWait) {
  BoundedQueue<int> q(/*capacity=*/4);
  std::vector<int64_t> waits;
  q.SetWaitHook([&waits](int64_t ns) { waits.push_back(ns); });

  // The first item after attach is sampled; the next stride-1 are not.
  q.Push(1);
  q.Push(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  (void)q.TryPop();
  (void)q.TryPop();
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_GE(waits[0], 1'000'000) << "slept 2ms before popping";

  // One full stride later the sampler fires again.
  waits.clear();
  for (uint64_t i = 0; i < BoundedQueue<int>::kWaitSampleStride; ++i) {
    q.Push(static_cast<int>(i));
    (void)q.TryPop();
  }
  EXPECT_EQ(waits.size(), 1u);

  // Detach: further pops must not touch the (soon destroyed) vector.
  q.SetWaitHook(nullptr);
  waits.clear();
  for (int i = 0; i < 3; ++i) {
    q.Push(i);
    (void)q.TryPop();
  }
  EXPECT_TRUE(waits.empty());
}

TEST(QueueWaitHookTest, ItemsPresentAtAttachAreStamped) {
  BoundedQueue<int> q(/*capacity=*/4);
  q.Push(1);  // enqueued before any hook exists
  int calls = 0;
  q.SetWaitHook([&calls](int64_t ns) {
    ++calls;
    EXPECT_GE(ns, 0);
  });
  (void)q.TryPop();
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Macro layer (compiles and counts in both ON and OFF builds)

TEST(MacroTest, CounterMacroAccumulates) {
#if FRESQUE_TELEMETRY_ENABLED
  Counter* c = Registry::Global()->GetCounter("macro.test_counter");
  const uint64_t before = c->Value();
  FRESQUE_COUNTER_ADD("macro.test_counter", 2);
  FRESQUE_COUNTER_ADD("macro.test_counter", 3);
  EXPECT_EQ(c->Value(), before + 5);
#else
  int evaluations = 0;
  FRESQUE_COUNTER_ADD("macro.test_counter", ++evaluations);
  EXPECT_EQ(evaluations, 0) << "disabled macro must not evaluate operands";
#endif
}

}  // namespace
}  // namespace telemetry
}  // namespace fresque
