// Overload control: config validation, the per-node adaptive batching
// controller, and admission shedding at the ingest boundary — including
// a sustained way-over-capacity run that must shed instead of stall and
// still balance the conservation ledger over admitted records.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cloud/server.h"
#include "common/queue.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/config.h"
#include "engine/fresque_collector.h"
#include "net/message.h"
#include "net/node.h"
#include "record/dataset.h"

namespace fresque {
namespace {

// ---------------------------------------------------------------------------
// Config validation

engine::CollectorConfig ValidConfig() {
  auto spec = record::GowallaDataset();
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  return cfg;
}

TEST(ConfigValidationTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidConfig().Validate().ok());
}

TEST(ConfigValidationTest, RejectsZeroCapacityMailbox) {
  auto cfg = ValidConfig();
  cfg.mailbox_capacity = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(ConfigValidationTest, RejectsZeroOrOversizedPipelineBatch) {
  auto cfg = ValidConfig();
  cfg.pipeline_batch_size = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.pipeline_batch_size = cfg.mailbox_capacity + 1;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(ConfigValidationTest, RejectsLingerWithoutBatching) {
  auto cfg = ValidConfig();
  cfg.pipeline_batch_size = 1;
  cfg.pipeline_linger_us = 100;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.pipeline_batch_size = 2;  // any real batch makes linger meaningful
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigValidationTest, RejectsDispatchBatchBeyondMailbox) {
  auto cfg = ValidConfig();
  cfg.dispatch_batch_size = cfg.mailbox_capacity + 1;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.dispatch_batch_size = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(ConfigValidationTest, RejectsZeroComputingNodes) {
  auto cfg = ValidConfig();
  cfg.num_computing_nodes = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(ConfigValidationTest, RejectsBadAdmissionWatermarks) {
  auto cfg = ValidConfig();
  cfg.admission.enabled = true;
  EXPECT_TRUE(cfg.Validate().ok());  // defaults are sane
  cfg.admission.shed_low_watermark = 0.9;
  cfg.admission.shed_high_watermark = 0.5;  // low must shed first
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.admission.shed_low_watermark = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.admission.shed_low_watermark = 0.5;
  cfg.admission.shed_high_watermark = 1.5;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.admission.shed_high_watermark = 0.9;
  cfg.admission.rate_records_per_sec = -1;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
  cfg.admission.rate_records_per_sec = 100;
  cfg.admission.burst_records = 0;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(ConfigValidationTest, StartSurfacesValidationError) {
  auto cfg = ValidConfig();
  cfg.mailbox_capacity = 0;
  crypto::KeyManager keys(Bytes(32, 0x01));
  engine::FresqueCollector collector(cfg, keys, net::MakeMailbox(16));
  Status st = collector.Start();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("mailbox_capacity"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Adaptive batching controller

net::Message RawFrame() {
  net::Message m;
  m.type = net::MessageType::kRawLine;
  return m;
}

TEST(AdaptiveBatchingTest, StaysLatencyFirstAtLowLoad) {
  auto inbox = net::MakeMailbox(1024);
  std::atomic<uint64_t> handled{0};
  net::Node node(
      "t", inbox,
      [&handled](std::vector<net::Message>& batch) {
        handled.fetch_add(batch.size());
        return true;
      },
      net::BatchOptions::Adaptive(64, std::chrono::microseconds(500)));
  node.Start();
  // Sparse traffic: one frame at a time with real gaps. The controller
  // must keep the effective batch near 1 and never engage linger.
  for (int i = 0; i < 200; ++i) {
    inbox->Push(RawFrame());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_LE(node.effective_batch(), 2u);
  EXPECT_EQ(node.effective_linger_ns(), 0);
  node.Stop();
  node.Join();
  EXPECT_EQ(handled.load(), 200u);
}

TEST(AdaptiveBatchingTest, GrowsToFullBatchesUnderPressure) {
  auto inbox = net::MakeMailbox(4096);
  size_t max_seen = 0;
  net::Node node(
      "t", inbox,
      [&max_seen](std::vector<net::Message>& batch) {
        max_seen = std::max(max_seen, batch.size());
        // A little work per batch so a backlog builds behind the pops.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        return true;
      },
      net::BatchOptions::Adaptive(64, std::chrono::nanoseconds(0)));
  node.Start();
  std::vector<net::Message> burst(512);
  for (auto& m : burst) m = RawFrame();
  for (int round = 0; round < 40; ++round) {
    inbox->PushBatch(burst.data(), burst.size());
  }
  node.Stop();
  node.Join();
  // Doubling from 1 reaches the ceiling within ~6 adaptations; with 40
  // rounds of 512-frame bursts the node must have popped full batches.
  EXPECT_EQ(max_seen, 64u);
}

TEST(AdaptiveBatchingTest, StaticOptionsApplyCeilingsVerbatim) {
  auto inbox = net::MakeMailbox(1024);
  net::Node node(
      "t", inbox, [](std::vector<net::Message>&) { return true; },
      net::BatchOptions::Static(32, std::chrono::microseconds(100)));
  EXPECT_EQ(node.effective_batch(), 32u);
  EXPECT_EQ(node.effective_linger_ns(), 100000);
}

// ---------------------------------------------------------------------------
// Queue backlog signal

TEST(QueueBacklogTest, PopBatchReportsBacklogUnderSameLock) {
  BoundedQueue<int> q(64);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> out;
  size_t backlog = 123;
  EXPECT_EQ(q.PopBatch(&out, 4, std::chrono::nanoseconds(0), &backlog), 4u);
  EXPECT_EQ(backlog, 6u);
  EXPECT_EQ(q.PopBatch(&out, 100, std::chrono::nanoseconds(0), &backlog), 6u);
  EXPECT_EQ(backlog, 0u);
  // max == 0 still reports the depth.
  q.Push(7);
  EXPECT_EQ(q.PopBatch(&out, 0, std::chrono::nanoseconds(0), &backlog), 0u);
  EXPECT_EQ(backlog, 1u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(AdmissionTest, TokenBucketShedsAndSurfacesOverloaded) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();
  crypto::KeyManager keys(Bytes(32, 0x21));
  auto cfg = ValidConfig();
  cfg.admission.enabled = true;
  cfg.admission.rate_records_per_sec = 100;  // far below the loop's rate
  cfg.admission.burst_records = 8;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 7);
  uint64_t overloaded = 0;
  for (int i = 0; i < 1000; ++i) {
    Status st = collector.Ingest((*gen)->NextLine());
    if (!st.ok()) {
      ASSERT_TRUE(st.IsOverloaded()) << st.ToString();
      ++overloaded;
    }
  }
  // A tight 1000-iteration loop offers far more than 100 rec/s: the
  // bucket must have run dry.
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(collector.shed_records(), overloaded);
  EXPECT_EQ(collector.shed_records(engine::IngestPriority::kNormal),
            overloaded);
  auto metrics = collector.Metrics();
  EXPECT_EQ(metrics.shed_records, overloaded);
  EXPECT_EQ(metrics.shed_normal, overloaded);
  // Sheds are not drops: nothing entered the pipeline and was lost.
  EXPECT_EQ(metrics.TotalDrops(), 0u);

  EXPECT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
}

TEST(AdmissionTest, HighPriorityOverdrawsTheBucket) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();
  crypto::KeyManager keys(Bytes(32, 0x22));
  auto cfg = ValidConfig();
  cfg.admission.enabled = true;
  cfg.admission.rate_records_per_sec = 10;
  cfg.admission.burst_records = 1;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 8);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(collector
                    .Ingest((*gen)->NextLine(),
                            engine::IngestPriority::kHigh)
                    .ok());
  }
  EXPECT_EQ(collector.shed_records(), 0u);
  EXPECT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
}

TEST(AdmissionTest, DisabledAdmissionNeverSheds) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();
  crypto::KeyManager keys(Bytes(32, 0x23));
  auto cfg = ValidConfig();  // admission.enabled defaults to false
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 9);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  EXPECT_EQ(collector.shed_records(), 0u);
  EXPECT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
}

// ---------------------------------------------------------------------------
// Sustained overload end-to-end

TEST(OverloadPipelineTest, SheddingKeepsPipelineLiveAndLedgerBalanced) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  cloud::CloudServer* srv = &server;
  engine::CloudNode cloud_node(srv);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x24));
  auto cfg = ValidConfig();
  cfg.num_computing_nodes = 2;
  // A closed tight loop offers effectively unbounded rate — far beyond
  // 120% of capacity. The bucket caps the admitted rate well below the
  // loop rate, and the watermarks back it up if queues still build.
  cfg.admission.enabled = true;
  cfg.admission.rate_records_per_sec = 20000;
  cfg.admission.burst_records = 256;
  cfg.admission.shed_high_watermark = 0.8;
  cfg.admission.shed_low_watermark = 0.4;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 10);
  constexpr uint64_t kOffered = 30000;
  uint64_t admitted = 0;
  for (uint64_t i = 0; i < kOffered; ++i) {
    collector.SetIntervalProgress(static_cast<double>(i) / kOffered);
    Status st = collector.Ingest((*gen)->NextLine());
    if (st.ok()) {
      ++admitted;
    } else {
      ASSERT_TRUE(st.IsOverloaded()) << st.ToString();
    }
  }
  EXPECT_GT(collector.shed_records(), 0u);
  EXPECT_EQ(admitted + collector.shed_records(), kOffered);

  ASSERT_TRUE(collector.Publish().ok());
  // Publishes on time despite the overload: the admitted stream is
  // within capacity, so the publication completes well inside the
  // timeout.
  EXPECT_TRUE(
      collector.WaitForPublication(0, std::chrono::milliseconds(20000)).ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok());

  // Conservation over *admitted* records: every admitted record is
  // either stored at the cloud or removed into an overflow array;
  // dummies add on top. Shed records appear nowhere downstream.
  engine::PublishReport report{};
  for (const auto& r : collector.Reports()) {
    if (r.pn == 0) report = r;
  }
  EXPECT_EQ(report.real_records, admitted);
  EXPECT_EQ(collector.Metrics().TotalDrops(), 0u);
  EXPECT_EQ(srv->total_records(),
            report.real_records - report.removed_records +
                report.dummy_records);
}

}  // namespace
}  // namespace fresque
