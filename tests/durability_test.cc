// Durability subsystem tests: WAL framing/rotation/torn-tail semantics,
// snapshot + manifest lifecycle, recovery equivalence (replayed state
// answers queries identically), and corrupt-input hardening of the
// storage / snapshot codecs.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "cloud/storage.h"
#include "crypto/key_manager.h"
#include "durability/crc32.h"
#include "durability/recovery.h"
#include "durability/snapshot_manager.h"
#include "durability/wal.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/payloads.h"
#include "record/dataset.h"

namespace fresque {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Bytes ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

void WriteAll(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::vector<std::string> WalFiles(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) files.push_back(name);
  }
  std::sort(files.begin(), files.end());
  return files;
}

// --- CRC32 ---------------------------------------------------------------

TEST(Crc32Test, KnownVectorAndChaining) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(durability::Crc32(check, sizeof(check)), 0xCBF43926u);
  // Chaining halves must equal one pass.
  uint32_t split = durability::Crc32(check, 4);
  split = durability::Crc32(check + 4, sizeof(check) - 4, split);
  EXPECT_EQ(split, 0xCBF43926u);
  EXPECT_EQ(durability::Crc32(nullptr, 0), 0u);
}

// --- Fsync policy parsing ------------------------------------------------

TEST(FsyncPolicyTest, ParsesAllSpellings) {
  uint64_t ms = 0;
  auto p = durability::ParseFsyncPolicy("always");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, durability::FsyncPolicy::kAlways);
  p = durability::ParseFsyncPolicy("never");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, durability::FsyncPolicy::kNever);
  p = durability::ParseFsyncPolicy("interval");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, durability::FsyncPolicy::kIntervalMs);
  p = durability::ParseFsyncPolicy("interval:250", &ms);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, durability::FsyncPolicy::kIntervalMs);
  EXPECT_EQ(ms, 250u);
  EXPECT_FALSE(durability::ParseFsyncPolicy("sometimes").ok());
  EXPECT_FALSE(durability::ParseFsyncPolicy("interval:abc").ok());
  EXPECT_FALSE(durability::ParseFsyncPolicy("").ok());
}

// --- WAL framing ---------------------------------------------------------

durability::WalOptions TinyWalOptions(const std::string& dir,
                                      size_t segment_bytes = 1 << 20) {
  durability::WalOptions o;
  o.dir = dir;
  o.segment_bytes = segment_bytes;
  o.fsync_policy = durability::FsyncPolicy::kNever;  // tests don't need fsync
  o.batch_records = 4;
  return o;
}

TEST(WalTest, AppendCommitReplayRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  ASSERT_TRUE((*wal)->AppendMeta(0, 10, 1).ok());
  ASSERT_TRUE((*wal)->AppendStart(7).ok());
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wal)->AppendRecord(7, i % 3, Bytes{uint8_t(i), 0xAB}).ok());
  }
  ASSERT_TRUE((*wal)->AppendTagged(7, 999, Bytes{0xCD}).ok());
  Bytes publication{1, 2, 3, 4};
  ASSERT_TRUE((*wal)->AppendInstall(7, publication).ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  std::vector<durability::Wal::Frame> frames;
  auto stats = durability::Wal::Replay(
      dir, 0, [&frames](const durability::Wal::Frame& f) {
        frames.push_back(f);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->torn_tail);
  ASSERT_GE(frames.size(), 4u);

  // LSNs strictly increase and ops arrive in append order.
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_LT(frames[i - 1].lsn, frames[i].lsn);
  }
  EXPECT_EQ(frames[0].op, durability::WalOp::kMeta);
  auto meta = durability::DecodeWalMeta(frames[0].body);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->domain_max, 10);
  EXPECT_EQ(frames[1].op, durability::WalOp::kStart);

  // Every ingested record comes back, in order, batched.
  size_t records_seen = 0;
  size_t tagged_seen = 0;
  for (const auto& f : frames) {
    if (f.op == durability::WalOp::kRecordBatch) {
      auto b = durability::DecodeWalRecordBatch(f.body);
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(b->pn, 7u);
      for (const auto& [leaf, rec] : b->records) {
        EXPECT_EQ(leaf, records_seen % 3);
        ASSERT_EQ(rec.size(), 2u);
        EXPECT_EQ(rec[0], records_seen);
        ++records_seen;
      }
    } else if (f.op == durability::WalOp::kTaggedBatch) {
      auto b = durability::DecodeWalTaggedBatch(f.body);
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(b->records.size(), 1u);
      EXPECT_EQ(b->records[0].first, 999u);
      ++tagged_seen;
    }
  }
  EXPECT_EQ(records_seen, 10u);
  EXPECT_EQ(tagged_seen, 1u);

  // The install is the last frame and carries the payload verbatim.
  EXPECT_EQ(frames.back().op, durability::WalOp::kInstall);
  auto ins = durability::DecodeWalInstall(frames.back().op,
                                          frames.back().body);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->pn, 7u);
  EXPECT_EQ(ins->publication, publication);
  EXPECT_TRUE(ins->table.empty());
}

TEST(WalTest, RecordsBeforeInstallPerPublication) {
  // Interleave two publications; replay must still see every record of a
  // publication before that publication's install frame.
  std::string dir = FreshDir("wal_interleave");
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendStart(1).ok());
  ASSERT_TRUE((*wal)->AppendStart(2).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*wal)->AppendRecord(1, 0, Bytes{0x11}).ok());
    ASSERT_TRUE((*wal)->AppendRecord(2, 0, Bytes{0x22}).ok());
  }
  ASSERT_TRUE((*wal)->AppendInstall(1, Bytes{0xA1}).ok());
  ASSERT_TRUE((*wal)->AppendInstall(2, Bytes{0xA2}).ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  std::map<uint64_t, size_t> records;
  std::map<uint64_t, bool> installed;
  auto stats = durability::Wal::Replay(
      dir, 0, [&](const durability::Wal::Frame& f) -> Status {
        if (f.op == durability::WalOp::kRecordBatch) {
          auto b = durability::DecodeWalRecordBatch(f.body);
          if (!b.ok()) return b.status();
          if (installed[b->pn]) {
            return Status::Internal("record after install");
          }
          records[b->pn] += b->records.size();
        } else if (f.op == durability::WalOp::kInstall) {
          auto ins = durability::DecodeWalInstall(f.op, f.body);
          if (!ins.ok()) return ins.status();
          installed[ins->pn] = true;
        }
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(records[1], 6u);
  EXPECT_EQ(records[2], 6u);
  EXPECT_TRUE(installed[1]);
  EXPECT_TRUE(installed[2]);
}

TEST(WalTest, RotatesSegmentsAndReplaysAcrossThem) {
  std::string dir = FreshDir("wal_rotate");
  auto wal = durability::Wal::Open(TinyWalOptions(dir, /*segment_bytes=*/512));
  ASSERT_TRUE(wal.ok());
  Bytes rec(64, 0x5A);
  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE((*wal)->AppendRecord(1, i, rec).ok());
    ASSERT_TRUE((*wal)->Commit().ok());  // seal one batch per record
  }
  EXPECT_GT(WalFiles(dir).size(), 1u);

  size_t seen = 0;
  uint64_t last_lsn = 0;
  auto stats = durability::Wal::Replay(
      dir, 0, [&](const durability::Wal::Frame& f) {
        EXPECT_GT(f.lsn, last_lsn);  // strict order across segment files
        last_lsn = f.lsn;
        auto b = durability::DecodeWalRecordBatch(f.body);
        EXPECT_TRUE(b.ok());
        seen += b->records.size();
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(seen, 40u);
}

TEST(WalTest, TornTailIsToleratedAndTruncatedOnReopen) {
  std::string dir = FreshDir("wal_torn");
  uint64_t durable_lsn = 0;
  {
    auto wal = durability::Wal::Open(TinyWalOptions(dir));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendStart(1).ok());
    ASSERT_TRUE((*wal)->AppendRecord(1, 0, Bytes(100, 0x77)).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
    durable_lsn = (*wal)->last_lsn();
  }
  // Simulate a crash mid-write: chop bytes off the tail of the last file.
  auto files = WalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  std::string seg = dir + "/" + files[0];
  Bytes full = ReadAll(seg);
  Bytes cut(full.begin(), full.end() - 5);
  WriteAll(seg, cut);

  // Replay: every complete frame survives, the torn one is reported.
  size_t frames = 0;
  auto stats = durability::Wal::Replay(
      dir, 0, [&frames](const durability::Wal::Frame&) {
        ++frames;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_GT(stats->torn_bytes, 0u);
  EXPECT_EQ(stats->last_lsn, durable_lsn - 1);
  EXPECT_EQ(frames, durable_lsn - 1);

  // Reopen: the torn tail is truncated away and appends continue cleanly.
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE((*wal)->AppendStart(2).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  durability::DurabilityMetrics m;
  (*wal)->FillMetrics(&m);
  EXPECT_GT(m.wal_torn_bytes_discarded, 0u);

  size_t frames_after = 0;
  stats = durability::Wal::Replay(
      dir, 0, [&frames_after](const durability::Wal::Frame&) {
        ++frames_after;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(frames_after, frames + 1);
}

TEST(WalTest, MidFileCorruptionIsCorruptionNotTornTail) {
  std::string dir = FreshDir("wal_corrupt");
  {
    auto wal = durability::Wal::Open(TinyWalOptions(dir, /*segment_bytes=*/256));
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*wal)->AppendRecord(1, 0, Bytes(40, 0x33)).ok());
      ASSERT_TRUE((*wal)->Commit().ok());
    }
  }
  auto files = WalFiles(dir);
  ASSERT_GT(files.size(), 1u);
  // Flip one byte in the middle of the FIRST segment: this is damage, not
  // an in-flight write, and replay must refuse rather than silently skip.
  std::string seg = dir + "/" + files[0];
  Bytes data = ReadAll(seg);
  data[data.size() / 2] ^= 0x01;
  WriteAll(seg, data);

  auto stats = durability::Wal::Replay(
      dir, 0, [](const durability::Wal::Frame&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
}

TEST(WalTest, TruncateObsoleteDropsCoveredSegments) {
  std::string dir = FreshDir("wal_truncate");
  auto wal = durability::Wal::Open(TinyWalOptions(dir, /*segment_bytes=*/256));
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*wal)->AppendRecord(1, 0, Bytes(40, 0x44)).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  uint64_t mid_lsn = (*wal)->last_lsn();
  size_t before = WalFiles(dir).size();
  ASSERT_GT(before, 2u);

  auto dropped = (*wal)->TruncateObsolete(mid_lsn);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_GT(*dropped, 0u);
  EXPECT_LT(WalFiles(dir).size(), before);

  // Frames after the truncation point still replay.
  ASSERT_TRUE((*wal)->AppendRecord(2, 0, Bytes{0x55}).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  size_t tail = 0;
  auto stats = durability::Wal::Replay(
      dir, mid_lsn, [&tail](const durability::Wal::Frame&) {
        ++tail;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(tail, 1u);
}

TEST(WalTest, FsyncPolicyDrivesFsyncCount) {
  std::string dir = FreshDir("wal_fsync_always");
  auto opts = TinyWalOptions(dir);
  opts.fsync_policy = durability::FsyncPolicy::kAlways;
  auto wal = durability::Wal::Open(opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal)->AppendRecord(1, 0, Bytes{0x66}).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  durability::DurabilityMetrics m;
  (*wal)->FillMetrics(&m);
  EXPECT_GE(m.wal_fsyncs, 5u);

  std::string dir2 = FreshDir("wal_fsync_never");
  auto wal2 = durability::Wal::Open(TinyWalOptions(dir2));
  ASSERT_TRUE(wal2.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal2)->AppendRecord(1, 0, Bytes{0x66}).ok());
    ASSERT_TRUE((*wal2)->Commit().ok());
  }
  durability::DurabilityMetrics m2;
  (*wal2)->FillMetrics(&m2);
  EXPECT_EQ(m2.wal_fsyncs, 0u);
}

// --- SegmentStorage hardening + iteration --------------------------------

TEST(SegmentStorageTest, ForEachRecordVisitsAppendOrderWithoutCopy) {
  cloud::SegmentStorage storage(/*segment_capacity=*/64);
  std::vector<Bytes> truth;
  for (uint8_t i = 0; i < 50; ++i) {
    Bytes rec(1 + i % 7, i);
    truth.push_back(rec);
    storage.Append(rec);
  }
  ASSERT_GT(storage.num_segments(), 1u);  // forced rotation

  size_t i = 0;
  Status st = storage.ForEachRecord(
      [&](const cloud::PhysicalAddress& addr, const uint8_t* data,
          size_t size) -> Status {
        EXPECT_TRUE(storage.Contains(addr));
        EXPECT_EQ(Bytes(data, data + size), truth[i]);
        ++i;
        return Status::OK();
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(i, truth.size());

  // Early exit propagates.
  st = storage.ForEachRecord([](const cloud::PhysicalAddress&, const uint8_t*,
                                size_t) {
    return Status::Internal("stop");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("stop"), std::string::npos);
}

TEST(SegmentStorageTest, SerializeRoundTripPreservesDirectory) {
  cloud::SegmentStorage storage(128);
  for (uint8_t i = 0; i < 20; ++i) storage.Append(Bytes(10, i));
  Bytes blob = storage.Serialize();
  auto restored = cloud::SegmentStorage::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_records(), 20u);
  EXPECT_EQ(restored->total_bytes(), 200u);
  size_t i = 0;
  ASSERT_TRUE(restored
                  ->ForEachRecord([&](const cloud::PhysicalAddress&,
                                      const uint8_t* data, size_t size) {
                    EXPECT_EQ(size, 10u);
                    EXPECT_EQ(data[0], i);
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, 20u);
}

TEST(SegmentStorageTest, EveryTruncationOfSnapshotFailsCleanly) {
  cloud::SegmentStorage storage(64);
  for (uint8_t i = 0; i < 12; ++i) storage.Append(Bytes(9, i));
  Bytes blob = storage.Serialize();
  for (size_t len = 0; len < blob.size(); ++len) {
    Bytes cut(blob.begin(), blob.begin() + len);
    auto restored = cloud::SegmentStorage::Deserialize(cut);
    EXPECT_FALSE(restored.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SegmentStorageTest, BitFlipsNeverCrashDeserialize) {
  cloud::SegmentStorage storage(64);
  for (uint8_t i = 0; i < 12; ++i) storage.Append(Bytes(9, i));
  Bytes blob = storage.Serialize();
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutated = blob;
    size_t pos = rng() % mutated.size();
    mutated[pos] ^= uint8_t(1u << (rng() % 8));
    auto restored = cloud::SegmentStorage::Deserialize(mutated);
    if (restored.ok()) {
      // A flip inside segment payload is undetectable here (the cloud
      // snapshot has no per-record checksum) — but structural invariants
      // must still hold.
      EXPECT_EQ(restored->num_records(), 12u);
      size_t n = 0;
      EXPECT_TRUE(restored
                      ->ForEachRecord([&n](const cloud::PhysicalAddress&,
                                           const uint8_t*, size_t) {
                        ++n;
                        return Status::OK();
                      })
                      .ok());
      EXPECT_EQ(n, 12u);
    }
  }
}

// --- Cloud snapshot hardening --------------------------------------------

std::unique_ptr<cloud::CloudServer> SmallPublishedServer() {
  auto binning = index::DomainBinning::Create(0, 10, 1);
  auto server =
      std::make_unique<cloud::CloudServer>(std::move(binning).ValueOrDie());
  EXPECT_TRUE(server->StartPublication(0).ok());
  for (uint32_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(server->IngestRecord(0, i % 10, Bytes(16, uint8_t(i))).ok());
  }
  auto layout = index::IndexLayout::Create(10, 4);
  std::vector<int64_t> counts(10, 3);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(),
      index::DomainBinning::Create(0, 10, 1).ValueOrDie(), counts);
  index::OverflowArrays ovf(10, 1);
  Bytes payload = net::EncodeIndexPublication(net::IndexPublication(
      std::move(idx).ValueOrDie(), std::move(ovf)));
  auto pub = net::DecodeIndexPublication(payload);
  EXPECT_TRUE(pub.ok());
  EXPECT_TRUE(
      server->PublishIndexed(0, std::move(*pub), std::move(payload)).ok());
  // Plus an open publication with cached metadata.
  EXPECT_TRUE(server->StartPublication(1).ok());
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(server->IngestRecord(1, i, Bytes(8, 0xEE)).ok());
  }
  return server;
}

TEST(SnapshotHardeningTest, TruncationsAndBitFlipsFailCleanly) {
  auto server = SmallPublishedServer();
  std::string path = std::string(::testing::TempDir()) + "/harden_snap.bin";
  ASSERT_TRUE(server->SaveSnapshot(path).ok());
  Bytes blob = ReadAll(path);
  std::remove(path.c_str());
  ASSERT_GT(blob.size(), 100u);
  std::string tmp = std::string(::testing::TempDir()) + "/harden_mut.bin";

  // Truncations: never OK (the format is exhaustively length-checked).
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng() % blob.size();
    WriteAll(tmp, Bytes(blob.begin(), blob.begin() + len));
    auto restored = cloud::CloudServer::LoadSnapshot(tmp);
    EXPECT_FALSE(restored.ok()) << "prefix of " << len << " bytes parsed";
  }

  // Bit flips: must never crash; when parsing succeeds the state must be
  // internally consistent (addresses in bounds => queries can't fault).
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = blob;
    size_t pos = rng() % mutated.size();
    mutated[pos] ^= uint8_t(1u << (rng() % 8));
    WriteAll(tmp, mutated);
    auto restored = cloud::CloudServer::LoadSnapshot(tmp);
    if (restored.ok()) {
      index::RangeQuery q{0, 10};
      (void)(*restored)->ExecuteQuery(q);
      (void)(*restored)->total_records();
    }
  }
  std::remove(tmp.c_str());
}

// --- SnapshotManager -----------------------------------------------------

TEST(SnapshotManagerTest, WritesManifestAtomicallyAndTruncatesWal) {
  std::string dir = FreshDir("snapmgr");
  auto wal = durability::Wal::Open(TinyWalOptions(dir, /*segment_bytes=*/256));
  ASSERT_TRUE(wal.ok());
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  durability::SnapshotOptions sopts;
  sopts.dir = dir;
  sopts.snapshot_every_installs = 2;
  durability::SnapshotManager manager(sopts, &server, wal->get());

  ASSERT_TRUE(server.StartPublication(0).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server.IngestRecord(0, 0, Bytes(40, 0x12)).ok());
    ASSERT_TRUE((*wal)->AppendRecord(0, 0, Bytes(40, 0x12)).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  size_t segments_before = WalFiles(dir).size();
  ASSERT_GT(segments_before, 1u);

  // Below the threshold: nothing happens.
  ASSERT_TRUE(manager.NoteInstall().ok());
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST"));
  // Threshold reached: snapshot + manifest + truncation.
  ASSERT_TRUE(manager.NoteInstall().ok());
  ASSERT_TRUE(fs::exists(dir + "/MANIFEST"));

  auto manifest = durability::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->wal_lsn, (*wal)->last_lsn());
  ASSERT_FALSE(manifest->snapshot_file.empty());
  EXPECT_TRUE(fs::exists(dir + "/" + manifest->snapshot_file));
  EXPECT_LT(WalFiles(dir).size(), segments_before);

  // The named snapshot loads and holds the full state.
  auto restored =
      cloud::CloudServer::LoadSnapshot(dir + "/" + manifest->snapshot_file);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->total_records(), 20u);

  // A second snapshot replaces the first (old file garbage-collected).
  ASSERT_TRUE(manager.WriteSnapshot().ok());
  auto manifest2 = durability::ReadManifest(dir);
  ASSERT_TRUE(manifest2.ok());
  size_t snapshot_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("snapshot-", 0) == 0) {
      ++snapshot_files;
    }
  }
  EXPECT_EQ(snapshot_files, 1u);

  durability::DurabilityMetrics m;
  manager.FillMetrics(&m);
  EXPECT_EQ(m.snapshots_written, 2u);
  EXPECT_EQ(m.snapshot_failures, 0u);
}

TEST(SnapshotManagerTest, RejectsEscapingManifestPath) {
  std::string dir = FreshDir("manifest_escape");
  ASSERT_TRUE(
      durability::WriteManifest(dir, {"../../etc/passwd", 1}).ok());
  auto manifest = durability::ReadManifest(dir);
  EXPECT_TRUE(manifest.status().IsCorruption());
}

// --- Recovery ------------------------------------------------------------

TEST(RecoveryTest, LogOnlyRecoveryRebuildsServer) {
  std::string dir = FreshDir("recover_logonly");
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode node(&server);
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(node.AttachDurability(wal->get()).ok());
  node.Start();

  auto push = [&node](net::MessageType type, uint64_t pn, uint64_t leaf,
                      Bytes payload) {
    net::Message m;
    m.type = type;
    m.pn = pn;
    m.leaf = leaf;
    m.payload = std::move(payload);
    node.inbox()->Push(std::move(m));
  };
  push(net::MessageType::kPublicationStart, 0, 0, {});
  for (uint32_t i = 0; i < 25; ++i) {
    push(net::MessageType::kCloudRecord, 0, i % 10, Bytes(12, uint8_t(i)));
  }
  auto layout = index::IndexLayout::Create(10, 4);
  std::vector<int64_t> counts(10, 0);
  for (uint32_t i = 0; i < 25; ++i) counts[i % 10] += 1;
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(),
      index::DomainBinning::Create(0, 10, 1).ValueOrDie(), counts);
  index::OverflowArrays ovf(10, 1);
  push(net::MessageType::kIndexPublication, 0, 0,
       net::EncodeIndexPublication(net::IndexPublication(
           std::move(idx).ValueOrDie(), std::move(ovf))));
  // An open publication rides along in the log tail.
  push(net::MessageType::kPublicationStart, 1, 0, {});
  push(net::MessageType::kCloudRecord, 1, 3, Bytes(7, 0x99));
  push(net::MessageType::kShutdown, 0, 0, {});
  node.Shutdown();
  ASSERT_TRUE(node.first_error().ok()) << node.first_error().ToString();

  auto recovered = durability::RecoveryManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->stats.snapshot_loaded);
  EXPECT_EQ(recovered->server->num_publications(), 2u);
  EXPECT_EQ(recovered->server->total_records(), server.total_records());
  EXPECT_EQ(recovered->server->total_bytes(), server.total_bytes());
  EXPECT_EQ(recovered->stats.records_replayed, 26u);
  EXPECT_EQ(recovered->stats.installs_replayed, 1u);

  // Byte-identical storage for the published publication.
  std::vector<Bytes> original, replayed;
  ASSERT_TRUE(server
                  .ForEachStoredRecord(
                      0,
                      [&](const cloud::PhysicalAddress&, const uint8_t* d,
                          size_t n) {
                        original.emplace_back(d, d + n);
                        return Status::OK();
                      })
                  .ok());
  ASSERT_TRUE(recovered->server
                  ->ForEachStoredRecord(
                      0,
                      [&](const cloud::PhysicalAddress&, const uint8_t* d,
                          size_t n) {
                        replayed.emplace_back(d, d + n);
                        return Status::OK();
                      })
                  .ok());
  EXPECT_EQ(original, replayed);

  // Evidence (verbatim publication payload) survives replay.
  auto ev_before = server.PublicationEvidence(0);
  auto ev_after = recovered->server->PublicationEvidence(0);
  ASSERT_TRUE(ev_before.ok() && ev_after.ok());
  EXPECT_EQ(*ev_before, *ev_after);
}

TEST(RecoveryTest, TaggedInstallReplays) {
  std::string dir = FreshDir("recover_tagged");
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode node(&server);
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(node.AttachDurability(wal->get()).ok());
  node.Start();

  auto push = [&node](net::MessageType type, uint64_t pn, uint64_t leaf,
                      Bytes payload) {
    net::Message m;
    m.type = type;
    m.pn = pn;
    m.leaf = leaf;
    m.payload = std::move(payload);
    node.inbox()->Push(std::move(m));
  };
  push(net::MessageType::kPublicationStart, 0, 0, {});
  push(net::MessageType::kCloudTaggedRecord, 0, 777, Bytes{0xBB, 0xBB});
  index::MatchingTable table;
  ASSERT_TRUE(table.Add(777, 2).ok());
  push(net::MessageType::kMatchingTable, 0, 0,
       net::EncodeMatchingTable(table));
  auto layout = index::IndexLayout::Create(10, 4);
  std::vector<int64_t> counts(10, 0);
  counts[2] = 1;
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(),
      index::DomainBinning::Create(0, 10, 1).ValueOrDie(), counts);
  index::OverflowArrays ovf(10, 1);
  push(net::MessageType::kIndexPublication, 0, 0,
       net::EncodeIndexPublication(net::IndexPublication(
           std::move(idx).ValueOrDie(), std::move(ovf))));
  push(net::MessageType::kShutdown, 0, 0, {});
  node.Shutdown();
  ASSERT_TRUE(node.first_error().ok()) << node.first_error().ToString();
  ASSERT_EQ(node.matching_stats().size(), 1u);

  auto recovered = durability::RecoveryManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->server->num_publications(), 1u);
  EXPECT_EQ(recovered->server->total_records(), 1u);
  EXPECT_EQ(recovered->stats.installs_replayed, 1u);
}

TEST(RecoveryTest, SnapshotPlusWalTailRecoversEverything) {
  std::string dir = FreshDir("recover_snap_tail");
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  auto wal = durability::Wal::Open(TinyWalOptions(dir));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendMeta(0, 10, 1).ok());

  // Phase 1: one publication, snapshotted.
  ASSERT_TRUE(server.StartPublication(0).ok());
  ASSERT_TRUE((*wal)->AppendStart(0).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.IngestRecord(0, 1, Bytes(6, 0x10)).ok());
    ASSERT_TRUE((*wal)->AppendRecord(0, 1, Bytes(6, 0x10)).ok());
  }
  durability::SnapshotOptions sopts;
  sopts.dir = dir;
  durability::SnapshotManager manager(sopts, &server, wal->get());
  ASSERT_TRUE(manager.WriteSnapshot().ok());

  // Phase 2: more records after the snapshot, in the WAL only.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.IngestRecord(0, 2, Bytes(6, 0x20)).ok());
    ASSERT_TRUE((*wal)->AppendRecord(0, 2, Bytes(6, 0x20)).ok());
  }
  ASSERT_TRUE((*wal)->Commit().ok());

  auto recovered = durability::RecoveryManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->stats.snapshot_loaded);
  EXPECT_EQ(recovered->stats.records_replayed, 5u);
  EXPECT_EQ(recovered->server->total_records(), 15u);
}

TEST(RecoveryTest, EmptyDirIsNotFound) {
  std::string dir = FreshDir("recover_empty");
  auto recovered = durability::RecoveryManager::Recover(dir);
  EXPECT_TRUE(recovered.status().IsNotFound())
      << recovered.status().ToString();
}

// --- Full-pipeline recovery equivalence ----------------------------------

TEST(RecoveryTest, CollectorPipelineStateSurvivesRecovery) {
  std::string dir = FreshDir("recover_pipeline");
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);

  durability::WalOptions wopts;
  wopts.dir = dir;
  wopts.fsync_policy = durability::FsyncPolicy::kNever;
  auto wal = durability::Wal::Open(std::move(wopts));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(cloud_node.AttachDurability(wal->get()).ok());
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x70));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 31;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 8);
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  for (int i = 0; i < 120; ++i) {  // open interval rides in the WAL tail
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());
  ASSERT_TRUE(collector.WaitForPublication(0).ok());
  ASSERT_TRUE(collector.WaitForPublication(1).ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();

  auto recovered = durability::RecoveryManager::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->server->num_publications(),
            server.num_publications());
  EXPECT_EQ(recovered->server->total_records(), server.total_records());
  EXPECT_EQ(recovered->server->total_bytes(), server.total_bytes());

  // The recovered cloud answers queries identically (same records, since
  // all state — index, overflow, postings — replays deterministically).
  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto before = client.Query(server, q);
  auto after = client.Query(*recovered->server, q);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->size(), after->size());
  EXPECT_GT(after->size(), 0u);
  // And its integrity evidence still verifies.
  EXPECT_TRUE(client.VerifyPublication(*recovered->server, 0).ok());
  EXPECT_TRUE(client.VerifyPublication(*recovered->server, 1).ok());
}

}  // namespace
}  // namespace fresque
