// End-to-end mini-stores built on the Table 1 baseline schemes, so the
// comparison is between *working systems*, not just primitives: an
// OPE-ordered store and a bucketized store, each answering the same
// range queries as the FRESQUE pipeline — with their respective leaks.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "baseline/bucketization.h"
#include "baseline/ope.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "record/record.h"
#include "record/schema.h"
#include "record/secure_codec.h"

namespace fresque {
namespace baseline {
namespace {

record::Schema PointSchema() {
  auto s = record::Schema::Create(
      {{"id", record::ValueType::kInt64},
       {"v", record::ValueType::kInt64}},
      "v");
  return std::move(s).ValueOrDie();
}

// An OPE-based encrypted store: server keeps a map ordered by the OPE
// ciphertext of the indexed value; range queries are ciphertext-interval
// scans. Exact answers, total-order leak.
TEST(OpeStoreTest, ExactRangeAnswersOverEncryptedStore) {
  record::Schema schema = PointSchema();
  crypto::SecureRandom rng(1);
  auto ope = OpeScheme::Create(Bytes(16, 0x01), 10000);
  ASSERT_TRUE(ope.ok());
  auto codec =
      record::SecureRecordCodec::Create(Bytes(32, 0x02), &schema, &rng);
  ASSERT_TRUE(codec.ok());

  // "Server" state: OPE ciphertext -> AES-encrypted record.
  std::multimap<uint64_t, Bytes> server;
  Xoshiro256 data_rng(7);
  std::vector<int64_t> truth;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = static_cast<int64_t>(data_rng.NextBounded(10000));
    truth.push_back(v);
    record::Record rec({record::Value(int64_t{i}), record::Value(v)});
    server.emplace(*ope->Encrypt(static_cast<uint64_t>(v)),
                   *codec->EncryptRecord(rec));
  }

  // Client queries [lo, hi] as a ciphertext interval.
  auto query = [&](uint64_t lo, uint64_t hi) {
    auto range = ope->EncryptRange(lo, hi);
    size_t hits = 0;
    for (auto it = server.lower_bound(range->first);
         it != server.end() && it->first <= range->second; ++it) {
      auto opened = codec->Decrypt(it->second);
      EXPECT_TRUE(opened.ok());
      ++hits;
    }
    return hits;
  };

  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 9999}, {100, 200}, {5000, 5000}, {9000, 9999}}) {
    size_t expected = static_cast<size_t>(std::count_if(
        truth.begin(), truth.end(), [&](int64_t v) {
          return v >= static_cast<int64_t>(lo) &&
                 v <= static_cast<int64_t>(hi);
        }));
    EXPECT_EQ(query(lo, hi), expected) << lo << ".." << hi;
  }

  // And the leak: the server's key order IS the plaintext order.
  uint64_t prev_ct = 0;
  int64_t prev_pt = -1;
  for (const auto& [ct, payload] : server) {
    (void)payload;
    int64_t pt = static_cast<int64_t>(*ope->Decrypt(ct));
    EXPECT_GE(ct, prev_ct);
    EXPECT_GE(pt, prev_pt);  // sorted ciphertexts = sorted plaintexts
    prev_ct = ct;
    prev_pt = pt;
  }
}

// A bucketized store: server keys whole buckets by opaque tag; queries
// fetch every intersecting bucket and the client filters. Over-fetch,
// no order leak at the server.
TEST(BucketStoreTest, WholeBucketFetchWithClientFilter) {
  record::Schema schema = PointSchema();
  crypto::SecureRandom rng(2);
  auto buckets = Bucketization::Create(Bytes(16, 0x03), 0, 10000, 100);
  ASSERT_TRUE(buckets.ok());
  auto codec =
      record::SecureRecordCodec::Create(Bytes(32, 0x04), &schema, &rng);
  ASSERT_TRUE(codec.ok());

  std::multimap<uint64_t, Bytes> server;  // tag -> e-record
  Xoshiro256 data_rng(8);
  std::vector<int64_t> truth;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = static_cast<int64_t>(data_rng.NextBounded(10000));
    truth.push_back(v);
    record::Record rec({record::Value(int64_t{i}), record::Value(v)});
    server.emplace(*buckets->TagOf(static_cast<double>(v)),
                   *codec->EncryptRecord(rec));
  }

  double lo = 1234, hi = 4321;
  auto tags = buckets->TagsForRange(lo, hi);
  ASSERT_TRUE(tags.ok());
  size_t fetched = 0, matched = 0;
  for (uint64_t tag : *tags) {
    auto [begin, end] = server.equal_range(tag);
    for (auto it = begin; it != end; ++it) {
      ++fetched;
      auto opened = codec->Decrypt(it->second);
      ASSERT_TRUE(opened.ok());
      double v = *opened->rec.IndexedValue(schema);
      if (v >= lo && v <= hi) ++matched;
    }
  }
  size_t expected = static_cast<size_t>(std::count_if(
      truth.begin(), truth.end(),
      [&](int64_t v) { return v >= lo && v <= hi; }));
  EXPECT_EQ(matched, expected);   // exact after client filtering
  EXPECT_GE(fetched, matched);    // whole buckets => over-fetch
  EXPECT_LE(fetched, matched + 2 * (2000 / 100) * 3);  // ~2 edge buckets

  // No order leak: adjacent buckets' tags are not monotone.
  auto all = buckets->TagsForRange(0, 9999);
  int inversions = 0;
  for (size_t i = 1; i < all->size(); ++i) {
    if ((*all)[i] < (*all)[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 10);
}

}  // namespace
}  // namespace baseline
}  // namespace fresque
