#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "record/dataset.h"
#include "record/parser.h"
#include "record/record.h"
#include "record/schema.h"
#include "record/secure_codec.h"
#include "record/value.h"

namespace fresque {
namespace record {
namespace {

Schema TestSchema() {
  auto s = Schema::Create(
      {
          {"id", ValueType::kInt64},
          {"score", ValueType::kDouble},
          {"name", ValueType::kString},
      },
      "score");
  return std::move(s).ValueOrDie();
}

// ------------------------------------------------------------------ Value

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s(std::string("hi"));
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "hi");
  EXPECT_EQ(*i.AsNumeric(), 42.0);
  EXPECT_EQ(*d.AsNumeric(), 2.5);
  EXPECT_FALSE(s.AsNumeric().ok());
}

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, IndexedFieldMustBeNumeric) {
  auto bad = Schema::Create({{"a", ValueType::kString}}, "a");
  EXPECT_FALSE(bad.ok());
  auto missing = Schema::Create({{"a", ValueType::kInt64}}, "b");
  EXPECT_FALSE(missing.ok());
  auto empty = Schema::Create({}, "a");
  EXPECT_FALSE(empty.ok());
}

TEST(SchemaTest, FieldLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.FieldIndex("name"), 2u);
  EXPECT_FALSE(s.FieldIndex("ghost").ok());
  EXPECT_EQ(s.indexed_field_index(), 1u);
  EXPECT_EQ(s.indexed_field().name, "score");
}

// ------------------------------------------------------------ RecordCodec

TEST(RecordCodecTest, RoundTrip) {
  Schema s = TestSchema();
  RecordCodec codec(&s);
  Record rec({Value(int64_t{7}), Value(1.5), Value(std::string("abc"))});
  auto bytes = codec.Serialize(rec);
  ASSERT_TRUE(bytes.ok());
  auto back = codec.Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rec);
}

TEST(RecordCodecTest, RejectsArityMismatch) {
  Schema s = TestSchema();
  RecordCodec codec(&s);
  Record too_short({Value(int64_t{1})});
  EXPECT_FALSE(codec.Serialize(too_short).ok());
}

TEST(RecordCodecTest, RejectsTypeMismatch) {
  Schema s = TestSchema();
  RecordCodec codec(&s);
  Record wrong({Value(1.0), Value(1.5), Value(std::string("x"))});
  EXPECT_FALSE(codec.Serialize(wrong).ok());
}

TEST(RecordCodecTest, RejectsTrailingGarbage) {
  Schema s = TestSchema();
  RecordCodec codec(&s);
  Record rec({Value(int64_t{7}), Value(1.5), Value(std::string("abc"))});
  auto bytes = codec.Serialize(rec);
  bytes->push_back(0xFF);
  EXPECT_FALSE(codec.Deserialize(*bytes).ok());
}

// Property: random records survive the codec.
TEST(RecordCodecTest, PropertyRandomRoundTrips) {
  Schema s = TestSchema();
  RecordCodec codec(&s);
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 500; ++trial) {
    std::string name;
    size_t len = rng.NextBounded(40);
    for (size_t i = 0; i < len; ++i) {
      name.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    Record rec({Value(static_cast<int64_t>(rng.Next())),
                Value(rng.NextDouble() * 1e6), Value(std::move(name))});
    auto bytes = codec.Serialize(rec);
    ASSERT_TRUE(bytes.ok());
    auto back = codec.Deserialize(*bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, rec);
  }
}

// --------------------------------------------------------- ApacheLogParser

TEST(ApacheLogParserTest, ParsesCanonicalLine) {
  auto parser = ApacheLogParser::Create();
  ASSERT_TRUE(parser.ok());
  auto rec = (*parser)->Parse(
      "piweba3y.prodigy.com - - [05/Jul/1995:12:30:45 -0400] "
      "\"GET /shuttle/countdown/ HTTP/1.0\" 200 4324");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->value(0).AsString(), "piweba3y.prodigy.com");
  EXPECT_EQ(rec->value(2).AsString(), "GET /shuttle/countdown/ HTTP/1.0");
  EXPECT_EQ(rec->value(3).AsInt64(), 200);
  EXPECT_EQ(rec->value(4).AsInt64(), 4324);
  // Indexed attribute = bytes.
  EXPECT_EQ(*rec->IndexedValue((*parser)->schema()), 4324.0);
}

TEST(ApacheLogParserTest, DashBytesMeansZero) {
  auto parser = ApacheLogParser::Create();
  auto rec = (*parser)->Parse(
      "host - - [01/Jan/1995:00:00:00 -0400] \"GET / HTTP/1.0\" 304 -");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->value(4).AsInt64(), 0);
}

TEST(ApacheLogParserTest, MalformedLinesFail) {
  auto parser = ApacheLogParser::Create();
  EXPECT_FALSE((*parser)->Parse("").ok());
  EXPECT_FALSE((*parser)->Parse("just words").ok());
  EXPECT_FALSE((*parser)->Parse("host - - [notadate] \"GET /\" 200 1").ok());
  EXPECT_FALSE(
      (*parser)
          ->Parse("host - - [01/Jan/1995:00:00:00 -0400] no quotes 200 5")
          .ok());
  EXPECT_FALSE(
      (*parser)
          ->Parse(
              "host - - [01/Jan/1995:00:00:00 -0400] \"GET /\" twohundred 5")
          .ok());
}

// ---------------------------------------------------------------- CsvParser

TEST(CsvParserTest, ParsesTypedCells) {
  CsvParser parser(TestSchema());
  auto rec = parser.Parse("12,3.5,bob");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->value(0).AsInt64(), 12);
  EXPECT_EQ(rec->value(1).AsDouble(), 3.5);
  EXPECT_EQ(rec->value(2).AsString(), "bob");
}

TEST(CsvParserTest, CellCountMustMatch) {
  CsvParser parser(TestSchema());
  EXPECT_FALSE(parser.Parse("12,3.5").ok());
  EXPECT_FALSE(parser.Parse("12,3.5,bob,extra").ok());
  EXPECT_FALSE(parser.Parse("notanint,3.5,bob").ok());
}

// ---------------------------------------------------------------- Datasets

TEST(DatasetTest, NasaSpecMatchesPaperParameters) {
  auto spec = NasaDataset();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_bins(), 3421u);        // paper §7.1
  EXPECT_EQ(spec->bin_width, 1024.0);        // 1 KB bins
  EXPECT_EQ(spec->parser->schema().num_fields(), 5u);  // five attributes
  EXPECT_EQ(spec->paper_record_count, 1569898u);
}

TEST(DatasetTest, GowallaSpecMatchesPaperParameters) {
  auto spec = GowallaDataset();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_bins(), 626u);         // paper §7.1
  EXPECT_EQ(spec->bin_width, 3600.0);        // one-hour bins
  EXPECT_EQ(spec->parser->schema().num_fields(), 3u);  // three attributes
  EXPECT_EQ(spec->paper_record_count, 6442892u);
}

class GeneratorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorTest, EveryGeneratedLineParsesInDomain) {
  auto spec = std::string(GetParam()) == "nasa" ? NasaDataset()
                                                : GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto gen = MakeGenerator(*spec, 99);
  ASSERT_TRUE(gen.ok());
  for (int i = 0; i < 5000; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok()) << line;
    auto v = rec->IndexedValue(spec->parser->schema());
    ASSERT_TRUE(v.ok());
    EXPECT_GE(*v, spec->domain_min) << line;
    EXPECT_LT(*v, spec->domain_max) << line;
  }
}

TEST_P(GeneratorTest, DeterministicGivenSeed) {
  auto spec = std::string(GetParam()) == "nasa" ? NasaDataset()
                                                : GowallaDataset();
  auto a = MakeGenerator(*spec, 123);
  auto b = MakeGenerator(*spec, 123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*a)->NextLine(), (*b)->NextLine());
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, GeneratorTest,
                         ::testing::Values("nasa", "gowalla"));

TEST(DatasetTest, UnknownGeneratorFails) {
  DatasetSpec spec;
  spec.name = "mystery";
  EXPECT_FALSE(MakeGenerator(spec, 1).ok());
}

TEST(DatasetTest, GowallaCheckinsAreDiurnal) {
  auto spec = GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto gen = MakeGenerator(*spec, 77);
  CsvParser& parser = *const_cast<CsvParser*>(
      static_cast<const CsvParser*>(spec->parser.get()));
  int by_hour[24] = {};
  for (int i = 0; i < 20000; ++i) {
    auto rec = parser.Parse((*gen)->NextLine());
    ASSERT_TRUE(rec.ok());
    int64_t t = rec->value(1).AsInt64() -
                static_cast<int64_t>(spec->domain_min);
    ++by_hour[(t / 3600) % 24];
  }
  // Evening (18:00) must clearly beat the small hours (06:00).
  EXPECT_GT(by_hour[18], by_hour[6] * 2);
}

TEST(DatasetTest, GowallaLocationsAreHeavyTailed) {
  auto spec = GowallaDataset();
  auto gen = MakeGenerator(*spec, 78);
  CsvParser parser(std::move(*Schema::Create(
      {{"user", ValueType::kInt64},
       {"checkin_time", ValueType::kInt64},
       {"location", ValueType::kInt64}},
      "checkin_time")));
  int small_ids = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    auto rec = parser.Parse((*gen)->NextLine());
    ASSERT_TRUE(rec.ok());
    if (rec->value(2).AsInt64() < 130000) ++small_ids;  // bottom 10% of ids
  }
  // Under uniformity 10% of check-ins would land there; the power-law
  // skew concentrates far more.
  EXPECT_GT(small_ids, kSamples / 4);
}

TEST(DatasetTest, NasaHeadRequestsHaveNoBody) {
  auto spec = NasaDataset();
  auto gen = MakeGenerator(*spec, 79);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok());
    if (rec->value(2).AsString().rfind("HEAD ", 0) == 0) {
      ++heads;
      EXPECT_EQ(rec->value(4).AsInt64(), 0) << line;
    }
  }
  EXPECT_GT(heads, 100);  // ~2% of 20k
}

// ------------------------------------------------------- SecureRecordCodec

TEST(SecureCodecTest, RealRecordRoundTrip) {
  Schema s = TestSchema();
  crypto::SecureRandom rng(4);
  auto codec = SecureRecordCodec::Create(Bytes(32, 0x99), &s, &rng);
  ASSERT_TRUE(codec.ok());
  Record rec({Value(int64_t{1}), Value(9.5), Value(std::string("z"))});
  auto ct = codec->EncryptRecord(rec);
  ASSERT_TRUE(ct.ok());
  auto opened = codec->Decrypt(*ct);
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(opened->is_dummy);
  EXPECT_EQ(opened->rec, rec);
}

TEST(SecureCodecTest, DummyIsRecognized) {
  Schema s = TestSchema();
  crypto::SecureRandom rng(4);
  auto codec = SecureRecordCodec::Create(Bytes(32, 0x99), &s, &rng);
  auto ct = codec->EncryptDummy(40);
  ASSERT_TRUE(ct.ok());
  auto opened = codec->Decrypt(*ct);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->is_dummy);
}

TEST(SecureCodecTest, DummyAndRealCiphertextsSameSizeClass) {
  Schema s = TestSchema();
  crypto::SecureRandom rng(4);
  auto codec = SecureRecordCodec::Create(Bytes(32, 0x99), &s, &rng);
  Record rec({Value(int64_t{1}), Value(9.5), Value(std::string("hello"))});
  auto body = RecordCodec(&s).Serialize(rec);
  auto real_ct = codec->EncryptRecord(rec);
  auto dummy_ct = codec->EncryptDummy(body->size());
  ASSERT_TRUE(real_ct.ok() && dummy_ct.ok());
  EXPECT_EQ(real_ct->size(), dummy_ct->size());
}

TEST(SecureCodecTest, WrongKeyFailsOrGarbles) {
  Schema s = TestSchema();
  crypto::SecureRandom rng(4);
  auto enc = SecureRecordCodec::Create(Bytes(32, 0x01), &s, &rng);
  auto dec = SecureRecordCodec::Create(Bytes(32, 0x02), &s, &rng);
  Record rec({Value(int64_t{1}), Value(9.5), Value(std::string("z"))});
  auto ct = enc->EncryptRecord(rec);
  auto opened = dec->Decrypt(*ct);
  // Wrong key: padding check fails almost surely; if it "succeeds", the
  // content must be wrong.
  if (opened.ok() && !opened->is_dummy) {
    EXPECT_NE(opened->rec, rec);
  }
}

TEST(SecureCodecTest, EncryptSerializedMatchesEncryptRecord) {
  Schema s = TestSchema();
  crypto::SecureRandom rng(4);
  auto codec = SecureRecordCodec::Create(Bytes(32, 0x99), &s, &rng);
  Record rec({Value(int64_t{1}), Value(9.5), Value(std::string("z"))});
  auto body = RecordCodec(&s).Serialize(rec);
  auto ct = codec->EncryptSerializedRecord(*body);
  ASSERT_TRUE(ct.ok());
  auto opened = codec->Decrypt(*ct);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->rec, rec);
}

}  // namespace
}  // namespace record
}  // namespace fresque
