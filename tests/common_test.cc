#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace fresque {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("thing missing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: thing missing");
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    FRESQUE_RETURN_NOT_OK(Status::Corruption("bad"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsCorruption());
  auto passes = []() -> Status {
    FRESQUE_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(passes().IsInvalidArgument());
}

// ----------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, DefaultIsError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    int v = 0;
    FRESQUE_ASSIGN_OR_RETURN(v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_FALSE(outer(true).ok());
}

// ------------------------------------------------------------ Binary codec

TEST(BinaryCodecTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI32(-42);
  w.PutI64(-1234567890123LL);
  w.PutF64(3.14159);
  w.PutBytes({1, 2, 3});
  w.PutString("hello");

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU16(), 0xBEEF);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI32(), -42);
  EXPECT_EQ(*r.GetI64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(*r.GetF64(), 3.14159);
  EXPECT_EQ(*r.GetBytes(), Bytes({1, 2, 3}));
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryCodecTest, TruncationFailsCleanly) {
  BinaryWriter w;
  w.PutU64(99);
  Bytes buf = w.Release();
  buf.resize(4);
  BinaryReader r(buf);
  EXPECT_FALSE(r.GetU64().ok());
}

TEST(BinaryCodecTest, LengthPrefixBeyondBufferFails) {
  BinaryWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutU8(1);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetBytes().ok());
}

TEST(BinaryCodecTest, SpecialDoubles) {
  BinaryWriter w;
  w.PutF64(0.0);
  w.PutF64(-0.0);
  w.PutF64(1e308);
  w.PutF64(-1e-308);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetF64(), 0.0);
  EXPECT_EQ(*r.GetF64(), -0.0);
  EXPECT_EQ(*r.GetF64(), 1e308);
  EXPECT_EQ(*r.GetF64(), -1e-308);
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.Pop(), i);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, BlockingProducerConsumer) {
  BoundedQueue<int> q(4);
  constexpr int kItems = 10000;
  std::atomic<long> sum{0};
  std::thread consumer([&] {
    while (auto v = q.Pop()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.Push(i);
    q.Close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

// -------------------------------------------------------------------- RNG

TEST(RngTest, XoshiroDeterministic) {
  Xoshiro256 a(9), b(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBoundedUnbiasedish) {
  Xoshiro256 rng(3);
  int counts[7] = {};
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 7, kDraws / 7 * 0.1);
}

TEST(RngTest, NextInRangeInclusive) {
  Xoshiro256 rng(4);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

// ------------------------------------------------------------------ Stats

TEST(StatsTest, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, LatencyQuantiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(i);
  EXPECT_NEAR(rec.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(rec.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(rec.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
}

TEST(StatsTest, HistogramTotalVariation) {
  FixedHistogram a(0, 10, 10), b(0, 10, 10);
  for (int i = 0; i < 100; ++i) {
    a.Add(1.5);
    b.Add(8.5);
  }
  EXPECT_NEAR(a.TotalVariationDistance(b), 1.0, 1e-9);  // disjoint
  FixedHistogram c(0, 10, 10);
  for (int i = 0; i < 100; ++i) c.Add(1.5);
  EXPECT_NEAR(a.TotalVariationDistance(c), 0.0, 1e-9);  // identical
}

TEST(StatsTest, HistogramClampsOutliers) {
  FixedHistogram h(0, 10, 10);
  h.Add(-5);
  h.Add(50);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

// ------------------------------------------------------------------ Clock

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.AdvanceNanos(1500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  Stopwatch watch(&clock);
  clock.AdvanceNanos(2000);
  EXPECT_EQ(watch.ElapsedNanos(), 2000);
}

TEST(ClockTest, SystemClockMonotone) {
  auto* clock = SystemClock::Global();
  int64_t a = clock->NowNanos();
  int64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace fresque
