// Statistical properties of the randomer beyond functional correctness:
// the mixing quality claims behind Theorem 2.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"
#include "crypto/chacha20.h"
#include "engine/randomer.h"
#include "net/message.h"

namespace fresque {
namespace engine {
namespace {

net::Message Tagged(uint64_t id, bool dummy = false) {
  net::Message m;
  m.type = net::MessageType::kTaggedRecord;
  m.pn = id;
  m.dummy = dummy;
  return m;
}

TEST(RandomerStatisticsTest, ResidenceTimeIsGeometric) {
  // Once the buffer is full, each resident survives an eviction with
  // probability c/(c+1); residence (in pushes) is geometric with mean
  // ~(c+1). Check the empirical mean.
  constexpr size_t kCap = 32;
  crypto::SecureRandom rng(1);
  Randomer r(kCap, &rng);
  std::vector<uint64_t> inserted_at;
  RunningStats residence;
  uint64_t push_count = 0;
  for (uint64_t i = 0; i < 200000; ++i) {
    inserted_at.push_back(push_count);
    auto out = r.Push(Tagged(i));
    ++push_count;
    if (out) {
      residence.Add(static_cast<double>(push_count - inserted_at[out->pn]));
    }
  }
  EXPECT_NEAR(residence.mean(), kCap + 1, (kCap + 1) * 0.05);
}

TEST(RandomerStatisticsTest, OutputOrderDecorrelatesFromInput) {
  // Spearman-style check: the output position of record i should be only
  // weakly coupled to i beyond the unavoidable coarse drift (a FIFO
  // would correlate at exactly 1; the randomer must sit well below).
  constexpr size_t kCap = 512;
  constexpr size_t kN = 4096;
  crypto::SecureRandom rng(2);
  Randomer r(kCap, &rng);
  std::vector<double> out_pos(kN, 0);
  size_t pos = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    auto out = r.Push(Tagged(i));
    if (out) out_pos[out->pn] = static_cast<double>(pos++);
  }
  for (auto& m : r.Flush()) out_pos[m.pn] = static_cast<double>(pos++);

  // Pearson correlation of (i, out_pos[i]).
  double n = static_cast<double>(kN);
  double mean_i = (n - 1) / 2;
  double mean_o = 0;
  for (double o : out_pos) mean_o += o;
  mean_o /= n;
  double num = 0, di = 0, d_o = 0;
  for (size_t i = 0; i < kN; ++i) {
    double a = static_cast<double>(i) - mean_i;
    double b = out_pos[i] - mean_o;
    num += a * b;
    di += a * a;
    d_o += b * b;
  }
  double corr = num / std::sqrt(di * d_o);
  // A 512-slot buffer over 4096 records leaves coarse drift, but must
  // destroy fine-grained order; FIFO would be 1.0.
  EXPECT_LT(corr, 0.95);
  EXPECT_GT(corr, 0.0);  // it is still a queue at coarse scale
}

TEST(RandomerStatisticsTest, DummyFractionInOutputMatchesInput) {
  // Mixing must not bias dummies earlier or later on average.
  constexpr size_t kCap = 256;
  crypto::SecureRandom rng(3);
  Randomer r(kCap, &rng);
  size_t early_dummies = 0, late_dummies = 0;
  constexpr uint64_t kN = 20000;
  size_t emitted = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    bool dummy = (i % 10) == 0;  // 10% dummies, uniformly interleaved
    auto out = r.Push(Tagged(i, dummy));
    if (out) {
      if (emitted < (kN - kCap) / 2) {
        early_dummies += out->dummy;
      } else {
        late_dummies += out->dummy;
      }
      ++emitted;
    }
  }
  double ratio = static_cast<double>(early_dummies) /
                 static_cast<double>(late_dummies + 1);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

}  // namespace
}  // namespace engine
}  // namespace fresque
