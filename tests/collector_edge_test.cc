// Edge cases and failure-injection for the collector prototypes.

#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/dummy_schedule.h"
#include "engine/fresque_collector.h"
#include "engine/pined_rq.h"
#include "engine/pined_rqpp.h"
#include "record/dataset.h"

namespace fresque {
namespace {

struct Rig {
  record::DatasetSpec spec;
  cloud::CloudServer server;
  engine::CloudNode cloud_node;
  crypto::KeyManager keys;

  Rig()
      : spec(std::move(record::GowallaDataset()).ValueOrDie()),
        server(MakeBinning(spec)),
        cloud_node(&server),
        keys(Bytes(32, 0x99)) {
    cloud_node.Start();
  }

  static index::DomainBinning MakeBinning(const record::DatasetSpec& s) {
    return std::move(index::DomainBinning::Create(s.domain_min, s.domain_max,
                                                  s.bin_width))
        .ValueOrDie();
  }

  engine::CollectorConfig Config(size_t k = 2) {
    engine::CollectorConfig c;
    c.dataset = spec;
    c.num_computing_nodes = k;
    c.seed = 321;
    return c;
  }
};

TEST(CollectorEdgeTest, EmptyIntervalStillPublishesNoiseOnlyIndex) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  ASSERT_TRUE(collector.Publish().ok());  // zero records
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.Shutdown();
  EXPECT_TRUE(rig.cloud_node.first_error().ok())
      << rig.cloud_node.first_error().ToString();
  ASSERT_EQ(rig.cloud_node.matching_stats().size(), 1u);
  auto reports = collector.Reports();
  bool found = false;
  for (const auto& r : reports) {
    if (r.pn == 0) {
      EXPECT_EQ(r.real_records, 0u);
      EXPECT_GT(r.dummy_records, 0u);  // noise still materializes
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CollectorEdgeTest, RapidFirePublishesAllComplete) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(collector.Publish().ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.Shutdown();
  EXPECT_TRUE(rig.cloud_node.first_error().ok());
  EXPECT_EQ(rig.cloud_node.matching_stats().size(), 5u);
}

TEST(CollectorEdgeTest, GarbageLinesCountAsParseErrorsNotCrashes) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  ASSERT_TRUE(collector.Ingest("complete garbage").ok());
  ASSERT_TRUE(collector.Ingest("").ok());
  ASSERT_TRUE(collector.Ingest("1,2").ok());              // too few cells
  ASSERT_TRUE(collector.Ingest("1,99,3").ok());           // out of domain
  ASSERT_TRUE(collector.Ingest("1,1230769000,3").ok());   // valid
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.Shutdown();
  EXPECT_EQ(collector.parse_errors(), 4u);
  EXPECT_TRUE(rig.cloud_node.first_error().ok());
}

TEST(CollectorEdgeTest, ApiMisuseIsRejectedCleanly) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  EXPECT_FALSE(collector.Publish().ok());   // before Start
  EXPECT_FALSE(collector.Shutdown().ok());  // before Start
  ASSERT_TRUE(collector.Start().ok());
  EXPECT_FALSE(collector.Start().ok());     // double Start
  ASSERT_TRUE(collector.Shutdown().ok());
  EXPECT_TRUE(collector.Shutdown().ok());   // idempotent
  EXPECT_FALSE(collector.Ingest("1,1230769000,3").ok());  // after Shutdown
  EXPECT_FALSE(collector.Publish().ok());                 // after Shutdown
  rig.cloud_node.inbox()->Push([] {
    net::Message m;
    m.type = net::MessageType::kShutdown;
    return m;
  }());
  rig.cloud_node.Shutdown();
}

TEST(CollectorEdgeTest, ReportDummyCountsMatchRealizedNoise) {
  Rig rig;
  engine::FresqueCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(rig.spec, 1);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.Shutdown();

  for (const auto& r : collector.Reports()) {
    if (r.pn != 0) continue;
    EXPECT_EQ(r.real_records, 300u);
    // Realized dummies for Gowalla at eps=1, scale 4: E ~ 626*2 = 1252;
    // bound it loosely (10 sigma-ish).
    EXPECT_GT(r.dummy_records, 500u);
    EXPECT_LT(r.dummy_records, 4000u);
  }
}

TEST(CollectorEdgeTest, PinedRqPpEmptyIntervalPublishes) {
  Rig rig;
  engine::PinedRqPpCollector collector(rig.Config(), rig.keys,
                                       rig.cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  rig.cloud_node.Shutdown();
  EXPECT_TRUE(rig.cloud_node.first_error().ok())
      << rig.cloud_node.first_error().ToString();
  EXPECT_EQ(rig.cloud_node.matching_stats().size(), 1u);
}

TEST(CollectorEdgeTest, PinedRqIngestBeforeStartFails) {
  Rig rig;
  engine::PinedRqCollector collector(rig.Config(), rig.keys,
                                     rig.cloud_node.inbox());
  EXPECT_FALSE(collector.Ingest("x").ok());
  EXPECT_FALSE(collector.Publish().ok());
  rig.cloud_node.inbox()->Push([] {
    net::Message m;
    m.type = net::MessageType::kShutdown;
    return m;
  }());
  rig.cloud_node.Shutdown();
}

TEST(DummyScheduleDistributionTest, SamplerDrivesReleaseTimes) {
  // A sampler clamped to [0.8, 0.9): all releases land late.
  crypto::SecureRandom rng(3);
  std::vector<int64_t> noise(100, 5);
  engine::DummySchedule sched(noise, [&] {
    return 0.8 + 0.1 * rng.NextDouble();
  });
  EXPECT_EQ(sched.total(), 500u);
  EXPECT_TRUE(sched.Due(0.79).empty());
  (void)sched.Due(0.95);
  EXPECT_EQ(sched.released(), 500u);
}

}  // namespace
}  // namespace fresque
