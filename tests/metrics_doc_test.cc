// Metric-name hygiene golden test (DESIGN.md §16): drives a miniature
// pipeline plus the query engine and the obs sampler so the telemetry
// registry is populated the way a live process populates it, then asserts
//   1. every registered metric name matches ^[a-z0-9_.]+$ (the exporter
//      sanitizer is then a pure '.'->'_' rewrite, collision-free), and
//   2. every `query.*`, `pipeline.*` and `slo.*` metric is documented in
//      docs/METRICS.md — adding a metric in those families without
//      documenting it fails this test.

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "engine/metrics.h"
#include "obs/sampler.h"
#include "query/executor.h"
#include "record/dataset.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

#ifndef FRESQUE_SOURCE_DIR
#error "metrics_doc_test needs FRESQUE_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace fresque {
namespace {

bool NameIsClean(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

bool HasDocPrefix(const std::string& name) {
  return name.rfind("query.", 0) == 0 || name.rfind("pipeline.", 0) == 0 ||
         name.rfind("slo.", 0) == 0;
}

class MetricsDocTest : public ::testing::Test {
 protected:
  // One full pipeline + query + sampler pass, run once for the suite.
  static void SetUpTestSuite() {
    telemetry::Registry::Global()->ResetForTest();
    obs::ResetE2eStateForTest();
    obs::SetSloE2eTargetNs(1);  // everything violates: exercises slo.*
    obs::SetE2eSamplingActive(true);

    auto spec = record::GowallaDataset();
    ASSERT_TRUE(spec.ok());
    auto binning = index::DomainBinning::Create(
        spec->domain_min, spec->domain_max, spec->bin_width);
    cloud::CloudServer server(std::move(binning).ValueOrDie());
    engine::CloudNode cloud_node(&server);
    cloud_node.Start();

    crypto::KeyManager keys(Bytes(32, 0x21));
    engine::CollectorConfig cfg;
    cfg.dataset = *spec;
    cfg.num_computing_nodes = 2;
    cfg.seed = 7;
    engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
    cloud_node.RouteAcksTo(collector.publication_acks());
    ASSERT_TRUE(collector.Start().ok());
    auto gen = record::MakeGenerator(*spec, 99);
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
    }
    ASSERT_TRUE(collector.Publish().ok());
    ASSERT_TRUE(collector.Shutdown().ok());
    cloud_node.Shutdown();
    ASSERT_TRUE(cloud_node.first_error().ok());
    engine::ExportToRegistry(collector.Metrics());

    // Query engine: registers the query.* family.
    query::QueryExecutor executor(
        [&server](const index::RangeQuery& q,
                  const query::QueryContext& ctx) {
          return server.ExecuteQuery(q, ctx);
        },
        query::ExecutorOptions{});
    auto result = executor.Execute(
        index::RangeQuery{spec->domain_min, spec->domain_max});
    ASSERT_TRUE(result.ok());
    executor.Shutdown();

    // Sampler fold: registers pipeline.e2e_p* / ingest.lag_ms / slo.*.
    obs::ObsSampler sampler(3600 * 1000);
    sampler.FoldOnce();
    obs::SetE2eSamplingActive(false);
  }

  static void TearDownTestSuite() {
    obs::ResetE2eStateForTest();
    telemetry::Registry::Global()->ResetForTest();
  }

  static std::vector<std::string> AllNames() {
    auto snap = telemetry::Registry::Global()->Snapshot();
    std::vector<std::string> names;
    for (const auto& [name, v] : snap.counters) {
      (void)v;
      names.push_back(name);
    }
    for (const auto& [name, v] : snap.gauges) {
      (void)v;
      names.push_back(name);
    }
    for (const auto& h : snap.histograms) names.push_back(h.name);
    return names;
  }
};

TEST_F(MetricsDocTest, PipelinePopulatedTheFamiliesUnderTest) {
#if !FRESQUE_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: hot-path macros register nothing";
#endif
  bool saw_query = false, saw_pipeline = false, saw_slo = false;
  for (const auto& name : AllNames()) {
    if (name.rfind("query.", 0) == 0) saw_query = true;
    if (name.rfind("pipeline.", 0) == 0) saw_pipeline = true;
    if (name.rfind("slo.", 0) == 0) saw_slo = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_pipeline);
  EXPECT_TRUE(saw_slo);
}

TEST_F(MetricsDocTest, EveryNameMatchesTheCharterRegex) {
  for (const auto& name : AllNames()) {
    EXPECT_TRUE(NameIsClean(name))
        << "metric name '" << name << "' violates ^[a-z0-9_.]+$";
  }
}

TEST_F(MetricsDocTest, QueryPipelineSloFamiliesAreDocumented) {
  const std::string doc_path =
      std::string(FRESQUE_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(doc_path);
  ASSERT_TRUE(in) << "cannot open " << doc_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();

  for (const auto& name : AllNames()) {
    if (!HasDocPrefix(name)) continue;
    // Documented means the exact name appears in backticks, the table-row
    // convention of docs/METRICS.md.
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "metric '" << name
        << "' is not documented in docs/METRICS.md — add a row describing"
           " it (family query./pipeline./slo. is doc-mandatory)";
  }
}

}  // namespace
}  // namespace fresque
