// Metric-name hygiene golden test (DESIGN.md §16): drives a miniature
// pipeline plus the query engine and the obs sampler so the telemetry
// registry is populated the way a live process populates it, then asserts
//   1. every registered metric name matches ^[a-z0-9_.]+$ (the exporter
//      sanitizer is then a pure '.'->'_' rewrite, collision-free), and
//   2. every `query.*`, `pipeline.*` and `slo.*` metric is documented in
//      docs/METRICS.md — adding a metric in those families without
//      documenting it fails this test.

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "engine/metrics.h"
#include "obs/sampler.h"
#include "query/executor.h"
#include "record/dataset.h"
#include "shard/pipeline.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

#ifndef FRESQUE_SOURCE_DIR
#error "metrics_doc_test needs FRESQUE_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace fresque {
namespace {

bool NameIsClean(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

bool HasDocPrefix(const std::string& name) {
  return name.rfind("query.", 0) == 0 || name.rfind("pipeline.", 0) == 0 ||
         name.rfind("slo.", 0) == 0 || name.rfind("shard.", 0) == 0;
}

/// Doc-lookup form of a metric name: the per-shard families embed the
/// shard index (`shard.3.records_in`), documented once as
/// `shard.i.records_in`. Everything else passes through unchanged.
std::string CanonicalName(const std::string& name) {
  constexpr const char kShard[] = "shard.";
  if (name.rfind(kShard, 0) != 0) return name;
  const size_t start = sizeof(kShard) - 1;
  const size_t dot = name.find('.', start);
  if (dot == std::string::npos || dot == start) return name;
  for (size_t i = start; i < dot; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return name;
  }
  std::string canon = "shard.i";
  canon.append(name, dot, std::string::npos);
  return canon;
}

class MetricsDocTest : public ::testing::Test {
 protected:
  // One full pipeline + query + sampler pass, run once for the suite.
  static void SetUpTestSuite() {
    telemetry::Registry::Global()->ResetForTest();
    obs::ResetE2eStateForTest();
    obs::SetSloE2eTargetNs(1);  // everything violates: exercises slo.*
    obs::SetE2eSamplingActive(true);

    auto spec = record::GowallaDataset();
    ASSERT_TRUE(spec.ok());
    auto binning = index::DomainBinning::Create(
        spec->domain_min, spec->domain_max, spec->bin_width);
    cloud::CloudServer server(std::move(binning).ValueOrDie());
    engine::CloudNode cloud_node(&server);
    cloud_node.Start();

    crypto::KeyManager keys(Bytes(32, 0x21));
    engine::CollectorConfig cfg;
    cfg.dataset = *spec;
    cfg.num_computing_nodes = 2;
    cfg.seed = 7;
    engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
    cloud_node.RouteAcksTo(collector.publication_acks());
    ASSERT_TRUE(collector.Start().ok());
    auto gen = record::MakeGenerator(*spec, 99);
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
    }
    ASSERT_TRUE(collector.Publish().ok());
    ASSERT_TRUE(collector.Shutdown().ok());
    cloud_node.Shutdown();
    ASSERT_TRUE(cloud_node.first_error().ok());
    engine::ExportToRegistry(collector.Metrics());

    // Query engine: registers the query.* family.
    query::QueryExecutor executor(
        [&server](const index::RangeQuery& q,
                  const query::QueryContext& ctx) {
          return server.ExecuteQuery(q, ctx);
        },
        query::ExecutorOptions{});
    auto result = executor.Execute(
        index::RangeQuery{spec->domain_min, spec->domain_max});
    ASSERT_TRUE(result.ok());
    executor.Shutdown();

    // Sharded mini-pipeline: registers the shard.* family the way a
    // --shards deployment does (router counters + ExportTelemetry
    // gauges, DESIGN.md §17).
    {
      shard::ShardedPipelineConfig scfg;
      scfg.collector.dataset = *spec;
      scfg.collector.num_computing_nodes = 2;
      scfg.collector.seed = 8;
      scfg.shard.num_shards = 2;
      shard::ShardedPipeline pipe(scfg, keys);
      ASSERT_TRUE(pipe.Start().ok());
      for (uint64_t i = 0; i < 200; ++i) {
        ASSERT_TRUE(pipe.Ingest((*gen)->NextLine()).ok());
      }
      ASSERT_TRUE(pipe.Shutdown().ok());
      pipe.ExportTelemetry();
    }

    // Sampler fold: registers pipeline.e2e_p* / ingest.lag_ms / slo.*.
    obs::ObsSampler sampler(3600 * 1000);
    sampler.FoldOnce();
    obs::SetE2eSamplingActive(false);
  }

  static void TearDownTestSuite() {
    obs::ResetE2eStateForTest();
    telemetry::Registry::Global()->ResetForTest();
  }

  static std::vector<std::string> AllNames() {
    auto snap = telemetry::Registry::Global()->Snapshot();
    std::vector<std::string> names;
    for (const auto& [name, v] : snap.counters) {
      (void)v;
      names.push_back(name);
    }
    for (const auto& [name, v] : snap.gauges) {
      (void)v;
      names.push_back(name);
    }
    for (const auto& h : snap.histograms) names.push_back(h.name);
    return names;
  }
};

TEST_F(MetricsDocTest, PipelinePopulatedTheFamiliesUnderTest) {
#if !FRESQUE_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: hot-path macros register nothing";
#endif
  bool saw_query = false, saw_pipeline = false, saw_slo = false;
  bool saw_shard = false, saw_per_shard = false;
  for (const auto& name : AllNames()) {
    if (name.rfind("query.", 0) == 0) saw_query = true;
    if (name.rfind("pipeline.", 0) == 0) saw_pipeline = true;
    if (name.rfind("slo.", 0) == 0) saw_slo = true;
    if (name.rfind("shard.", 0) == 0) saw_shard = true;
    if (CanonicalName(name).rfind("shard.i.", 0) == 0) saw_per_shard = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_pipeline);
  EXPECT_TRUE(saw_slo);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_per_shard);
}

TEST_F(MetricsDocTest, EveryNameMatchesTheCharterRegex) {
  for (const auto& name : AllNames()) {
    EXPECT_TRUE(NameIsClean(name))
        << "metric name '" << name << "' violates ^[a-z0-9_.]+$";
  }
}

TEST_F(MetricsDocTest, QueryPipelineSloFamiliesAreDocumented) {
  const std::string doc_path =
      std::string(FRESQUE_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(doc_path);
  ASSERT_TRUE(in) << "cannot open " << doc_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();

  for (const auto& name : AllNames()) {
    if (!HasDocPrefix(name)) continue;
    // Documented means the exact name appears in backticks, the table-row
    // convention of docs/METRICS.md. Per-shard names look up their
    // `shard.i.` canonical row.
    std::string needle = "`";
    needle += CanonicalName(name);
    needle += '`';
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "metric '" << name
        << "' is not documented in docs/METRICS.md — add a row describing"
           " it (family query./pipeline./slo./shard. is doc-mandatory)";
  }
}

}  // namespace
}  // namespace fresque
