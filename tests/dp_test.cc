#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "crypto/chacha20.h"
#include "dp/budget.h"
#include "dp/individual_ledger.h"
#include "dp/laplace.h"

namespace fresque {
namespace dp {
namespace {

TEST(LaplaceMathTest, PdfIntegratesToOneNumerically) {
  double scale = 2.0;
  double sum = 0;
  double step = 0.01;
  for (double x = -60; x < 60; x += step) {
    sum += LaplacePdf(x, scale) * step;
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(LaplaceMathTest, CdfProperties) {
  double scale = 3.0;
  EXPECT_NEAR(LaplaceCdf(0, scale), 0.5, 1e-12);
  EXPECT_LT(LaplaceCdf(-10, scale), 0.05);
  EXPECT_GT(LaplaceCdf(10, scale), 0.95);
  // Monotone.
  double prev = 0;
  for (double x = -20; x <= 20; x += 0.5) {
    double c = LaplaceCdf(x, scale);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(LaplaceMathTest, QuantileInvertsCdf) {
  double scale = 4.0;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double x = LaplaceQuantile(p, scale);
    EXPECT_NEAR(LaplaceCdf(x, scale), p, 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(LaplaceQuantile(0.5, scale), 0.0, 1e-12);
  EXPECT_LT(LaplaceQuantile(0.1, scale), 0);
  EXPECT_GT(LaplaceQuantile(0.9, scale), 0);
}

class LaplaceSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceSamplerTest, EmpiricalMomentsMatch) {
  const double scale = GetParam();
  crypto::SecureRandom rng(31);
  LaplaceSampler sampler(scale, &rng);
  RunningStats stats;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) stats.Add(sampler.Sample());
  // Lap(0, b): mean 0, variance 2b^2.
  EXPECT_NEAR(stats.mean(), 0.0, 5 * scale / std::sqrt(kSamples) * 2);
  EXPECT_NEAR(stats.variance(), 2 * scale * scale,
              0.1 * 2 * scale * scale);
}

TEST_P(LaplaceSamplerTest, EmpiricalCdfMatchesAnalytic) {
  const double scale = GetParam();
  crypto::SecureRandom rng(77);
  LaplaceSampler sampler(scale, &rng);
  constexpr int kSamples = 100000;
  int below_zero = 0, below_scale = 0;
  for (int i = 0; i < kSamples; ++i) {
    double s = sampler.Sample();
    if (s < 0) ++below_zero;
    if (s < scale) ++below_scale;
  }
  EXPECT_NEAR(static_cast<double>(below_zero) / kSamples, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(below_scale) / kSamples,
              LaplaceCdf(scale, scale), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceSamplerTest,
                         ::testing::Values(0.5, 1.0, 4.0, 40.0));

TEST(DummyBoundTest, PerLeafBoundHoldsWithProbabilityDelta) {
  const double scale = 4.0;
  const double delta = 0.99;
  int64_t bound = DummyUpperBoundPerLeaf(scale, delta);
  crypto::SecureRandom rng(5);
  LaplaceSampler sampler(scale, &rng);
  constexpr int kTrials = 100000;
  int violations = 0;
  for (int i = 0; i < kTrials; ++i) {
    int64_t dummies = std::max<int64_t>(0, sampler.SampleInteger());
    if (dummies > bound) ++violations;
  }
  double violation_rate = static_cast<double>(violations) / kTrials;
  EXPECT_LE(violation_rate, 1.0 - delta + 0.005);
  // The bound should not be wildly loose either: the next-smaller bound
  // must violate more often than (1 - delta) allows... only check it is
  // positive and finite.
  EXPECT_GT(bound, 0);
  EXPECT_LT(bound, 100);
}

TEST(DummyBoundTest, BoundMonotoneInDeltaAndScale) {
  EXPECT_LE(DummyUpperBoundPerLeaf(4.0, 0.9), DummyUpperBoundPerLeaf(4.0, 0.99));
  EXPECT_LE(DummyUpperBoundPerLeaf(2.0, 0.99), DummyUpperBoundPerLeaf(8.0, 0.99));
  EXPECT_EQ(DummyUpperBoundPerLeaf(4.0, 0.5), 0);  // median is zero
}

TEST(DummyBoundTest, TotalBoundsScaleWithLeaves) {
  int64_t one = DummyUpperBoundTotal(4.0, 0.99, 1);
  EXPECT_EQ(DummyUpperBoundTotal(4.0, 0.99, 100), 100 * one);
  // Union-bound variant is at least as large per leaf.
  EXPECT_GE(DummyUpperBoundTotalUnion(4.0, 0.99, 100),
            DummyUpperBoundTotal(4.0, 0.99, 100));
}

TEST(RandomerBufferSizeTest, RequiresAlphaAtLeastTwo) {
  EXPECT_FALSE(RandomerBufferSize(4.0, 0.99, 100, 1.5).ok());
  EXPECT_TRUE(RandomerBufferSize(4.0, 0.99, 100, 2.0).ok());
}

TEST(RandomerBufferSizeTest, ExceedsRealizedDummiesWithHighProbability) {
  const double scale = 4.0;
  const size_t leaves = 626;
  auto size = RandomerBufferSize(scale, 0.99, leaves, 2.0);
  ASSERT_TRUE(size.ok());
  crypto::SecureRandom rng(17);
  LaplaceSampler sampler(scale, &rng);
  // Realized total dummies across many publications must stay below the
  // buffer size essentially always (alpha = 2 doubles the delta-bound).
  for (int trial = 0; trial < 200; ++trial) {
    int64_t total = 0;
    for (size_t leaf = 0; leaf < leaves; ++leaf) {
      total += std::max<int64_t>(0, sampler.SampleInteger());
    }
    EXPECT_LT(static_cast<size_t>(total), *size) << "trial " << trial;
  }
}

TEST(RandomerBufferSizeTest, RejectsNonPositiveScale) {
  EXPECT_FALSE(RandomerBufferSize(0.0, 0.99, 10, 2.0).ok());
  EXPECT_FALSE(RandomerBufferSize(-1.0, 0.99, 10, 2.0).ok());
}

TEST(BudgetTest, SequentialCompositionCapsSpending) {
  BudgetAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.4, "a").ok());
  EXPECT_TRUE(acc.Spend(0.4, "b").ok());
  EXPECT_FALSE(acc.Spend(0.4, "c").ok());  // would exceed
  EXPECT_TRUE(acc.Spend(0.2, "d").ok());   // exactly exhausts
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-9);
  EXPECT_EQ(acc.History().size(), 3u);
}

TEST(BudgetTest, RejectsNonPositiveEpsilon) {
  BudgetAccountant acc(1.0);
  EXPECT_FALSE(acc.Spend(0.0, "zero").ok());
  EXPECT_FALSE(acc.Spend(-0.1, "neg").ok());
}

TEST(BudgetTest, SplitEvenlyCoversHorizon) {
  double weekly = BudgetAccountant::SplitEvenly(26.0, 52);
  EXPECT_DOUBLE_EQ(weekly, 0.5);
  BudgetAccountant acc(26.0);
  for (int week = 0; week < 52; ++week) {
    EXPECT_TRUE(acc.Spend(weekly, "w").ok()) << week;
  }
  EXPECT_FALSE(acc.Spend(weekly, "w53").ok());
}

TEST(IndividualLedgerTest, EnforcesPerIndividualComposition) {
  // FluTracking pattern (paper §8): eps_total over 52 weekly
  // publications; each individual submits at most once per week.
  constexpr double kTotal = 26.0;
  constexpr double kWeekly = kTotal / 52;
  IndividualLedger ledger(kTotal);
  for (int week = 0; week < 52; ++week) {
    EXPECT_TRUE(ledger.Admit(7, kWeekly).ok()) << week;
  }
  EXPECT_FALSE(ledger.Admit(7, kWeekly).ok());  // week 53 refused
  // A different participant is unaffected.
  EXPECT_TRUE(ledger.Admit(8, kWeekly).ok());
  EXPECT_NEAR(ledger.Spent(7), kTotal, 1e-9);
  EXPECT_NEAR(ledger.Remaining(8), kTotal - kWeekly, 1e-9);
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(IndividualLedgerTest, UnseenIndividualsHaveFullBudget) {
  IndividualLedger ledger(1.0);
  EXPECT_EQ(ledger.Spent(42), 0.0);
  EXPECT_EQ(ledger.Remaining(42), 1.0);
  EXPECT_FALSE(ledger.Admit(42, 0.0).ok());
  EXPECT_FALSE(ledger.Admit(42, -1.0).ok());
}

TEST(IndividualLedgerTest, ThreadSafeAdmission) {
  IndividualLedger ledger(100.0);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (ledger.Admit(1, 1.0).ok()) ++granted;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), 100);
}

TEST(BudgetTest, ThreadSafeSpending) {
  BudgetAccountant acc(1000.0);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 300; ++i) {
        if (acc.Spend(1.0, "x").ok()) ++granted;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), 1000);
  EXPECT_NEAR(acc.spent(), 1000.0, 1e-6);
}

}  // namespace
}  // namespace dp
}  // namespace fresque
