// Parameterized end-to-end sweeps: the FRESQUE pipeline's correctness
// invariants must hold across the privacy/config space, not just at the
// paper defaults.

#include <gtest/gtest.h>

#include <tuple>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace fresque {
namespace {

struct SweepPoint {
  double epsilon;
  size_t fanout;
  double alpha;
};

class FresqueSweepTest : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(FresqueSweepTest, InvariantsHoldAcrossParameterSpace) {
  const auto& p = GetParam();
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());

  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x44));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.epsilon = p.epsilon;
  cfg.fanout = p.fanout;
  cfg.alpha = p.alpha;
  cfg.seed = 1234;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 99);
  std::vector<record::Record> truth;
  constexpr int kRecords = 2500;
  for (int i = 0; i < kRecords; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok());
    truth.push_back(std::move(*rec));
    collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
    ASSERT_TRUE(collector.Ingest(line).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();

  // Invariant 1: the pipeline never errors.
  EXPECT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();
  EXPECT_EQ(collector.parse_errors(), 0u);
  ASSERT_EQ(cloud_node.matching_stats().size(), 1u);

  // Invariant 2: zero false positives, and recall degrades gracefully
  // with the privacy level (never catastrophically at eps >= 0.5).
  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto acc = client.QueryWithGroundTruth(server, q, truth);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  EXPECT_EQ(acc->matched, acc->returned);
  EXPECT_LE(acc->Recall(), 1.0);
  double min_recall = p.epsilon >= 1.0 ? 0.6 : 0.4;
  EXPECT_GE(acc->Recall(), min_recall)
      << "eps=" << p.epsilon << " fanout=" << p.fanout;

  // Invariant 3: the publication is integrity-verifiable.
  EXPECT_TRUE(client.VerifyPublication(server, 0).ok());

  // Invariant 4: the report is internally consistent.
  for (const auto& r : collector.Reports()) {
    if (r.pn != 0) continue;
    EXPECT_EQ(r.real_records, static_cast<uint64_t>(kRecords));
    EXPECT_LE(r.removed_records, r.real_records);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSpace, FresqueSweepTest,
    ::testing::Values(SweepPoint{0.5, 16, 2.0}, SweepPoint{1.0, 16, 2.0},
                      SweepPoint{2.0, 16, 2.0}, SweepPoint{1.0, 4, 2.0},
                      SweepPoint{1.0, 64, 2.0}, SweepPoint{1.0, 16, 8.0},
                      SweepPoint{0.5, 4, 4.0}),
    [](const ::testing::TestParamInfo<SweepPoint>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "eps%zu_fan%zu_alpha%zu",
                    static_cast<size_t>(info.param.epsilon * 10),
                    info.param.fanout,
                    static_cast<size_t>(info.param.alpha));
      return std::string(buf);
    });

}  // namespace
}  // namespace fresque
