// BoundedQueue lifetime counters, close semantics, and a TSan-facing
// multi-producer/multi-consumer stress test (this suite is in the
// scripts/tsan_tests.sh TSan run list).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/queue.h"

namespace fresque {
namespace {

TEST(QueueTest, CountsEnqueuedAndHighWatermark) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.enqueued(), 0u);
  EXPECT_EQ(q.high_watermark(), 0u);

  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.enqueued(), 3u);
  EXPECT_EQ(q.high_watermark(), 3u);

  // Draining does not move the high watermark back down.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.high_watermark(), 3u);
  EXPECT_EQ(q.enqueued(), 3u);

  EXPECT_TRUE(q.Push(4));
  EXPECT_EQ(q.enqueued(), 4u);
  EXPECT_EQ(q.high_watermark(), 3u);
}

TEST(QueueTest, TryPushSplitsBackPressureFromShutdown) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));

  // Full queue: back-pressure reject.
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_EQ(q.rejected_full(), 2u);
  EXPECT_EQ(q.rejected_closed(), 0u);
  EXPECT_EQ(q.rejected(), 2u);

  // Closed queue: shutdown reject, even though space is available.
  ASSERT_TRUE(q.Pop().has_value());
  q.Close();
  EXPECT_FALSE(q.TryPush(5));
  EXPECT_EQ(q.rejected_full(), 2u);
  EXPECT_EQ(q.rejected_closed(), 1u);
  EXPECT_EQ(q.rejected(), 3u);
}

TEST(QueueTest, PushAfterCloseFailsAndCountsAsClosed) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.enqueued(), 1u);
  EXPECT_EQ(q.rejected_closed(), 2u);
  EXPECT_EQ(q.rejected_full(), 0u);
}

TEST(QueueTest, PopDrainsRemainingItemsThenReturnsNullopt) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(10));
  EXPECT_TRUE(q.Push(20));
  q.Close();

  EXPECT_EQ(q.Pop().value(), 10);
  EXPECT_EQ(q.Pop().value(), 20);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());  // stays drained
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(QueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    // Blocks until Close(); must return nullopt, not hang.
    EXPECT_FALSE(q.Pop().has_value());
  });
  q.Close();
  consumer.join();
}

TEST(QueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));  // fill to capacity
  std::thread producer([&] {
    // Blocks on the full queue until Close(); must fail, not hang.
    EXPECT_FALSE(q.Push(2));
  });
  q.Close();
  producer.join();
  EXPECT_EQ(q.rejected_closed(), 1u);
}

// Multi-producer/multi-consumer stress: every pushed item is popped
// exactly once, counters balance, and under TSan the queue's internal
// synchronization proves clean.
TEST(QueueTest, MultiProducerMultiConsumerConservesItems) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 5000;

  BoundedQueue<uint64_t> q(64);
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  constexpr uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);  // each value once
  EXPECT_EQ(q.enqueued(), kTotal);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_GE(q.high_watermark(), 1u);
  EXPECT_LE(q.high_watermark(), q.capacity());
  EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------------
// Batch API: PushBatch / PopBatch.

TEST(QueueTest, PushBatchLargerThanCapacityDeliversEverything) {
  BoundedQueue<int> q(4);
  std::vector<int> popped;
  std::thread consumer([&] {
    std::vector<int> batch;
    // PopBatch returns at least one item per call until closed+drained.
    while (q.PopBatch(&batch, 3) > 0) {
      popped.insert(popped.end(), batch.begin(), batch.end());
      batch.clear();
    }
  });
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  // Blocks on the full queue and keeps going as the consumer drains.
  EXPECT_EQ(q.PushBatch(items.data(), items.size()), 100u);
  q.Close();
  consumer.join();
  ASSERT_EQ(popped.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(popped[i], i);  // FIFO preserved
  EXPECT_EQ(q.enqueued(), 100u);
  EXPECT_EQ(q.rejected(), 0u);
}

TEST(QueueTest, PopBatchTakesUpToMaxAndAppends) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> batch{-1};  // PopBatch appends, never clears
  EXPECT_EQ(q.PopBatch(&batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{-1, 0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&batch, 100), 2u);  // rest, not blocking for more
  EXPECT_EQ(batch, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
}

TEST(QueueTest, CloseMidPushBatchSplitsAcceptedFromRejected) {
  BoundedQueue<int> q(2);
  std::vector<int> items{1, 2, 3, 4, 5};
  std::thread producer([&] {
    // Accepts 2, blocks full, then Close() rejects the remaining 3.
    EXPECT_EQ(q.PushBatch(items.data(), items.size()), 2u);
  });
  while (q.size() < 2) std::this_thread::yield();
  q.Close();
  producer.join();
  EXPECT_EQ(q.enqueued(), 2u);
  EXPECT_EQ(q.rejected_closed(), 3u);
  EXPECT_EQ(q.rejected_full(), 0u);
  // The accepted prefix is still poppable after close.
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 10), 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.PopBatch(&batch, 10), 0u);  // closed + drained: terminal
}

TEST(QueueTest, PushBatchOnClosedQueueRejectsAll) {
  BoundedQueue<int> q(8);
  q.Close();
  std::vector<int> items{1, 2, 3};
  EXPECT_EQ(q.PushBatch(items.data(), items.size()), 0u);
  EXPECT_EQ(q.rejected_closed(), 3u);
}

TEST(QueueTest, PopBatchLingerIsBoundedWhenBatchStaysPartial) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(42));
  const auto linger = std::chrono::milliseconds(50);
  const auto start = std::chrono::steady_clock::now();
  std::vector<int> batch;
  // One item, max 4: the pop lingers for stragglers but must return at
  // the deadline — this bound is what keeps tail latency from regressing
  // at low rates (linger only ever delays a *partial* batch).
  EXPECT_EQ(q.PopBatch(&batch, 4, linger), 1u);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, linger);
  EXPECT_LT(elapsed, 10 * linger);  // bounded, generous for CI jitter
  EXPECT_EQ(batch, (std::vector<int>{42}));

  // A full batch never waits: with max items already queued the linger
  // deadline is irrelevant.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i));
  const auto start2 = std::chrono::steady_clock::now();
  batch.clear();
  EXPECT_EQ(q.PopBatch(&batch, 4, std::chrono::seconds(30)), 4u);
  EXPECT_LT(std::chrono::steady_clock::now() - start2,
            std::chrono::seconds(5));
}

TEST(QueueTest, PopBatchZeroLingerNeverWaitsForStragglers) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  std::vector<int> batch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PopBatch(&batch, 64), 1u);  // default linger = 0
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

// Batch-API MPMC stress twin of the per-item test above: mixed batch
// sizes, every item delivered exactly once. In the TSan run list.
TEST(QueueTest, BatchMultiProducerMultiConsumerConservesItems) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 4992;  // divisible by the batch mix

  BoundedQueue<uint64_t> q(64);
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<uint64_t> batch;
      while (q.PopBatch(&batch, 7) > 0) {
        for (uint64_t v : batch) sum.fetch_add(v, std::memory_order_relaxed);
        popped.fetch_add(batch.size(), std::memory_order_relaxed);
        batch.clear();
      }
    });
  }

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      uint64_t next = p * kPerProducer;
      const uint64_t end = next + kPerProducer;
      size_t batch_size = 1;
      while (next < end) {
        std::vector<uint64_t> batch;
        for (size_t i = 0; i < batch_size && next < end; ++i) {
          batch.push_back(next++);
        }
        ASSERT_EQ(q.PushBatch(batch.data(), batch.size()), batch.size());
        batch_size = batch_size % 96 + 1;  // 1..96, crossing capacity
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  constexpr uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(q.enqueued(), kTotal);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace fresque
