// BoundedQueue lifetime counters, close semantics, and a TSan-facing
// multi-producer/multi-consumer stress test (this suite is in the
// scripts/tsan_tests.sh TSan run list).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/queue.h"

namespace fresque {
namespace {

TEST(QueueTest, CountsEnqueuedAndHighWatermark) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.enqueued(), 0u);
  EXPECT_EQ(q.high_watermark(), 0u);

  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.enqueued(), 3u);
  EXPECT_EQ(q.high_watermark(), 3u);

  // Draining does not move the high watermark back down.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.high_watermark(), 3u);
  EXPECT_EQ(q.enqueued(), 3u);

  EXPECT_TRUE(q.Push(4));
  EXPECT_EQ(q.enqueued(), 4u);
  EXPECT_EQ(q.high_watermark(), 3u);
}

TEST(QueueTest, TryPushSplitsBackPressureFromShutdown) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));

  // Full queue: back-pressure reject.
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_EQ(q.rejected_full(), 2u);
  EXPECT_EQ(q.rejected_closed(), 0u);
  EXPECT_EQ(q.rejected(), 2u);

  // Closed queue: shutdown reject, even though space is available.
  ASSERT_TRUE(q.Pop().has_value());
  q.Close();
  EXPECT_FALSE(q.TryPush(5));
  EXPECT_EQ(q.rejected_full(), 2u);
  EXPECT_EQ(q.rejected_closed(), 1u);
  EXPECT_EQ(q.rejected(), 3u);
}

TEST(QueueTest, PushAfterCloseFailsAndCountsAsClosed) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.enqueued(), 1u);
  EXPECT_EQ(q.rejected_closed(), 2u);
  EXPECT_EQ(q.rejected_full(), 0u);
}

TEST(QueueTest, PopDrainsRemainingItemsThenReturnsNullopt) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(10));
  EXPECT_TRUE(q.Push(20));
  q.Close();

  EXPECT_EQ(q.Pop().value(), 10);
  EXPECT_EQ(q.Pop().value(), 20);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());  // stays drained
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(QueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    // Blocks until Close(); must return nullopt, not hang.
    EXPECT_FALSE(q.Pop().has_value());
  });
  q.Close();
  consumer.join();
}

TEST(QueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));  // fill to capacity
  std::thread producer([&] {
    // Blocks on the full queue until Close(); must fail, not hang.
    EXPECT_FALSE(q.Push(2));
  });
  q.Close();
  producer.join();
  EXPECT_EQ(q.rejected_closed(), 1u);
}

// Multi-producer/multi-consumer stress: every pushed item is popped
// exactly once, counters balance, and under TSan the queue's internal
// synchronization proves clean.
TEST(QueueTest, MultiProducerMultiConsumerConservesItems) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr uint64_t kPerProducer = 5000;

  BoundedQueue<uint64_t> q(64);
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  constexpr uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);  // each value once
  EXPECT_EQ(q.enqueued(), kTotal);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_GE(q.high_watermark(), 1u);
  EXPECT_LE(q.high_watermark(), q.capacity());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace fresque
