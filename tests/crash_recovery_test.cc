// Crash-injection harness: ingest publications with fsync=always through
// the durable CloudNode, record the WAL's durable byte offset at each
// publication ack, then simulate SIGKILL by truncating a copy of the log
// at randomized offsets. Recovery from every cut must restore all
// publications whose ack preceded the cut byte-for-byte, and a cut inside
// the final frame must be treated as a torn tail, never as data loss or a
// crash. Randomized but reproducible: FRESQUE_CRASH_SEED selects the cut
// sequence (CI runs many seeds under ASan+UBSan).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "cloud/server.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "engine/cloud_node.h"
#include "index/index.h"
#include "index/overflow.h"
#include "net/payloads.h"

namespace fresque {
namespace {

namespace fs = std::filesystem;

constexpr size_t kSegHeaderBytes = 16;  // magic + base LSN (wal.cc grammar)

uint64_t CrashSeed() {
  if (const char* env = std::getenv("FRESQUE_CRASH_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807;
}

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Bytes ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  return data;
}

void WriteAll(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

struct PubTruth {
  std::vector<Bytes> records;   // ingest order, plaintext-of-the-test bytes
  Bytes evidence;               // verbatim publication payload
  uint64_t durable_offset = 0;  // wal file length covering this pub's ack
};

net::Message Msg(net::MessageType type, uint64_t pn, uint64_t leaf = 0,
                 Bytes payload = {}) {
  net::Message m;
  m.type = type;
  m.pn = pn;
  m.leaf = leaf;
  m.payload = std::move(payload);
  return m;
}

Bytes PublicationPayload(size_t num_leaves, const std::vector<int64_t>& counts) {
  auto layout = index::IndexLayout::Create(num_leaves, 4);
  auto binning = index::DomainBinning::Create(
      0, static_cast<double>(num_leaves), 1);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), std::move(binning).ValueOrDie(),
      counts);
  index::OverflowArrays ovf(num_leaves, 1);
  return net::EncodeIndexPublication(net::IndexPublication(
      std::move(idx).ValueOrDie(), std::move(ovf)));
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static constexpr size_t kLeaves = 16;
  static constexpr size_t kPublications = 6;

  /// Runs one durable ingest session and fills `truth_`: per publication,
  /// its record bytes, evidence payload, and the WAL offset at which its
  /// ack became durable (fsync=always => file bytes on disk at ack time).
  void RunIngestSession(const std::string& dir, uint64_t seed) {
    auto binning = index::DomainBinning::Create(0, kLeaves, 1);
    cloud::CloudServer server(std::move(binning).ValueOrDie());
    engine::CloudNode node(&server);

    durability::WalOptions wopts;
    wopts.dir = dir;
    wopts.fsync_policy = durability::FsyncPolicy::kAlways;
    wopts.segment_bytes = 256u << 20;  // one segment: offsets == file bytes
    auto wal = durability::Wal::Open(std::move(wopts));
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    durability::Wal* wal_ptr = wal->get();
    ASSERT_TRUE(node.AttachDurability(wal_ptr).ok());

    auto acks = net::MakeMailbox(64);
    node.RouteAcksTo(acks);
    node.Start();

    std::mt19937_64 rng(seed);
    for (uint64_t pn = 0; pn < kPublications; ++pn) {
      PubTruth truth;
      node.inbox()->Push(Msg(net::MessageType::kPublicationStart, pn));
      std::vector<int64_t> counts(kLeaves, 0);
      size_t n_records = 20 + rng() % 60;
      for (size_t i = 0; i < n_records; ++i) {
        uint32_t leaf = static_cast<uint32_t>(rng() % kLeaves);
        Bytes rec(8 + rng() % 48);
        for (auto& b : rec) b = static_cast<uint8_t>(rng());
        truth.records.push_back(rec);
        counts[leaf] += 1;
        node.inbox()->Push(
            Msg(net::MessageType::kCloudRecord, pn, leaf, std::move(rec)));
      }
      truth.evidence = PublicationPayload(kLeaves, counts);
      node.inbox()->Push(Msg(net::MessageType::kIndexPublication, pn, 0,
                             truth.evidence));
      // Wait for the durable ack; only then is the offset meaningful.
      auto ack = acks->Pop();
      ASSERT_TRUE(ack.has_value());
      ASSERT_EQ(ack->type, net::MessageType::kPublicationAck);
      ASSERT_EQ(ack->pn, pn);
      ASSERT_EQ(ack->leaf, 0u)
          << std::string(ack->payload.begin(), ack->payload.end());
      // Nothing else is in flight (we push strictly after popping the
      // ack), so flushed_bytes() is exactly the durable prefix.
      truth.durable_offset = kSegHeaderBytes + wal_ptr->flushed_bytes();
      truth_[pn] = std::move(truth);
    }
    node.inbox()->Push(Msg(net::MessageType::kShutdown, 0));
    node.Shutdown();
    ASSERT_TRUE(node.first_error().ok()) << node.first_error().ToString();
  }

  /// Copies `src_dir`'s WAL cut to `cut` bytes into a fresh dir.
  std::string MakeCutCopy(const std::string& src_dir, uint64_t cut,
                          const std::string& name) {
    std::string dst = FreshDir(name);
    for (const auto& entry : fs::directory_iterator(src_dir)) {
      std::string fname = entry.path().filename().string();
      Bytes data = ReadAll(entry.path().string());
      if (fname.rfind("wal-", 0) == 0 && data.size() > cut) {
        data.resize(cut);
      }
      WriteAll(dst + "/" + fname, data);
    }
    return dst;
  }

  /// Asserts that every publication acked at or before `cut` recovered
  /// byte-identically.
  void CheckCut(const std::string& src_dir, uint64_t cut, int trial) {
    std::string dst =
        MakeCutCopy(src_dir, cut, "crash_cut_" + std::to_string(trial));
    auto recovered = durability::RecoveryManager::Recover(dst);

    std::vector<uint64_t> must_survive;
    for (const auto& [pn, truth] : truth_) {
      if (truth.durable_offset <= cut) must_survive.push_back(pn);
    }
    if (!recovered.ok()) {
      // Only acceptable failure: the cut is so early that neither the
      // meta frame nor any whole frame survived — and then no
      // publication had been acked below the cut either.
      ASSERT_TRUE(recovered.status().IsNotFound())
          << "cut " << cut << ": " << recovered.status().ToString();
      EXPECT_TRUE(must_survive.empty())
          << "cut " << cut << " lost " << must_survive.size()
          << " acked publication(s)";
      fs::remove_all(dst);
      return;
    }

    for (uint64_t pn : must_survive) {
      const PubTruth& truth = truth_.at(pn);
      auto evidence = recovered->server->PublicationEvidence(pn);
      ASSERT_TRUE(evidence.ok())
          << "cut " << cut << ": acked publication " << pn
          << " lost its evidence: " << evidence.status().ToString();
      EXPECT_EQ(*evidence, truth.evidence) << "cut " << cut << " pn " << pn;

      std::vector<Bytes> stored;
      ASSERT_TRUE(recovered->server
                      ->ForEachStoredRecord(
                          pn,
                          [&stored](const cloud::PhysicalAddress&,
                                    const uint8_t* d, size_t n) {
                            stored.emplace_back(d, d + n);
                            return Status::OK();
                          })
                      .ok());
      EXPECT_EQ(stored, truth.records)
          << "cut " << cut << ": publication " << pn
          << " records not byte-identical";
    }
    fs::remove_all(dst);
  }

  std::map<uint64_t, PubTruth> truth_;
};

TEST_F(CrashRecoveryTest, AckedPublicationsSurviveRandomizedCuts) {
  uint64_t seed = CrashSeed();
  std::string dir = FreshDir("crash_src");
  RunIngestSession(dir, seed);
  if (HasFatalFailure()) return;

  // The durable offsets are strictly increasing with pn.
  uint64_t prev = 0;
  uint64_t end = 0;
  for (const auto& [pn, truth] : truth_) {
    EXPECT_GT(truth.durable_offset, prev);
    prev = truth.durable_offset;
    end = truth.durable_offset;
  }

  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  int trial = 0;
  // Randomized cuts across the whole log...
  for (int i = 0; i < 20; ++i) {
    CheckCut(dir, rng() % (end + 1), trial++);
    if (HasFatalFailure()) return;
  }
  // ...plus adversarial cuts at and around every ack boundary (the exact
  // frame edges where off-by-one bugs live).
  for (const auto& [pn, truth] : truth_) {
    for (int64_t delta : {-1, 0, 1}) {
      uint64_t cut = truth.durable_offset + static_cast<uint64_t>(delta);
      CheckCut(dir, cut, trial++);
      if (HasFatalFailure()) return;
    }
  }
  // A cut beyond the file is a no-op: everything survives.
  CheckCut(dir, end + (1u << 20), trial++);
  fs::remove_all(dir);
}

TEST_F(CrashRecoveryTest, MidLogCorruptionIsReportedNotReplayed) {
  uint64_t seed = CrashSeed() + 1;
  std::string dir = FreshDir("crash_corrupt_src");
  RunIngestSession(dir, seed);
  if (HasFatalFailure()) return;

  // Find the WAL file and flip a byte well inside the durable prefix
  // (inside the first publication's frames, nowhere near the tail).
  std::string wal_file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) wal_file = entry.path().string();
  }
  ASSERT_FALSE(wal_file.empty());
  Bytes data = ReadAll(wal_file);
  uint64_t first_ack = truth_.begin()->second.durable_offset;
  ASSERT_GT(first_ack, kSegHeaderBytes + 8u);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes mutated = data;
    size_t pos = kSegHeaderBytes +
                 rng() % (first_ack - kSegHeaderBytes - 1);
    mutated[pos] ^= uint8_t(1u << (rng() % 8));
    std::string dst = FreshDir("crash_corrupt_" + std::to_string(trial));
    WriteAll(dst + "/" + fs::path(wal_file).filename().string(), mutated);
    auto recovered = durability::RecoveryManager::Recover(dst);
    // Damage in the durable prefix must surface as an error — recovering
    // a silently different state would be worse than failing. (A flip in
    // a frame's length field can also legally read as a torn tail if it
    // truncates the stream; both are loud, neither fabricates state.)
    if (recovered.ok()) {
      EXPECT_TRUE(recovered->stats.torn_tail)
          << "trial " << trial << " pos " << pos
          << ": corrupt log replayed cleanly";
    }
    fs::remove_all(dst);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fresque
