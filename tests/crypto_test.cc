#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/key_manager.h"
#include "crypto/sha256.h"

namespace fresque {
namespace crypto {
namespace {

Bytes Hex(const std::string& s) {
  auto r = FromHex(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

std::string HexOf(const uint8_t* data, size_t len) {
  return ToHex(Bytes(data, data + len));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  auto d = Sha256::Hash(Bytes{});
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Bytes msg = {'a', 'b', 'c'};
  auto d = Sha256::Hash(msg);
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  std::string s = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes msg(s.begin(), s.end());
  auto d = Sha256::Hash(msg);
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  auto d = h.Finish();
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string s = "The quick brown fox jumps over the lazy dog";
  Bytes msg(s.begin(), s.end());
  auto one = Sha256::Hash(msg);
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    auto two = h.Finish();
    EXPECT_EQ(one, two) << "split at " << split;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  Bytes junk(100, 0x5A);
  h.Update(junk);
  h.Reset();
  Bytes msg = {'a', 'b', 'c'};
  h.Update(msg);
  auto d = h.Finish();
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------- HMAC-SHA256

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  std::string data = "Hi There";
  auto mac = HmacSha256::Mac(key, Bytes(data.begin(), data.end()));
  EXPECT_EQ(HexOf(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  std::string k = "Jefe";
  std::string data = "what do ya want for nothing?";
  auto mac = HmacSha256::Mac(Bytes(k.begin(), k.end()),
                             Bytes(data.begin(), data.end()));
  EXPECT_EQ(HexOf(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key 20x0xaa, data 50x0xdd.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256::Mac(key, data);
  EXPECT_EQ(HexOf(mac.data(), mac.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: 131-byte key (longer than block => pre-hashed).
TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto mac = HmacSha256::Mac(key, Bytes(data.begin(), data.end()));
  EXPECT_EQ(HexOf(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEquals) {
  Bytes a = {1, 2, 3, 4};
  Bytes b = {1, 2, 3, 4};
  Bytes c = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEquals(a.data(), b.data(), 4));
  EXPECT_FALSE(ConstantTimeEquals(a.data(), c.data(), 4));
}

// ------------------------------------------------------------------- AES

// FIPS 197 Appendix C.1: AES-128.
TEST(AesTest, Fips197Aes128) {
  auto aes = Aes::Create(Hex("000102030405060708090a0b0c0d0e0f"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexOf(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(HexOf(back, 16), "00112233445566778899aabbccddeeff");
}

// FIPS 197 Appendix C.2: AES-192.
TEST(AesTest, Fips197Aes192) {
  auto aes =
      Aes::Create(Hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexOf(ct, 16), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

// FIPS 197 Appendix C.3: AES-256.
TEST(AesTest, Fips197Aes256) {
  auto aes = Aes::Create(
      Hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexOf(ct, 16), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(HexOf(back, 16), "00112233445566778899aabbccddeeff");
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(0, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(33, 0)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(16, 0)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(24, 0)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(32, 0)).ok());
}

// ------------------------------------------------------------------- CBC

// NIST SP 800-38A F.2.1: AES-128-CBC, first block.
TEST(CbcTest, Sp80038aFirstBlock) {
  auto cbc = AesCbc::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  ASSERT_TRUE(cbc.ok());
  Bytes iv = Hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = Hex("6bc1bee22e409f96e93d7e117393172a");
  auto ct = cbc->EncryptWithIv(pt, iv);
  ASSERT_TRUE(ct.ok());
  // Output = IV || C1 || padding block; C1 must match the NIST vector.
  Bytes c1(ct->begin() + 16, ct->begin() + 32);
  EXPECT_EQ(ToHex(c1), "7649abac8119b246cee98e9b12e9197d");
}

TEST(CbcTest, RoundTripVariousLengths) {
  auto cbc = AesCbc::Create(Bytes(32, 0x42));
  ASSERT_TRUE(cbc.ok());
  SecureRandom rng(7);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    Bytes pt = rng.RandomBytes(len);
    auto ct = cbc->Encrypt(
        pt, [&rng](uint8_t* out, size_t n) { rng.Fill(out, n); });
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), AesCbc::CiphertextSize(len));
    auto back = cbc->Decrypt(*ct);
    ASSERT_TRUE(back.ok()) << "len=" << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(CbcTest, FreshIvsMakeEqualPlaintextsUnlinkable) {
  auto cbc = AesCbc::Create(Bytes(16, 0x01));
  ASSERT_TRUE(cbc.ok());
  SecureRandom rng(9);
  Bytes pt(64, 0x77);
  auto a = cbc->Encrypt(pt, [&](uint8_t* o, size_t n) { rng.Fill(o, n); });
  auto b = cbc->Encrypt(pt, [&](uint8_t* o, size_t n) { rng.Fill(o, n); });
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(CbcTest, DetectsCorruptedPadding) {
  auto cbc = AesCbc::Create(Bytes(16, 0x01));
  ASSERT_TRUE(cbc.ok());
  SecureRandom rng(1);
  Bytes pt(20, 0x33);
  auto ct = cbc->Encrypt(pt, [&](uint8_t* o, size_t n) { rng.Fill(o, n); });
  ASSERT_TRUE(ct.ok());
  // Flip a bit in the last block: padding check must fail (w.h.p.).
  Bytes tampered = *ct;
  tampered.back() ^= 0xFF;
  auto r = cbc->Decrypt(tampered);
  if (r.ok()) {
    // With probability ~1/255 random padding still parses; the plaintext
    // must then differ.
    EXPECT_NE(*r, pt);
  }
}

TEST(CbcTest, RejectsTruncatedCiphertext) {
  auto cbc = AesCbc::Create(Bytes(16, 0x01));
  ASSERT_TRUE(cbc.ok());
  EXPECT_FALSE(cbc->Decrypt(Bytes(16, 0)).ok());   // IV only
  EXPECT_FALSE(cbc->Decrypt(Bytes(40, 0)).ok());   // not block-aligned
  EXPECT_FALSE(cbc->Decrypt(Bytes{}).ok());
}

// -------------------------------------------------------------- ChaCha20

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 c(key, nonce, 1);
  uint8_t block[64];
  c.NextBlock(block);
  EXPECT_EQ(HexOf(block, 64),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(SecureRandomTest, DeterministicWithSeed) {
  SecureRandom a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  // Different seeds diverge.
  SecureRandom a2(123);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a2.NextU64() != c.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SecureRandomTest, DoubleInUnitInterval) {
  SecureRandom rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double o = rng.NextDoubleOpenLow();
    EXPECT_GT(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(SecureRandomTest, BoundedStaysInBounds) {
  SecureRandom rng(6);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(SecureRandomTest, BoundedIsRoughlyUniform) {
  SecureRandom rng(7);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  int counts[kBound] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, kDraws / kBound * 0.15);
  }
}

// ----------------------------------------------------------- Key manager

TEST(KeyManagerTest, KeysDifferAcrossPublicationsAndPurposes) {
  KeyManager km(Bytes(32, 0x11));
  std::set<std::string> seen;
  for (uint64_t pn = 0; pn < 10; ++pn) {
    seen.insert(ToHex(km.RecordKey(pn)));
    seen.insert(ToHex(km.OverflowKey(pn)));
    seen.insert(ToHex(km.IndexMacKey(pn)));
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(KeyManagerTest, DerivationIsDeterministic) {
  KeyManager a(Bytes(32, 0x22));
  KeyManager b(Bytes(32, 0x22));
  EXPECT_EQ(a.RecordKey(5), b.RecordKey(5));
  KeyManager c(Bytes(32, 0x23));
  EXPECT_NE(a.RecordKey(5), c.RecordKey(5));
}

TEST(KeyManagerTest, GenerateProducesDistinctMasters) {
  auto a = KeyManager::Generate();
  auto b = KeyManager::Generate();
  EXPECT_NE(a.master_secret(), b.master_secret());
  EXPECT_EQ(a.master_secret().size(), KeyManager::kKeySize);
}

// ------------------------------------------------------------------ Hex

TEST(HexTest, RoundTrip) {
  Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(ToHex(b), "0001abff");
  auto back = FromHex("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(HexTest, RejectsMalformed) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex
  EXPECT_TRUE(FromHex("").ok());       // empty is fine
}

}  // namespace
}  // namespace crypto
}  // namespace fresque
