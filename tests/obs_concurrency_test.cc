// Concurrent exporter test (DESIGN.md §16): writer threads hammer
// counters, gauges and histograms while a scraper loops over /metrics and
// /statusz. Every scrape must parse, and counter values must be monotonic
// scrape-over-scrape — a torn read would show up as a parse failure or a
// counter running backwards. Runs under TSan in CI (scripts/tsan_tests.sh).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp.h"
#include "obs/quantiles.h"
#include "obs/sampler.h"
#include "obs/server.h"
#include "telemetry/metrics.h"

namespace fresque {
namespace obs {
namespace {

std::string HttpGet(uint16_t port, const std::string& path) {
  auto conn = net::TcpConnect(port);
  if (!conn.ok()) return "";
  std::string raw = "GET " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (!conn->WriteRaw(reinterpret_cast<const uint8_t*>(raw.data()),
                      raw.size())
           .ok()) {
    return "";
  }
  std::string response;
  uint8_t buf[4096];
  for (;;) {
    auto n = conn->ReadSome(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), *n);
  }
  return response;
}

std::string Body(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

// Parses one Prometheus exposition body; returns false on any malformed
// line. Fills `value` with the sample for `metric` when present.
bool ParsePrometheus(const std::string& body, const std::string& metric,
                     uint64_t* value) {
  bool found = false;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      return false;  // a sample line is always "series value"
    }
    const std::string series = line.substr(0, space);
    const std::string val = line.substr(space + 1);
    if (val.find_first_not_of("0123456789.eE+-") != std::string::npos) {
      return false;
    }
    if (series == metric) {
      found = true;
      *value = std::stoull(val);
    }
  }
  return found;
}

TEST(ObsConcurrencyTest, ScrapesStayParseableAndMonotonicUnderLoad) {
  telemetry::Registry::Global()->ResetForTest();
  ResetE2eStateForTest();

  std::atomic<uint64_t> status_calls{0};
  ObsServerOptions opts;
  opts.host = "127.0.0.1";
  opts.port = 0;
  opts.sample_interval_ms = 5;  // fold aggressively while writers run
  opts.status_source = [&status_calls] {
    StatusSnapshot s;
    s.view_epoch = status_calls.fetch_add(1, std::memory_order_relaxed);
    s.nodes.push_back({"cn0", 1, 64, 2, 3});
    return s;
  };
  ObsServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 30000;
  std::atomic<bool> go{false};
  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  auto* reg = telemetry::Registry::Global();
  // Pre-register so the first scrape sees the series at 0 rather than
  // racing the writers' lazy registration.
  reg->GetCounter("pipeline.obs_cc_ops");
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([reg, &go, &finished, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto* counter = reg->GetCounter("pipeline.obs_cc_ops");
      auto* gauge = reg->GetGauge("pipeline.obs_cc_depth");
      auto* hist = reg->GetHistogram("pipeline.obs_cc_ns");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Add(1);
        gauge->Set(i);
        hist->Record(static_cast<uint64_t>(i) * 37 + t);
        NoteE2eSample(i * 1000 + 1);
      }
      finished.fetch_add(1, std::memory_order_release);
    });
  }

  go.store(true, std::memory_order_release);
  uint64_t last_ops = 0;
  int scrapes = 0;
  // Scrape continuously while the writers run.
  while (finished.load(std::memory_order_acquire) < kWriters &&
         scrapes < 5000) {
    ++scrapes;
    std::string metrics = Body(HttpGet(port, "/metrics"));
    ASSERT_FALSE(metrics.empty());
    uint64_t ops = 0;
    ASSERT_TRUE(ParsePrometheus(metrics, "fresque_pipeline_obs_cc_ops",
                                &ops))
        << metrics.substr(0, 400);
    ASSERT_GE(ops, last_ops) << "counter ran backwards";
    last_ops = ops;

    std::string statusz = Body(HttpGet(port, "/statusz"));
    ASSERT_TRUE(telemetry::ValidateJsonSyntax(statusz).ok()) << statusz;
  }
  for (auto& w : writers) w.join();

  // Final scrape observes the complete total exactly.
  uint64_t ops = 0;
  ASSERT_TRUE(ParsePrometheus(Body(HttpGet(port, "/metrics")),
                              "fresque_pipeline_obs_cc_ops", &ops));
  EXPECT_EQ(ops, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_GT(scrapes, 1);

  server.Stop();
  // The sampler folded the writers' e2e samples into quantile gauges.
  EXPECT_GT(reg->GetGauge("pipeline.e2e_p99_ns")->Value(), 0);
  ResetE2eStateForTest();
  telemetry::Registry::Global()->ResetForTest();
}

// Sketch-focused stress: all writers into one sketch while a reader
// queries; exact weight conservation must hold at the end.
TEST(ObsConcurrencyTest, SketchSurvivesWritersPlusReader) {
  StreamingQuantiles sk;
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 40000;
  std::atomic<bool> stop{false};
  std::thread reader([&sk, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)sk.QueryMany({0.5, 0.95, 0.99});
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&sk] {
      for (uint64_t i = 1; i <= kPerWriter; ++i) sk.Insert(i);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(sk.Count(), kWriters * kPerWriter);
  EXPECT_EQ(sk.TotalWeight(), kWriters * kPerWriter);
}

}  // namespace
}  // namespace obs
}  // namespace fresque
