// Extended known-answer tests: full multi-block NIST SP 800-38A CBC
// vectors for all three AES key sizes, and ChaCha20 keystream
// continuation across blocks.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"

namespace fresque {
namespace crypto {
namespace {

Bytes Hex(const std::string& s) { return std::move(FromHex(s)).ValueOrDie(); }

// SP 800-38A F.2: the shared 4-block plaintext and IV.
const char* kCbcIv = "000102030405060708090a0b0c0d0e0f";
const char* kCbcPlain =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

struct CbcVector {
  const char* key;
  const char* cipher;  // 4 blocks
};

class CbcNistTest : public ::testing::TestWithParam<CbcVector> {};

TEST_P(CbcNistTest, FourBlockChainMatches) {
  const auto& v = GetParam();
  auto cbc = AesCbc::Create(Hex(v.key));
  ASSERT_TRUE(cbc.ok());
  auto ct = cbc->EncryptWithIv(Hex(kCbcPlain), Hex(kCbcIv));
  ASSERT_TRUE(ct.ok());
  // Our output: IV || C1..C4 || padding block. Compare C1..C4.
  Bytes body(ct->begin() + 16, ct->begin() + 16 + 64);
  EXPECT_EQ(ToHex(body), v.cipher);
  // And the whole thing decrypts back.
  auto pt = cbc->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, Hex(kCbcPlain));
}

INSTANTIATE_TEST_SUITE_P(
    Sp80038a, CbcNistTest,
    ::testing::Values(
        // F.2.1 CBC-AES128.
        CbcVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "7649abac8119b246cee98e9b12e9197d"
                  "5086cb9b507219ee95db113a917678b2"
                  "73bed6b8e3c1743b7116e69e22229516"
                  "3ff1caa1681fac09120eca307586e1a7"},
        // F.2.3 CBC-AES192.
        CbcVector{"8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
                  "4f021db243bc633d7178183a9fa071e8"
                  "b4d9ada9ad7dedf4e5e738763f69145a"
                  "571b242012fb7ae07fa9baac3df102e0"
                  "08b0e27988598881d920a9e64f5615cd"},
        // F.2.5 CBC-AES256.
        CbcVector{"603deb1015ca71be2b73aef0857d7781"
                  "1f352c073b6108d72d9810a30914dff4",
                  "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
                  "9cfc4e967edb808d679f777bc6702c7d"
                  "39f23369a9d9bacfa530e26304231461"
                  "b2eb05e2c39be9fcda6c19078c6a9d1b"}));

TEST(ChaChaStreamTest, CounterAdvancesAcrossBlocks) {
  // RFC 8439 §2.4.2 encrypts two blocks with counters 1 and 2; check our
  // block function chains identically.
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 chained(key, nonce, 1);
  uint8_t b1[64], b2[64];
  chained.NextBlock(b1);
  chained.NextBlock(b2);

  ChaCha20 direct2(key, nonce, 2);
  uint8_t b2_direct[64];
  direct2.NextBlock(b2_direct);
  EXPECT_EQ(Bytes(b2, b2 + 64), Bytes(b2_direct, b2_direct + 64));
  EXPECT_NE(Bytes(b1, b1 + 64), Bytes(b2, b2 + 64));
}

TEST(AesDecryptInvertsEncryptProperty, AllKeySizesRandomBlocks) {
  SecureRandom rng(404);
  for (size_t key_size : {16u, 24u, 32u}) {
    auto aes = Aes::Create(rng.RandomBytes(key_size));
    ASSERT_TRUE(aes.ok());
    for (int trial = 0; trial < 200; ++trial) {
      Bytes block = rng.RandomBytes(16);
      uint8_t ct[16], back[16];
      aes->EncryptBlock(block.data(), ct);
      aes->DecryptBlock(ct, back);
      EXPECT_EQ(Bytes(back, back + 16), block);
      // A block cipher must not be the identity.
      EXPECT_NE(Bytes(ct, ct + 16), block);
    }
  }
}

TEST(AesAvalancheProperty, SingleBitFlipChangesHalfTheOutput) {
  auto aes = Aes::Create(Bytes(16, 0x42));
  ASSERT_TRUE(aes.ok());
  uint8_t base[16] = {};
  uint8_t ct_a[16], ct_b[16];
  aes->EncryptBlock(base, ct_a);
  base[0] ^= 0x01;  // flip one bit
  aes->EncryptBlock(base, ct_b);
  int diff_bits = 0;
  for (int i = 0; i < 16; ++i) {
    diff_bits += __builtin_popcount(ct_a[i] ^ ct_b[i]);
  }
  // 128 bits, expect ~64 flipped; allow a generous window.
  EXPECT_GT(diff_bits, 40);
  EXPECT_LT(diff_bits, 90);
}

}  // namespace
}  // namespace crypto
}  // namespace fresque
