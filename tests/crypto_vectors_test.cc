// Extended known-answer tests: full multi-block NIST SP 800-38A CBC
// vectors for all three AES key sizes, and ChaCha20 keystream
// continuation across blocks.

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"

namespace fresque {
namespace crypto {
namespace {

Bytes Hex(const std::string& s) { return std::move(FromHex(s)).ValueOrDie(); }

/// Every backend compiled into this binary and usable on this CPU: the
/// software tables always, plus the hardware backend (AES-NI / ARMv8 CE)
/// when present. Known-answer tests run against each so a dispatch bug
/// can never hide behind whichever backend kAuto happens to pick.
std::vector<Aes::Backend> UsableBackends() {
  std::vector<Aes::Backend> b{Aes::Backend::kSoftware};
  if (Aes::HardwareBackendAvailable()) b.push_back(Aes::Backend::kHardware);
  return b;
}

const char* BackendLabel(Aes::Backend b) {
  return b == Aes::Backend::kSoftware ? "soft" : "hardware";
}

// SP 800-38A F.2: the shared 4-block plaintext and IV.
const char* kCbcIv = "000102030405060708090a0b0c0d0e0f";
const char* kCbcPlain =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

struct CbcVector {
  const char* key;
  const char* cipher;  // 4 blocks
};

class CbcNistTest : public ::testing::TestWithParam<CbcVector> {};

TEST_P(CbcNistTest, FourBlockChainMatchesOnEveryBackend) {
  const auto& v = GetParam();
  for (Aes::Backend backend : UsableBackends()) {
    SCOPED_TRACE(BackendLabel(backend));
    auto cbc = AesCbc::Create(Hex(v.key), backend);
    ASSERT_TRUE(cbc.ok());
    auto ct = cbc->EncryptWithIv(Hex(kCbcPlain), Hex(kCbcIv));
    ASSERT_TRUE(ct.ok());
    // Our output: IV || C1..C4 || padding block. Compare C1..C4.
    Bytes body(ct->begin() + 16, ct->begin() + 16 + 64);
    EXPECT_EQ(ToHex(body), v.cipher);
    // And the whole thing decrypts back.
    auto pt = cbc->Decrypt(*ct);
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(*pt, Hex(kCbcPlain));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sp80038a, CbcNistTest,
    ::testing::Values(
        // F.2.1 CBC-AES128.
        CbcVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "7649abac8119b246cee98e9b12e9197d"
                  "5086cb9b507219ee95db113a917678b2"
                  "73bed6b8e3c1743b7116e69e22229516"
                  "3ff1caa1681fac09120eca307586e1a7"},
        // F.2.3 CBC-AES192.
        CbcVector{"8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
                  "4f021db243bc633d7178183a9fa071e8"
                  "b4d9ada9ad7dedf4e5e738763f69145a"
                  "571b242012fb7ae07fa9baac3df102e0"
                  "08b0e27988598881d920a9e64f5615cd"},
        // F.2.5 CBC-AES256.
        CbcVector{"603deb1015ca71be2b73aef0857d7781"
                  "1f352c073b6108d72d9810a30914dff4",
                  "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
                  "9cfc4e967edb808d679f777bc6702c7d"
                  "39f23369a9d9bacfa530e26304231461"
                  "b2eb05e2c39be9fcda6c19078c6a9d1b"}));

TEST(ChaChaStreamTest, CounterAdvancesAcrossBlocks) {
  // RFC 8439 §2.4.2 encrypts two blocks with counters 1 and 2; check our
  // block function chains identically.
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 chained(key, nonce, 1);
  uint8_t b1[64], b2[64];
  chained.NextBlock(b1);
  chained.NextBlock(b2);

  ChaCha20 direct2(key, nonce, 2);
  uint8_t b2_direct[64];
  direct2.NextBlock(b2_direct);
  EXPECT_EQ(Bytes(b2, b2 + 64), Bytes(b2_direct, b2_direct + 64));
  EXPECT_NE(Bytes(b1, b1 + 64), Bytes(b2, b2 + 64));
}

TEST(AesDecryptInvertsEncryptProperty, AllKeySizesRandomBlocks) {
  SecureRandom rng(404);
  for (size_t key_size : {16u, 24u, 32u}) {
    auto aes = Aes::Create(rng.RandomBytes(key_size));
    ASSERT_TRUE(aes.ok());
    for (int trial = 0; trial < 200; ++trial) {
      Bytes block = rng.RandomBytes(16);
      uint8_t ct[16], back[16];
      aes->EncryptBlock(block.data(), ct);
      aes->DecryptBlock(ct, back);
      EXPECT_EQ(Bytes(back, back + 16), block);
      // A block cipher must not be the identity.
      EXPECT_NE(Bytes(ct, ct + 16), block);
    }
  }
}

// FIPS 197 Appendix C single-block examples, all three key sizes, run
// against every compiled backend.
struct BlockVector {
  const char* key;
  const char* cipher;
};

class AesFips197Test : public ::testing::TestWithParam<BlockVector> {};

TEST_P(AesFips197Test, SingleBlockMatchesOnEveryBackend) {
  const auto& v = GetParam();
  const Bytes plain = Hex("00112233445566778899aabbccddeeff");
  for (Aes::Backend backend : UsableBackends()) {
    SCOPED_TRACE(BackendLabel(backend));
    auto aes = Aes::Create(Hex(v.key), backend);
    ASSERT_TRUE(aes.ok());
    uint8_t ct[16], back[16];
    aes->EncryptBlock(plain.data(), ct);
    EXPECT_EQ(ToHex(Bytes(ct, ct + 16)), v.cipher);
    aes->DecryptBlock(ct, back);
    EXPECT_EQ(Bytes(back, back + 16), plain);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fips197AppendixC, AesFips197Test,
    ::testing::Values(
        // C.1 AES-128.
        BlockVector{"000102030405060708090a0b0c0d0e0f",
                    "69c4e0d86a7b0430d8cdb78070b4c55a"},
        // C.2 AES-192.
        BlockVector{"000102030405060708090a0b0c0d0e0f1011121314151617",
                    "dda97ca4864cdfe06eaf70a0ec0d7191"},
        // C.3 AES-256.
        BlockVector{"000102030405060708090a0b0c0d0e0f"
                    "101112131415161718191a1b1c1d1e1f",
                    "8ea2b7ca516745bfeafc49904b496089"}));

// Hardware and software backends must be byte-identical on arbitrary
// inputs, not just the standard vectors: 10k random key/IV/plaintext
// triples across all key sizes and lengths spanning the padding edge
// cases (empty, sub-block, exact multiples, multi-block).
TEST(AesBackendCrossCheck, RandomTriplesEncryptIdentically) {
  if (!Aes::HardwareBackendAvailable()) {
    GTEST_SKIP() << "no hardware AES backend on this CPU/build";
  }
  SecureRandom rng(20260807);
  constexpr size_t kTriples = 10000;
  const size_t key_sizes[] = {16, 24, 32};
  for (size_t i = 0; i < kTriples; ++i) {
    Bytes key = rng.RandomBytes(key_sizes[i % 3]);
    auto soft = AesCbc::Create(key, Aes::Backend::kSoftware);
    auto hw = AesCbc::Create(key, Aes::Backend::kHardware);
    ASSERT_TRUE(soft.ok());
    ASSERT_TRUE(hw.ok());
    Bytes iv = rng.RandomBytes(16);
    Bytes plain = rng.RandomBytes(rng.NextU64() % 193);  // 0..192 bytes
    auto ct_soft = soft->EncryptWithIv(plain, iv);
    auto ct_hw = hw->EncryptWithIv(plain, iv);
    ASSERT_TRUE(ct_soft.ok());
    ASSERT_TRUE(ct_hw.ok());
    ASSERT_EQ(*ct_soft, *ct_hw) << "triple " << i;
    // Decrypt cross-wise: each backend opens the other's ciphertext.
    auto pt_a = soft->Decrypt(*ct_hw);
    auto pt_b = hw->Decrypt(*ct_soft);
    ASSERT_TRUE(pt_a.ok());
    ASSERT_TRUE(pt_b.ok());
    ASSERT_EQ(*pt_a, plain);
    ASSERT_EQ(*pt_b, plain);
  }
}

// The interleaved batch path must produce exactly what the one-at-a-time
// path produces: for every item of every batch, re-encrypting its
// plaintext under the IV the batch chose yields the same ciphertext on
// both backends.
TEST(AesBackendCrossCheck, BatchEncryptMatchesSingleMessagePath) {
  SecureRandom rng(7);
  for (Aes::Backend backend : UsableBackends()) {
    SCOPED_TRACE(BackendLabel(backend));
    Bytes key = rng.RandomBytes(16);
    auto cbc = AesCbc::Create(key, backend);
    auto soft = AesCbc::Create(key, Aes::Backend::kSoftware);
    ASSERT_TRUE(cbc.ok());
    ASSERT_TRUE(soft.ok());
    CbcBatchScratch scratch;
    // Uneven lengths exercise the lockstep groups (8/4/2) and the serial
    // tails together.
    for (size_t round = 0; round < 50; ++round) {
      const size_t n = 1 + rng.NextU64() % 37;
      std::vector<Bytes> plains(n), outs(n);
      std::vector<CbcBatchItem> items(n);
      for (size_t i = 0; i < n; ++i) {
        plains[i] = rng.RandomBytes(rng.NextU64() % 160);
        items[i] = {plains[i].data(), plains[i].size(), &outs[i]};
      }
      Status st = cbc->EncryptBatch(
          items.data(), n, [&](uint8_t* out, size_t len) { rng.Fill(out, len); },
          &scratch);
      ASSERT_TRUE(st.ok());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_GE(outs[i].size(), 32u);
        Bytes iv(outs[i].begin(), outs[i].begin() + 16);
        auto expect = soft->EncryptWithIv(plains[i], iv);
        ASSERT_TRUE(expect.ok());
        ASSERT_EQ(outs[i], *expect) << "round " << round << " item " << i;
        auto back = soft->Decrypt(outs[i]);
        ASSERT_TRUE(back.ok());
        ASSERT_EQ(*back, plains[i]);
      }
    }
  }
}

TEST(AesAvalancheProperty, SingleBitFlipChangesHalfTheOutput) {
  auto aes = Aes::Create(Bytes(16, 0x42));
  ASSERT_TRUE(aes.ok());
  uint8_t base[16] = {};
  uint8_t ct_a[16], ct_b[16];
  aes->EncryptBlock(base, ct_a);
  base[0] ^= 0x01;  // flip one bit
  aes->EncryptBlock(base, ct_b);
  int diff_bits = 0;
  for (int i = 0; i < 16; ++i) {
    diff_bits += __builtin_popcount(ct_a[i] ^ ct_b[i]);
  }
  // 128 bits, expect ~64 flipped; allow a generous window.
  EXPECT_GT(diff_bits, 40);
  EXPECT_LT(diff_bits, 90);
}

}  // namespace
}  // namespace crypto
}  // namespace fresque
