#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "index/al.h"
#include "index/binning.h"
#include "index/index.h"
#include "index/layout.h"
#include "index/matching.h"
#include "index/overflow.h"

namespace fresque {
namespace index {
namespace {

DomainBinning MakeBinning(double lo, double hi, double width) {
  auto b = DomainBinning::Create(lo, hi, width);
  EXPECT_TRUE(b.ok());
  return std::move(b).ValueOrDie();
}

// ---------------------------------------------------------------- Binning

TEST(BinningTest, PaperOffsetFormula) {
  // Ov = min( floor((v - dmin)/Ib), num_bins - 1 )
  auto b = MakeBinning(0, 3421 * 1024.0, 1024.0);
  EXPECT_EQ(b.num_bins(), 3421u);
  EXPECT_EQ(b.LeafOffset(0), 0u);
  EXPECT_EQ(b.LeafOffset(1023), 0u);
  EXPECT_EQ(b.LeafOffset(1024), 1u);
  EXPECT_EQ(b.LeafOffset(3421 * 1024.0 - 1), 3420u);
  // Clamp at the top (the min() in the paper's formula).
  EXPECT_EQ(b.LeafOffset(3421 * 1024.0), 3420u);
  EXPECT_EQ(b.LeafOffset(1e12), 3420u);
}

TEST(BinningTest, CheckedOffsetRejectsOutOfDomain) {
  auto b = MakeBinning(10, 20, 2);
  EXPECT_TRUE(b.LeafOffsetChecked(10).ok());
  EXPECT_TRUE(b.LeafOffsetChecked(19.9).ok());
  EXPECT_FALSE(b.LeafOffsetChecked(9.9).ok());
  EXPECT_FALSE(b.LeafOffsetChecked(20).ok());
}

TEST(BinningTest, LeafIntervalsTileTheDomain) {
  auto b = MakeBinning(-5, 5, 0.5);
  for (size_t i = 0; i < b.num_bins(); ++i) {
    EXPECT_DOUBLE_EQ(b.LeafHigh(i), b.LeafLow(i + 1));
    EXPECT_EQ(b.LeafOffset(b.LeafLow(i)), i);
  }
}

TEST(BinningTest, RejectsDegenerateDomains) {
  EXPECT_FALSE(DomainBinning::Create(0, 0, 1).ok());
  EXPECT_FALSE(DomainBinning::Create(5, 1, 1).ok());
  EXPECT_FALSE(DomainBinning::Create(0, 10, 0).ok());
  EXPECT_FALSE(DomainBinning::Create(0, 10, -1).ok());
}

// ----------------------------------------------------------------- Layout

TEST(LayoutTest, LevelSizesShrinkByFanout) {
  auto layout = IndexLayout::Create(3421, 16);
  ASSERT_TRUE(layout.ok());
  // 3421 -> 214 -> 14 -> 1
  EXPECT_EQ(layout->num_levels(), 4u);
  EXPECT_EQ(layout->level_size(0), 3421u);
  EXPECT_EQ(layout->level_size(1), 214u);
  EXPECT_EQ(layout->level_size(2), 14u);
  EXPECT_EQ(layout->level_size(3), 1u);
  EXPECT_EQ(layout->total_nodes(), 3421u + 214 + 14 + 1);
}

TEST(LayoutTest, SingleLeafIsJustRoot) {
  auto layout = IndexLayout::Create(1, 16);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->num_levels(), 1u);
}

TEST(LayoutTest, ChildRangesPartitionLevels) {
  auto layout = IndexLayout::Create(100, 4);
  ASSERT_TRUE(layout.ok());
  for (size_t l = 1; l < layout->num_levels(); ++l) {
    size_t covered = 0;
    for (size_t i = 0; i < layout->level_size(l); ++i) {
      size_t begin = layout->ChildBegin(l, i);
      size_t end = layout->ChildEnd(l, i);
      EXPECT_EQ(begin, covered);
      EXPECT_GT(end, begin);
      covered = end;
    }
    EXPECT_EQ(covered, layout->level_size(l - 1));
  }
}

TEST(LayoutTest, LeafSpansCoverAllLeaves) {
  auto layout = IndexLayout::Create(50, 3);
  ASSERT_TRUE(layout.ok());
  size_t root = layout->num_levels() - 1;
  size_t b, e;
  layout->LeafSpan(root, 0, &b, &e);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 50u);
  // Level-1 spans tile the leaves.
  if (layout->num_levels() > 1) {
    size_t covered = 0;
    for (size_t i = 0; i < layout->level_size(1); ++i) {
      layout->LeafSpan(1, i, &b, &e);
      EXPECT_EQ(b, covered);
      covered = e;
    }
    EXPECT_EQ(covered, 50u);
  }
}

TEST(LayoutTest, RejectsBadParameters) {
  EXPECT_FALSE(IndexLayout::Create(0, 16).ok());
  EXPECT_FALSE(IndexLayout::Create(10, 1).ok());
}

// ---------------------------------------------------------- HistogramIndex

TEST(HistogramIndexTest, AggregateUpSumsChildren) {
  auto layout = IndexLayout::Create(8, 2);
  auto binning = MakeBinning(0, 8, 1);
  std::vector<int64_t> counts = {1, 2, 3, 4, 5, 6, 7, 8};
  auto idx = HistogramIndex::FromLeafCounts(std::move(layout).ValueOrDie(),
                                            binning, counts);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->root_count(), 36);
  EXPECT_EQ(idx->count(1, 0), 3);   // 1+2
  EXPECT_EQ(idx->count(1, 3), 15);  // 7+8
  EXPECT_EQ(idx->count(2, 0), 10);  // 1..4
}

TEST(HistogramIndexTest, AddAlongPathMatchesRebuild) {
  auto layout = IndexLayout::Create(100, 16);
  auto binning = MakeBinning(0, 100, 1);
  HistogramIndex incremental(std::move(layout).ValueOrDie(), binning);
  std::vector<int64_t> counts(100, 0);
  Xoshiro256 rng(8);
  for (int i = 0; i < 5000; ++i) {
    size_t leaf = rng.NextBounded(100);
    incremental.AddAlongPath(leaf, 1);
    ++counts[leaf];
  }
  auto rebuilt = HistogramIndex::FromLeafCounts(
      incremental.layout(), incremental.binning(), counts);
  ASSERT_TRUE(rebuilt.ok());
  for (size_t l = 0; l < incremental.layout().num_levels(); ++l) {
    for (size_t i = 0; i < incremental.layout().level_size(l); ++i) {
      EXPECT_EQ(incremental.count(l, i), rebuilt->count(l, i))
          << "level " << l << " node " << i;
    }
  }
}

TEST(HistogramIndexTest, WalkToLeafMatchesArithmeticOffset) {
  auto binning = MakeBinning(100, 5000, 7);
  auto layout = IndexLayout::Create(binning.num_bins(), 16);
  HistogramIndex idx(std::move(layout).ValueOrDie(), binning);
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    double v = 100 + rng.NextDouble() * (5000 - 100);
    EXPECT_EQ(idx.WalkToLeaf(v), binning.LeafOffset(v)) << "v=" << v;
  }
  // Edges.
  EXPECT_EQ(idx.WalkToLeaf(100), binning.LeafOffset(100));
  EXPECT_EQ(idx.WalkToLeaf(4999.999), binning.LeafOffset(4999.999));
}

// Property: traversal returns exactly the non-prunable leaves a brute
// force over the noisy tree would return.
TEST(HistogramIndexTest, PropertyTraverseMatchesBruteForce) {
  Xoshiro256 rng(12);
  crypto::SecureRandom crng(12);
  for (int trial = 0; trial < 30; ++trial) {
    size_t bins = 20 + rng.NextBounded(200);
    auto binning = MakeBinning(0, static_cast<double>(bins), 1);
    auto layout = IndexLayout::Create(bins, 2 + rng.NextBounded(15));
    std::vector<int64_t> counts(bins);
    for (auto& c : counts) {
      c = static_cast<int64_t>(rng.NextBounded(20)) - 5;  // some negative
    }
    auto idx = HistogramIndex::FromLeafCounts(std::move(layout).ValueOrDie(),
                                              binning, counts);
    ASSERT_TRUE(idx.ok());
    // Perturb internal nodes too so pruning can happen mid-tree.
    IndexPerturber perturber(0.5, &crng);
    perturber.Perturb(&*idx);

    double lo = rng.NextDouble() * bins;
    double hi = lo + rng.NextDouble() * (bins - lo);
    RangeQuery q{lo, hi};
    auto got = idx->Traverse(q);

    // Brute force: leaf reachable iff every ancestor (and itself) has a
    // non-negative count and the leaf interval intersects [lo, hi].
    std::vector<size_t> want;
    const auto& lay = idx->layout();
    for (size_t leaf = 0; leaf < bins; ++leaf) {
      double llo = binning.LeafLow(leaf);
      double lhi = binning.LeafHigh(leaf);
      if (lhi <= q.lo || llo > q.hi) continue;
      bool reachable = true;
      size_t node = leaf;
      for (size_t l = 0; l < lay.num_levels(); ++l) {
        if (idx->count(l, node) < 0) {
          reachable = false;
          break;
        }
        node /= lay.fanout();
      }
      if (reachable) want.push_back(leaf);
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(HistogramIndexTest, NoisyRangeCountMatchesLeafSumOnCleanIndex) {
  // On an unperturbed index the greedy cover must equal the exact
  // bin-granular count for every query, since internal nodes are exact
  // sums of their children.
  auto binning = MakeBinning(0, 300, 1);
  auto layout = IndexLayout::Create(300, 4);
  std::vector<int64_t> counts(300);
  Xoshiro256 rng(21);
  for (auto& c : counts) c = static_cast<int64_t>(rng.NextBounded(10));
  auto idx = HistogramIndex::FromLeafCounts(std::move(layout).ValueOrDie(),
                                            binning, counts);
  ASSERT_TRUE(idx.ok());
  for (int trial = 0; trial < 200; ++trial) {
    double lo = rng.NextDouble() * 300;
    double hi = lo + rng.NextDouble() * (300 - lo);
    int64_t got = idx->NoisyRangeCount({lo, hi});
    int64_t want = 0;
    size_t first = binning.LeafOffset(lo);
    size_t last = binning.LeafOffset(hi);
    for (size_t leaf = first; leaf <= last; ++leaf) want += counts[leaf];
    EXPECT_EQ(got, want) << "[" << lo << ", " << hi << "]";
  }
  // Degenerate / out-of-domain queries.
  EXPECT_EQ(idx->NoisyRangeCount({5, 4}), 0);
  EXPECT_EQ(idx->NoisyRangeCount({-100, -50}), 0);
  EXPECT_EQ(idx->NoisyRangeCount({400, 500}), 0);
  EXPECT_EQ(idx->NoisyRangeCount({0, 299.5}), idx->root_count());
}

TEST(HistogramIndexTest, HierarchicalCountBeatsLeafSumUnderNoise) {
  // The accuracy argument: covering a wide range with O(log n) internal
  // nodes accumulates far less Laplace noise than summing every leaf.
  auto binning = MakeBinning(0, 1024, 1);
  crypto::SecureRandom crng(31);
  double err_hier = 0, err_leaf = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    auto layout = IndexLayout::Create(1024, 16);
    std::vector<int64_t> counts(1024, 10);
    auto idx = HistogramIndex::FromLeafCounts(
        std::move(layout).ValueOrDie(), binning, counts);
    IndexPerturber perturber(1.0, &crng);
    perturber.Perturb(&*idx);
    RangeQuery q{0, 1023.5};  // whole domain
    const int64_t truth = 1024 * 10;
    err_hier += std::abs(
        static_cast<double>(idx->NoisyRangeCount(q) - truth));
    int64_t leaf_sum = 0;
    for (size_t leaf = 0; leaf < 1024; ++leaf) {
      leaf_sum += idx->leaf_count(leaf);
    }
    err_leaf += std::abs(static_cast<double>(leaf_sum - truth));
  }
  // The hierarchical cover is the root alone here: one noise term vs
  // 1024 -- expect at least a few-fold accuracy win on average.
  EXPECT_LT(err_hier / kTrials, err_leaf / kTrials / 3);
}

TEST(HistogramIndexTest, SerializeRoundTrip) {
  auto binning = MakeBinning(0, 626 * 3600.0, 3600);
  crypto::SecureRandom rng(5);
  auto tmpl = IndexTemplate::Create(binning, 16, 1.0, &rng);
  ASSERT_TRUE(tmpl.ok());
  Bytes bytes = tmpl->noise_index().Serialize();
  auto back = HistogramIndex::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  for (size_t l = 0; l < back->layout().num_levels(); ++l) {
    for (size_t i = 0; i < back->layout().level_size(l); ++i) {
      EXPECT_EQ(back->count(l, i), tmpl->noise_index().count(l, i));
    }
  }
}

TEST(HistogramIndexTest, DeserializeRejectsCorruption) {
  auto binning = MakeBinning(0, 64, 1);
  auto layout = IndexLayout::Create(64, 4);
  HistogramIndex idx(std::move(layout).ValueOrDie(), binning);
  Bytes good = idx.Serialize();
  // Truncation.
  Bytes truncated(good.begin(), good.begin() + good.size() / 2);
  EXPECT_FALSE(HistogramIndex::Deserialize(truncated).ok());
  // Trailing garbage.
  Bytes extended = good;
  extended.push_back(0);
  EXPECT_FALSE(HistogramIndex::Deserialize(extended).ok());
  // Empty.
  EXPECT_FALSE(HistogramIndex::Deserialize({}).ok());
}

TEST(HistogramIndexTest, PlusRequiresSameShape) {
  auto binning_a = MakeBinning(0, 64, 1);
  auto binning_b = MakeBinning(0, 32, 1);
  HistogramIndex a(std::move(IndexLayout::Create(64, 4)).ValueOrDie(),
                   binning_a);
  HistogramIndex b(std::move(IndexLayout::Create(32, 4)).ValueOrDie(),
                   binning_b);
  EXPECT_FALSE(a.Plus(b).ok());
}

// ------------------------------------------------------------ Perturbation

TEST(PerturberTest, LevelScaleSplitsBudget) {
  EXPECT_DOUBLE_EQ(IndexPerturber::LevelScale(1.0, 4), 4.0);
  EXPECT_DOUBLE_EQ(IndexPerturber::LevelScale(2.0, 4), 2.0);
  EXPECT_DOUBLE_EQ(IndexPerturber::LevelScale(0.5, 1), 2.0);
}

TEST(PerturberTest, NoiseShapeMatchesLayoutAndIsNontrivial) {
  crypto::SecureRandom rng(9);
  IndexPerturber perturber(1.0, &rng);
  auto layout = IndexLayout::Create(1000, 16);
  auto noise = perturber.SampleNoise(*layout);
  ASSERT_EQ(noise.size(), layout->num_levels());
  int64_t nonzero = 0;
  for (size_t l = 0; l < noise.size(); ++l) {
    EXPECT_EQ(noise[l].size(), layout->level_size(l));
    for (int64_t v : noise[l]) nonzero += (v != 0);
  }
  EXPECT_GT(nonzero, 100);  // Lap(4) is rarely 0 across 1200+ nodes
}

TEST(TemplateTest, MergeWithCountsEqualsDirectBuildPlusNoise) {
  auto binning = MakeBinning(0, 200, 1);
  crypto::SecureRandom rng(10);
  auto tmpl = IndexTemplate::Create(binning, 8, 1.0, &rng);
  ASSERT_TRUE(tmpl.ok());
  std::vector<int64_t> al(200);
  Xoshiro256 xr(2);
  for (auto& v : al) v = static_cast<int64_t>(xr.NextBounded(50));
  auto merged = tmpl->MergeWithCounts(al);
  ASSERT_TRUE(merged.ok());
  // Every leaf: noise + AL; every internal: sum-of-children identity.
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(merged->leaf_count(i), tmpl->leaf_noise()[i] + al[i]);
  }
  const auto& lay = merged->layout();
  for (size_t l = 1; l < lay.num_levels(); ++l) {
    for (size_t i = 0; i < lay.level_size(l); ++i) {
      int64_t kids = 0;
      for (size_t c = lay.ChildBegin(l, i); c < lay.ChildEnd(l, i); ++c) {
        kids += merged->count(l - 1, c);
      }
      // Internal node = own noise + children *count* sums; since noise is
      // per-node, the identity holds for the count component only:
      // merged(l,i) - noise(l,i) == sum(merged(l-1,c) - noise(l-1,c)).
      int64_t own = merged->count(l, i) - tmpl->noise_index().count(l, i);
      int64_t kid_counts = kids;
      for (size_t c = lay.ChildBegin(l, i); c < lay.ChildEnd(l, i); ++c) {
        kid_counts -= tmpl->noise_index().count(l - 1, c);
      }
      EXPECT_EQ(own, kid_counts);
    }
  }
}

TEST(TemplateTest, MergeRejectsWrongArity) {
  auto binning = MakeBinning(0, 100, 1);
  crypto::SecureRandom rng(10);
  auto tmpl = IndexTemplate::Create(binning, 8, 1.0, &rng);
  EXPECT_FALSE(tmpl->MergeWithCounts(std::vector<int64_t>(99, 0)).ok());
}

TEST(TemplateTest, TotalPositiveNoiseCountsOnlyPositive) {
  auto binning = MakeBinning(0, 500, 1);
  crypto::SecureRandom rng(11);
  auto tmpl = IndexTemplate::Create(binning, 16, 1.0, &rng);
  int64_t expected = 0;
  for (int64_t n : tmpl->leaf_noise()) {
    if (n > 0) expected += n;
  }
  EXPECT_EQ(tmpl->TotalPositiveNoise(), expected);
  EXPECT_GT(expected, 0);
}

// -------------------------------------------------------------- LeafArrays

TEST(LeafArraysTest, ChecksNegativeNoiseExactly) {
  // ALN starts at {-2, 0, 3}: leaf 0 removes exactly two records.
  LeafArrays al({-2, 0, 3});
  EXPECT_EQ(al.Admit(0), LeafArrays::Decision::kRemove);
  EXPECT_EQ(al.Admit(0), LeafArrays::Decision::kRemove);
  EXPECT_EQ(al.Admit(0), LeafArrays::Decision::kForward);
  EXPECT_EQ(al.Admit(1), LeafArrays::Decision::kForward);
  EXPECT_EQ(al.Admit(2), LeafArrays::Decision::kForward);
  // AL counts everything, including removed records.
  EXPECT_EQ(al.al(0), 3);
  EXPECT_EQ(al.al(1), 1);
  EXPECT_EQ(al.al(2), 1);
  EXPECT_EQ(al.TotalReal(), 5);
}

TEST(LeafArraysTest, PublishedCountInvariant) {
  // Invariant: for any arrival pattern, AL[i] + noise[i] equals
  // (records attached at cloud) + (records removed) + noise — i.e. the
  // published count equals arrivals + noise.
  Xoshiro256 rng(44);
  std::vector<int64_t> noise(50);
  for (auto& n : noise) n = static_cast<int64_t>(rng.NextBounded(9)) - 4;
  LeafArrays al(noise);
  std::vector<int64_t> arrivals(50, 0), removed(50, 0);
  for (int i = 0; i < 10000; ++i) {
    size_t leaf = rng.NextBounded(50);
    ++arrivals[leaf];
    if (al.Admit(leaf) == LeafArrays::Decision::kRemove) ++removed[leaf];
  }
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(al.al(i), arrivals[i]);
    int64_t published = al.al(i) + noise[i];
    int64_t attached = arrivals[i] - removed[i];
    // Attached records + positive-noise dummies == published when noise
    // fully satisfied; otherwise published < 0 and leaf is prunable.
    if (noise[i] >= 0) {
      EXPECT_EQ(published, attached + noise[i]);
    } else {
      EXPECT_EQ(removed[i],
                std::min<int64_t>(arrivals[i], -noise[i]));
    }
  }
}

// ---------------------------------------------------------- OverflowArrays

TEST(OverflowTest, InsertThenPadFillsEverySlot) {
  crypto::SecureRandom rng(3);
  OverflowArrays ovf(4, 3);
  EXPECT_TRUE(ovf.Insert(1, Bytes{1, 2, 3}, &rng).ok());
  EXPECT_TRUE(ovf.Insert(1, Bytes{4, 5}, &rng).ok());
  EXPECT_EQ(ovf.used(1), 2u);
  int dummy_count = 0;
  ASSERT_TRUE(ovf
                  .PadWithDummies([&] {
                    ++dummy_count;
                    return Bytes{0xFF};
                  })
                  .ok());
  EXPECT_EQ(dummy_count, 4 * 3 - 2);
  for (size_t leaf = 0; leaf < 4; ++leaf) {
    for (const auto& slot : ovf.leaf(leaf)) EXPECT_FALSE(slot.empty());
  }
}

TEST(OverflowTest, FullLeafRejectsInsert) {
  crypto::SecureRandom rng(3);
  OverflowArrays ovf(2, 2);
  EXPECT_TRUE(ovf.Insert(0, Bytes{1}, &rng).ok());
  EXPECT_TRUE(ovf.Insert(0, Bytes{2}, &rng).ok());
  EXPECT_TRUE(ovf.Insert(0, Bytes{3}, &rng).IsResourceExhausted());
  EXPECT_FALSE(ovf.Insert(9, Bytes{1}, &rng).ok());  // out of range
}

TEST(OverflowTest, SerializeRoundTrip) {
  crypto::SecureRandom rng(3);
  OverflowArrays ovf(3, 2);
  (void)ovf.Insert(0, Bytes{9, 9}, &rng);
  ASSERT_TRUE(ovf.PadWithDummies([&] { return rng.RandomBytes(8); }).ok());
  Bytes bytes = ovf.Serialize();
  auto back = OverflowArrays::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_leaves(), 3u);
  EXPECT_EQ(back->slots_per_leaf(), 2u);
  for (size_t leaf = 0; leaf < 3; ++leaf) {
    EXPECT_EQ(back->leaf(leaf), ovf.leaf(leaf));
  }
  // Corruption.
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(OverflowArrays::Deserialize(bytes).ok());
}

TEST(OverflowTest, InsertPositionIsRandomized) {
  // Insert one record into a wide array many times: it should land in
  // different slots (no positional leak).
  std::set<size_t> positions;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    crypto::SecureRandom rng(seed);
    OverflowArrays ovf(1, 16);
    (void)ovf.Insert(0, Bytes{7}, &rng);
    for (size_t s = 0; s < 16; ++s) {
      if (!ovf.leaf(0)[s].empty()) positions.insert(s);
    }
  }
  EXPECT_GT(positions.size(), 4u);
}

// ------------------------------------------------------------ MatchingTable

TEST(MatchingTableTest, AddLookupAndDuplicates) {
  MatchingTable t;
  EXPECT_TRUE(t.Add(100, 7).ok());
  EXPECT_TRUE(t.Add(200, 9).ok());
  EXPECT_EQ(*t.Lookup(100), 7u);
  EXPECT_EQ(*t.Lookup(200), 9u);
  EXPECT_FALSE(t.Lookup(300).ok());
  EXPECT_FALSE(t.Add(100, 1).ok());  // duplicate tag
  EXPECT_EQ(t.size(), 2u);
}

TEST(MatchingTableTest, SerializeRoundTrip) {
  MatchingTable t;
  Xoshiro256 rng(6);
  for (int i = 0; i < 1000; ++i) {
    (void)t.Add(rng.Next(), static_cast<uint32_t>(rng.NextBounded(500)));
  }
  Bytes bytes = t.Serialize();
  auto back = MatchingTable::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), t.size());
  for (const auto& [tag, leaf] : t.entries()) {
    EXPECT_EQ(*back->Lookup(tag), leaf);
  }
}

}  // namespace
}  // namespace index
}  // namespace fresque
