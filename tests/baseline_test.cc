#include <gtest/gtest.h>

#include <vector>

#include "baseline/bucketization.h"
#include "baseline/ope.h"
#include "common/rng.h"

namespace fresque {
namespace baseline {
namespace {

// --------------------------------------------------------------------- OPE

TEST(OpeTest, PreservesOrderProperty) {
  auto ope = OpeScheme::Create(Bytes(16, 0x42), 10000);
  ASSERT_TRUE(ope.ok());
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t a = rng.NextBounded(10000);
    uint64_t b = rng.NextBounded(10000);
    auto ca = ope->Encrypt(a);
    auto cb = ope->Encrypt(b);
    ASSERT_TRUE(ca.ok() && cb.ok());
    if (a < b) {
      EXPECT_LT(*ca, *cb);
    } else if (a > b) {
      EXPECT_GT(*ca, *cb);
    } else {
      EXPECT_EQ(*ca, *cb);
    }
  }
}

TEST(OpeTest, DecryptInvertsEncrypt) {
  auto ope = OpeScheme::Create(Bytes(16, 0x42), 5000);
  ASSERT_TRUE(ope.ok());
  for (uint64_t v = 0; v < 5000; v += 37) {
    auto c = ope->Encrypt(v);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*ope->Decrypt(*c), v);
  }
  // Non-ciphertext values fail to decrypt.
  auto c0 = ope->Encrypt(0);
  EXPECT_FALSE(ope->Decrypt(*c0 + 1000000).ok());
}

TEST(OpeTest, KeyedDeterminism) {
  auto a1 = OpeScheme::Create(Bytes(16, 0x01), 1000);
  auto a2 = OpeScheme::Create(Bytes(16, 0x01), 1000);
  auto b = OpeScheme::Create(Bytes(16, 0x02), 1000);
  ASSERT_TRUE(a1.ok() && a2.ok() && b.ok());
  bool any_diff = false;
  for (uint64_t v = 0; v < 1000; v += 13) {
    EXPECT_EQ(*a1->Encrypt(v), *a2->Encrypt(v));
    if (*a1->Encrypt(v) != *b->Encrypt(v)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(OpeTest, RangeMapsToCiphertextInterval) {
  auto ope = OpeScheme::Create(Bytes(16, 0x42), 1000);
  ASSERT_TRUE(ope.ok());
  auto range = ope->EncryptRange(100, 200);
  ASSERT_TRUE(range.ok());
  // Every plaintext in [100, 200] encrypts into the interval; everything
  // outside encrypts outside.
  for (uint64_t v = 0; v < 1000; v += 7) {
    uint64_t c = *ope->Encrypt(v);
    bool inside = c >= range->first && c <= range->second;
    EXPECT_EQ(inside, v >= 100 && v <= 200) << v;
  }
  EXPECT_FALSE(ope->EncryptRange(5, 2).ok());
}

TEST(OpeTest, RejectsBadParameters) {
  EXPECT_FALSE(OpeScheme::Create(Bytes(16, 1), 0).ok());
  EXPECT_FALSE(OpeScheme::Create(Bytes(16, 1), 100, 1).ok());
  auto ope = OpeScheme::Create(Bytes(16, 1), 100);
  EXPECT_FALSE(ope->Encrypt(100).ok());  // outside domain
}

// ------------------------------------------------------------ Bucketization

TEST(BucketizationTest, TagsAreStablePerBucket) {
  auto b = Bucketization::Create(Bytes(16, 0x11), 0, 100, 10);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b->TagOf(5), *b->TagOf(9.9));    // same bucket [0,10)
  EXPECT_NE(*b->TagOf(5), *b->TagOf(10.1));   // different bucket
  EXPECT_FALSE(b->TagOf(-1).ok());
  EXPECT_FALSE(b->TagOf(100).ok());
}

TEST(BucketizationTest, RangeCoversExactlyIntersectingBuckets) {
  auto b = Bucketization::Create(Bytes(16, 0x11), 0, 100, 10);
  ASSERT_TRUE(b.ok());
  auto tags = b->TagsForRange(15, 34.9);  // buckets 1, 2, 3
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ(tags->size(), 3u);
  EXPECT_EQ((*tags)[0], *b->TagOf(15));
  EXPECT_EQ((*tags)[2], *b->TagOf(34));
  // Point query: one bucket.
  EXPECT_EQ(b->TagsForRange(55, 55)->size(), 1u);
  // Whole domain.
  EXPECT_EQ(b->TagsForRange(0, 99.9)->size(), 10u);
}

TEST(BucketizationTest, TagsAreUnlinkableToOrder) {
  // Random tags should not be monotone in the bucket index (unlike OPE).
  auto b = Bucketization::Create(Bytes(16, 0x33), 0, 1000, 100);
  ASSERT_TRUE(b.ok());
  auto tags = b->TagsForRange(0, 999.9);
  ASSERT_TRUE(tags.ok());
  int inversions = 0;
  for (size_t i = 1; i < tags->size(); ++i) {
    if ((*tags)[i] < (*tags)[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 10);  // far from sorted
}

TEST(BucketizationTest, OverfetchShrinksWithWiderQueries) {
  auto b = Bucketization::Create(Bytes(16, 0x11), 0, 100, 10);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->OverfetchFactor(1), b->OverfetchFactor(50));
  EXPECT_NEAR(b->OverfetchFactor(1e9), 1.0, 1e-6);
}

TEST(BucketizationTest, RejectsBadParameters) {
  EXPECT_FALSE(Bucketization::Create(Bytes(16, 1), 10, 10, 5).ok());
  EXPECT_FALSE(Bucketization::Create(Bytes(16, 1), 0, 10, 0).ok());
}

}  // namespace
}  // namespace baseline
}  // namespace fresque
