#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "crypto/chacha20.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/message.h"
#include "net/node.h"
#include "net/payloads.h"

namespace fresque {
namespace net {
namespace {

TEST(MessageTest, SerializeRoundTripAllTypes) {
  for (int t = 0; t <= static_cast<int>(MessageType::kPublicationAck); ++t) {
    Message m;
    m.type = static_cast<MessageType>(t);
    m.pn = 42;
    m.leaf = 0xDEADBEEFCAFEULL;
    m.dummy = (t % 2) == 0;
    m.payload = {1, 2, 3, 4, 5};
    auto back = Message::Deserialize(m.Serialize());
    ASSERT_TRUE(back.ok()) << "type " << t;
    EXPECT_EQ(back->type, m.type);
    EXPECT_EQ(back->pn, m.pn);
    EXPECT_EQ(back->leaf, m.leaf);
    EXPECT_EQ(back->dummy, m.dummy);
    EXPECT_EQ(back->payload, m.payload);
  }
}

TEST(MessageTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Message::Deserialize({}).ok());
  EXPECT_FALSE(Message::Deserialize({0xFF, 0xFF}).ok());
  Message m;
  m.type = MessageType::kRawLine;
  Bytes good = m.Serialize();
  good[0] = 200;  // unknown type id
  EXPECT_FALSE(Message::Deserialize(good).ok());
}

TEST(MessageTest, EveryTypeHasName) {
  for (int t = 0; t <= static_cast<int>(MessageType::kPublicationAck); ++t) {
    EXPECT_STRNE(MessageTypeToString(static_cast<MessageType>(t)), "?");
  }
}

TEST(NodeTest, ProcessesFramesInOrder) {
  auto inbox = MakeMailbox(16);
  std::vector<uint64_t> seen;
  Node node("t", inbox, [&](Message&& m) {
    if (m.type == MessageType::kShutdown) return false;
    seen.push_back(m.pn);
    return true;
  });
  node.Start();
  for (uint64_t i = 0; i < 10; ++i) {
    Message m;
    m.type = MessageType::kRawLine;
    m.pn = i;
    inbox->Push(std::move(m));
  }
  Message stop;
  stop.type = MessageType::kShutdown;
  inbox->Push(std::move(stop));
  node.Join();
  ASSERT_EQ(seen.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(node.frames_processed(), 11u);
}

TEST(NodeTest, StopClosesInboxAndDrains) {
  auto inbox = MakeMailbox(16);
  std::atomic<int> handled{0};
  Node node("t", inbox, [&](Message&&) {
    ++handled;
    return true;
  });
  node.Start();
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.type = MessageType::kRawLine;
    inbox->Push(std::move(m));
  }
  node.Stop();
  node.Join();
  EXPECT_EQ(handled.load(), 5);  // drained before exiting
}

TEST(NodeTest, DestructorJoinsCleanly) {
  auto inbox = MakeMailbox(4);
  { Node node("t", inbox, [](Message&&) { return true; }); }
  // Never started: destructor must not hang or crash.
  auto inbox2 = MakeMailbox(4);
  {
    Node node("t2", inbox2, [](Message&&) { return true; });
    node.Start();
  }  // destructor stops + joins
  SUCCEED();
}

TEST(PayloadsTest, TemplateRoundTrip) {
  auto binning = index::DomainBinning::Create(0, 100, 1);
  crypto::SecureRandom rng(1);
  auto tmpl = index::IndexTemplate::Create(std::move(binning).ValueOrDie(),
                                           8, 1.0, &rng);
  ASSERT_TRUE(tmpl.ok());
  auto back = DecodeTemplate(EncodeTemplate(tmpl->noise_index()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->leaf_counts(), tmpl->noise_index().leaf_counts());
}

TEST(PayloadsTest, AlSnapshotRoundTrip) {
  std::vector<int64_t> al = {0, -3, 17, 1LL << 40, -9};
  auto back = DecodeAlSnapshot(EncodeAlSnapshot(al));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, al);
  EXPECT_FALSE(DecodeAlSnapshot({1, 2}).ok());
}

TEST(PayloadsTest, IndexPublicationRoundTrip) {
  auto binning = index::DomainBinning::Create(0, 50, 1);
  crypto::SecureRandom rng(2);
  auto tmpl = index::IndexTemplate::Create(std::move(binning).ValueOrDie(),
                                           4, 1.0, &rng);
  index::OverflowArrays ovf(50, 2);
  (void)ovf.Insert(3, Bytes{1, 2, 3}, &rng);
  ASSERT_TRUE(ovf.PadWithDummies([&] { return rng.RandomBytes(4); }).ok());
  IndexPublication pub(tmpl->noise_index(), std::move(ovf));
  auto bytes = EncodeIndexPublication(pub);
  auto back = DecodeIndexPublication(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->index.leaf_counts(), pub.index.leaf_counts());
  EXPECT_EQ(back->overflow.num_leaves(), 50u);
  EXPECT_FALSE(DecodeIndexPublication({0}).ok());
}

TEST(PayloadsTest, MatchingTableRoundTrip) {
  index::MatchingTable t;
  (void)t.Add(5, 1);
  (void)t.Add(6, 2);
  auto back = DecodeMatchingTable(EncodeMatchingTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(*back->Lookup(6), 2u);
}

}  // namespace
}  // namespace net
}  // namespace fresque
