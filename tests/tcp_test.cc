#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/tcp.h"

namespace fresque {
namespace net {
namespace {

TEST(TcpTest, FramedMessagesSurviveTheWire) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);

  std::vector<Message> received;
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 5; ++i) {
      auto m = conn->Receive();
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      received.push_back(std::move(*m));
    }
  });

  auto conn = TcpConnect(listener->port());
  ASSERT_TRUE(conn.ok());
  for (uint64_t i = 0; i < 5; ++i) {
    Message m;
    m.type = MessageType::kCloudRecord;
    m.pn = i;
    m.leaf = i * 10;
    m.payload = Bytes(i + 1, static_cast<uint8_t>(i));
    ASSERT_TRUE(conn->Send(m).ok());
  }
  server.join();

  ASSERT_EQ(received.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(received[i].pn, i);
    EXPECT_EQ(received[i].leaf, i * 10);
    EXPECT_EQ(received[i].payload.size(), i + 1);
  }
}

TEST(TcpTest, PeerCloseSurfacesAsCancelled) {
  auto listener = TcpListener::Bind();
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    conn->Close();
  });
  auto conn = TcpConnect(listener->port());
  ASSERT_TRUE(conn.ok());
  server.join();
  auto m = conn->Receive();
  EXPECT_FALSE(m.ok());
}

TEST(TcpTest, SendAfterCloseFails) {
  TcpConnection conn;  // never connected
  Message m;
  EXPECT_FALSE(conn.Send(m).ok());
  EXPECT_FALSE(conn.Receive().ok());
}

TEST(TcpTest, HopMeasurementReturnsPlausibleCost) {
  auto batched = MeasureTcpHopNanos(20000, 64, /*nodelay=*/false);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  // Localhost framed message: somewhere between 100ns (impossible to go
  // much lower with two syscalls amortized) and 1ms.
  EXPECT_GT(*batched, 100.0);
  EXPECT_LT(*batched, 1e6);
  EXPECT_FALSE(MeasureTcpHopNanos(0, 64, false).ok());
}

}  // namespace
}  // namespace net
}  // namespace fresque
