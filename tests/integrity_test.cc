#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "index/overflow.h"
#include "net/payloads.h"
#include "record/dataset.h"

namespace fresque {
namespace {

TEST(PublicationIntegrityTest, TagVerifiesAndDetectsTampering) {
  auto binning = index::DomainBinning::Create(0, 50, 1);
  crypto::SecureRandom rng(1);
  auto tmpl = index::IndexTemplate::Create(*binning, 4, 1.0, &rng);
  index::OverflowArrays ovf(50, 1);
  net::IndexPublication pub(tmpl->noise_index(), std::move(ovf));

  Bytes key(32, 0x10);
  pub.integrity_tag = net::ComputeIndexPublicationTag(pub, key);
  Bytes payload = net::EncodeIndexPublication(pub);

  EXPECT_TRUE(net::VerifyIndexPublicationPayload(payload, key).ok());
  // Wrong key.
  EXPECT_TRUE(net::VerifyIndexPublicationPayload(payload, Bytes(32, 0x11))
                  .IsCorruption());
  // Flipped content byte (inside the index segment).
  Bytes tampered = payload;
  tampered[16] ^= 0x01;
  Status st = net::VerifyIndexPublicationPayload(tampered, key);
  EXPECT_FALSE(st.ok());
  // Untagged publication is reported as unverifiable, not valid.
  net::IndexPublication untagged(tmpl->noise_index(),
                                 index::OverflowArrays(50, 1));
  Bytes untagged_payload = net::EncodeIndexPublication(untagged);
  EXPECT_TRUE(net::VerifyIndexPublicationPayload(untagged_payload, key)
                  .IsFailedPrecondition());
}

TEST(PublicationIntegrityTest, TagRoundTripsThroughEncodeDecode) {
  auto binning = index::DomainBinning::Create(0, 10, 1);
  crypto::SecureRandom rng(2);
  auto tmpl = index::IndexTemplate::Create(*binning, 4, 1.0, &rng);
  net::IndexPublication pub(tmpl->noise_index(),
                            index::OverflowArrays(10, 1));
  pub.integrity_tag = Bytes(32, 0xAB);
  auto back = net::DecodeIndexPublication(net::EncodeIndexPublication(pub));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->integrity_tag, pub.integrity_tag);
}

TEST(PublicationIntegrityTest, EndToEndFresquePublicationVerifies) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x30));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 7;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();

  client::Client good(keys, &spec->parser->schema());
  EXPECT_TRUE(good.VerifyPublication(server, 0).ok());
  // Publication 1 was opened but never published: no evidence.
  EXPECT_TRUE(good.VerifyPublication(server, 1).IsNotFound());
  // A client keyed differently rejects the publication.
  client::Client other(crypto::KeyManager(Bytes(32, 0x31)),
                       &spec->parser->schema());
  EXPECT_TRUE(other.VerifyPublication(server, 0).IsCorruption());
}

}  // namespace
}  // namespace fresque
