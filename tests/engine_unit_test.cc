#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "crypto/chacha20.h"
#include "engine/dummy_schedule.h"
#include "engine/randomer.h"
#include "net/message.h"

namespace fresque {
namespace engine {
namespace {

net::Message Tagged(uint64_t id) {
  net::Message m;
  m.type = net::MessageType::kTaggedRecord;
  m.pn = id;
  return m;
}

// ---------------------------------------------------------------- Randomer

TEST(RandomerTest, HoldsUpToCapacityWithoutReleasing) {
  crypto::SecureRandom rng(1);
  Randomer r(5, &rng);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(r.Push(Tagged(i)).has_value()) << i;
  }
  EXPECT_EQ(r.size(), 5u);
}

TEST(RandomerTest, TriggerReleasesExactlyOnePerOverflowingPush) {
  crypto::SecureRandom rng(2);
  Randomer r(3, &rng);
  for (uint64_t i = 0; i < 3; ++i) r.Push(Tagged(i));
  for (uint64_t i = 3; i < 100; ++i) {
    auto out = r.Push(Tagged(i));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(r.size(), 3u);
  }
}

TEST(RandomerTest, FlushReturnsEverythingExactlyOnce) {
  crypto::SecureRandom rng(3);
  Randomer r(100, &rng);
  std::vector<uint64_t> released;
  for (uint64_t i = 0; i < 250; ++i) {
    auto out = r.Push(Tagged(i));
    if (out) released.push_back(out->pn);
  }
  for (auto& m : r.Flush()) released.push_back(m.pn);
  EXPECT_EQ(r.size(), 0u);
  std::sort(released.begin(), released.end());
  ASSERT_EQ(released.size(), 250u);
  for (uint64_t i = 0; i < 250; ++i) EXPECT_EQ(released[i], i);
}

TEST(RandomerTest, EvictionIsUniformAcrossResidents) {
  // With capacity c, each resident (including the newcomer) should be the
  // eviction victim with probability ~1/(c+1).
  constexpr size_t kCap = 9;
  constexpr int kTrials = 20000;
  std::map<uint64_t, int> victim_counts;
  crypto::SecureRandom rng(4);
  for (int t = 0; t < kTrials; ++t) {
    Randomer r(kCap, &rng);
    for (uint64_t i = 0; i < kCap; ++i) r.Push(Tagged(i));
    auto out = r.Push(Tagged(kCap));  // 10 residents, one leaves
    ASSERT_TRUE(out.has_value());
    ++victim_counts[out->pn];
  }
  for (uint64_t id = 0; id <= kCap; ++id) {
    EXPECT_NEAR(victim_counts[id], kTrials / (kCap + 1),
                kTrials / (kCap + 1) * 0.2)
        << "id " << id;
  }
}

TEST(RandomerTest, FlushOrderIsShuffled) {
  crypto::SecureRandom rng(5);
  Randomer r(64, &rng);
  for (uint64_t i = 0; i < 64; ++i) r.Push(Tagged(i));
  auto out = r.Flush();
  ASSERT_EQ(out.size(), 64u);
  int in_place = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if (out[i].pn == i) ++in_place;
  }
  // A uniform shuffle leaves ~1 fixed point on average.
  EXPECT_LT(in_place, 10);
}

TEST(RandomerTest, ZeroCapacityClampsToOne) {
  crypto::SecureRandom rng(6);
  Randomer r(0, &rng);
  EXPECT_EQ(r.capacity(), 1u);
  EXPECT_FALSE(r.Push(Tagged(1)).has_value());
  EXPECT_TRUE(r.Push(Tagged(2)).has_value());
}

// ----------------------------------------------------------- DummySchedule

TEST(DummyScheduleTest, OneDummyPerPositiveNoiseUnit) {
  crypto::SecureRandom rng(7);
  DummySchedule sched({3, -2, 0, 1}, &rng);
  EXPECT_EQ(sched.total(), 4u);  // 3 + 0 + 0 + 1
}

TEST(DummyScheduleTest, DueIsMonotoneAndComplete) {
  crypto::SecureRandom rng(8);
  std::vector<int64_t> noise(100);
  for (auto& n : noise) n = 2;
  DummySchedule sched(noise, &rng);
  ASSERT_EQ(sched.total(), 200u);

  size_t released = 0;
  for (double p = 0.1; p <= 1.01; p += 0.1) {
    auto due = sched.Due(p);
    released += due.size();
    EXPECT_EQ(sched.released(), released);
  }
  EXPECT_EQ(released, 200u);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.Due(1.0).empty());  // nothing left
}

TEST(DummyScheduleTest, ReleaseTimesAreRoughlyUniform) {
  crypto::SecureRandom rng(9);
  std::vector<int64_t> noise(1000, 10);  // 10k dummies
  DummySchedule sched(noise, &rng);
  // Count how many release in each decile.
  size_t prev = 0;
  for (double p = 0.1; p <= 1.001; p += 0.1) {
    (void)sched.Due(p);
    size_t in_decile = sched.released() - prev;
    prev = sched.released();
    EXPECT_NEAR(in_decile, 1000, 150);
  }
}

TEST(DummyScheduleTest, LeavesMatchNoiseMultiplicity) {
  crypto::SecureRandom rng(10);
  DummySchedule sched({2, 0, 3}, &rng);
  auto all = sched.Due(1.0);
  std::map<uint32_t, int> per_leaf;
  for (uint32_t leaf : all) ++per_leaf[leaf];
  EXPECT_EQ(per_leaf[0], 2);
  EXPECT_EQ(per_leaf.count(1), 0u);
  EXPECT_EQ(per_leaf[2], 3);
}

TEST(DummyScheduleTest, EmptyNoiseNoDummies) {
  crypto::SecureRandom rng(11);
  DummySchedule sched({-5, 0, -1}, &rng);
  EXPECT_EQ(sched.total(), 0u);
  EXPECT_TRUE(sched.Due(1.0).empty());
}

}  // namespace
}  // namespace engine
}  // namespace fresque
