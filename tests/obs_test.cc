// Unit tests for the live observability plane (DESIGN.md §16): the
// streaming quantile sketch, the crash-safe flight recorder, the embedded
// HTTP server, the background sampler, and the ObsServer endpoint wiring.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "net/tcp.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/quantiles.h"
#include "obs/sampler.h"
#include "obs/server.h"
#include "telemetry/metrics.h"

namespace fresque {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// StreamingQuantiles

TEST(StreamingQuantilesTest, EmptySketchAnswersZero) {
  StreamingQuantiles sk;
  EXPECT_EQ(sk.Count(), 0u);
  EXPECT_EQ(sk.Query(0.5), 0u);
  EXPECT_TRUE(sk.QueryMany({0.5, 0.99}).empty() ||
              sk.QueryMany({0.5, 0.99}) ==
                  std::vector<uint64_t>({0, 0}));
}

TEST(StreamingQuantilesTest, SmallInsertIsExact) {
  // Fewer samples than one stripe buffer: nothing has been compacted, so
  // the answer is the exact order statistic.
  StreamingQuantiles sk;
  for (uint64_t v = 1; v <= 100; ++v) sk.Insert(v);
  EXPECT_EQ(sk.Count(), 100u);
  EXPECT_EQ(sk.TotalWeight(), 100u);
  uint64_t p50 = sk.Query(0.50);
  EXPECT_GE(p50, 45u);
  EXPECT_LE(p50, 55u);
  EXPECT_EQ(sk.Query(1.0), 100u);
}

TEST(StreamingQuantilesTest, LargeStreamQuantilesWithinKllError) {
  StreamingQuantiles sk;
  const uint64_t n = 200000;
  std::vector<uint64_t> vals(n);
  for (uint64_t i = 0; i < n; ++i) vals[i] = i + 1;
  std::mt19937_64 rng(42);
  std::shuffle(vals.begin(), vals.end(), rng);
  for (uint64_t v : vals) sk.Insert(v);

  EXPECT_EQ(sk.Count(), n);
  EXPECT_EQ(sk.TotalWeight(), n);  // compaction conserves weight exactly

  auto qs = sk.QueryMany({0.50, 0.95, 0.99});
  ASSERT_EQ(qs.size(), 3u);
  // KLL with k=256 lands well within 2% rank error at this scale; assert
  // a loose 5% so the test never flakes on compaction randomness.
  EXPECT_NEAR(static_cast<double>(qs[0]), 0.50 * n, 0.05 * n);
  EXPECT_NEAR(static_cast<double>(qs[1]), 0.95 * n, 0.05 * n);
  EXPECT_NEAR(static_cast<double>(qs[2]), 0.99 * n, 0.05 * n);
}

TEST(StreamingQuantilesTest, ConcurrentInsertConservesEverySample) {
  StreamingQuantiles sk;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sk, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        sk.Insert(static_cast<uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sk.Count(), kThreads * kPerThread);
  EXPECT_EQ(sk.TotalWeight(), kThreads * kPerThread);
  // Uniform 1..400k stream: the median estimate must land mid-range.
  uint64_t p50 = sk.Query(0.5);
  EXPECT_GT(p50, kThreads * kPerThread * 40 / 100);
  EXPECT_LT(p50, kThreads * kPerThread * 60 / 100);
}

TEST(StreamingQuantilesTest, ResetForTestEmptiesTheSketch) {
  StreamingQuantiles sk;
  for (uint64_t v = 0; v < 5000; ++v) sk.Insert(v);
  sk.ResetForTest();
  EXPECT_EQ(sk.Count(), 0u);
  EXPECT_EQ(sk.TotalWeight(), 0u);
  EXPECT_EQ(sk.Query(0.99), 0u);
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, RecordsInOrderWithMonotonicSeq) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kLifecycle, "first", 1, 2, 3);
  rec.Record(FlightCategory::kPublication, "second", 4);
  auto events = rec.SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_STREQ(events[0].msg, "first");
  EXPECT_EQ(events[0].a0, 1);
  EXPECT_EQ(events[0].a2, 3);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].cat, FlightCategory::kPublication);
  EXPECT_GE(events[1].ns, events[0].ns);
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestEvents) {
  FlightRecorder rec(64);
  for (int i = 0; i < 200; ++i) {
    rec.Record(FlightCategory::kShed, "evt", i);
  }
  EXPECT_EQ(rec.Recorded(), 200u);
  EXPECT_EQ(rec.Dropped(), 200u - 64u);
  auto events = rec.SnapshotEvents();
  ASSERT_EQ(events.size(), 64u);
  // Oldest surviving event is 200-64; snapshot is oldest-first.
  EXPECT_EQ(events.front().a0, 200 - 64);
  EXPECT_EQ(events.back().a0, 199);
}

TEST(FlightRecorderTest, DumpJsonIsWellFormed) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kRecovery, "quote\"and\\slash", 7, 8, 9);
  std::string json = rec.DumpJson();
  EXPECT_TRUE(telemetry::ValidateJsonSyntax(json).ok()) << json;
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFdIsReadableText) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kDurability, "wal segment opened", 17, 1, 0);
  char path[] = "/tmp/fresque_flight_test_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  rec.DumpTo(fd);
  ::lseek(fd, 0, SEEK_SET);
  char buf[4096];
  ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  std::string text(buf);
  ::close(fd);
  ::unlink(path);
  EXPECT_NE(text.find("wal segment opened"), std::string::npos);
  EXPECT_NE(text.find("args=17,1,0"), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordersNeverTearEvents) {
  FlightRecorder rec(128);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&rec, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& e : rec.SnapshotEvents()) {
        // A torn slot would mix the payloads of two writers; each writer
        // stamps all three args with its own value.
        ASSERT_EQ(e.a0, e.a1);
        ASSERT_EQ(e.a0 + 1, e.a2);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t v = static_cast<int64_t>(t) * kPerThread + i;
        rec.Record(FlightCategory::kObs, "w", v, v, v + 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(rec.Recorded(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// ParseObsAddr

TEST(ParseObsAddrTest, AcceptsTheDocumentedShapes) {
  auto p = ParseObsAddr("9464");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->first, "127.0.0.1");
  EXPECT_EQ(p->second, 9464);

  p = ParseObsAddr("0.0.0.0:8080");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->first, "0.0.0.0");
  EXPECT_EQ(p->second, 8080);

  p = ParseObsAddr("localhost:0");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->first, "localhost");
  EXPECT_EQ(p->second, 0);

  p = ParseObsAddr("localhost");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->second, 0);  // bare host: ephemeral
}

TEST(ParseObsAddrTest, RejectsGarbage) {
  EXPECT_FALSE(ParseObsAddr("").ok());
  EXPECT_FALSE(ParseObsAddr("host:port").ok());
  EXPECT_FALSE(ParseObsAddr("127.0.0.1:99999").ok());
  EXPECT_FALSE(ParseObsAddr("127.0.0.1:").ok());
}

// ---------------------------------------------------------------------------
// HttpServer — raw-socket client helper.

std::string HttpRequest(uint16_t port, const std::string& raw) {
  auto conn = net::TcpConnect(port);
  if (!conn.ok()) return "";
  if (!conn->WriteRaw(reinterpret_cast<const uint8_t*>(raw.data()),
                      raw.size())
           .ok()) {
    return "";
  }
  std::string response;
  uint8_t buf[4096];
  for (;;) {
    auto n = conn->ReadSome(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), *n);
  }
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: localhost\r\n"
                               "Connection: close\r\n\r\n");
}

TEST(HttpServerTest, ServesRegisteredRoutes) {
  HttpServer server;
  server.Handle("/hello", [](const std::string&) {
    HttpResponse r;
    r.body = "world";
    return r;
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string resp = HttpGet(server.port(), "/hello");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("world"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // Query strings are stripped before route match.
  EXPECT_NE(HttpGet(server.port(), "/hello?x=1").find("HTTP/1.1 200"),
            std::string::npos);

  std::string post = HttpRequest(
      server.port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  std::string head = HttpRequest(
      server.port(),
      "HEAD /hello HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(head.find("world"), std::string::npos);  // no body on HEAD

  std::string bad = HttpRequest(server.port(), "BOGUS\r\n\r\n");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);

  EXPECT_GE(server.requests(), 6u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Sampler

TEST(SamplerTest, NoteE2eSampleFeedsSloAndSketch) {
  ResetE2eStateForTest();
  telemetry::Registry::Global()->ResetForTest();

  SetSloE2eTargetNs(1000000);  // 1 ms
  SetE2eSamplingActive(true);
  NoteE2eSample(500000);       // under target
  NoteE2eSample(2000000);      // violation
  NoteE2eSample(3000000);      // violation

  auto* reg = telemetry::Registry::Global();
  EXPECT_EQ(reg->GetCounter("slo.e2e_samples")->Value(), 3u);
  EXPECT_EQ(reg->GetCounter("slo.e2e_violations")->Value(), 2u);
  EXPECT_EQ(GlobalE2eSketch()->Count(), 3u);
  EXPECT_GT(LastE2eSampleNanos(), 0);

  // Dormant mode: freshness still stamps, sketch does not grow.
  SetE2eSamplingActive(false);
  NoteE2eSample(700000);
  EXPECT_EQ(GlobalE2eSketch()->Count(), 3u);
  EXPECT_EQ(reg->GetCounter("slo.e2e_samples")->Value(), 4u);

  ResetE2eStateForTest();
}

TEST(SamplerTest, FoldExportsQuantileGauges) {
  ResetE2eStateForTest();
  telemetry::Registry::Global()->ResetForTest();
  SetE2eSamplingActive(true);
  for (uint64_t i = 1; i <= 1000; ++i) NoteE2eSample(static_cast<int64_t>(i));

  std::atomic<int> fold_calls{0};
  ObsSampler sampler(3600 * 1000, [&fold_calls] { ++fold_calls; });
  sampler.FoldOnce();
  EXPECT_EQ(fold_calls.load(), 1);

  auto* reg = telemetry::Registry::Global();
  int64_t p50 = reg->GetGauge("pipeline.e2e_p50_ns")->Value();
  int64_t p99 = reg->GetGauge("pipeline.e2e_p99_ns")->Value();
  EXPECT_GT(p50, 400);
  EXPECT_LT(p50, 600);
  EXPECT_GE(p99, p50);
  EXPECT_GE(reg->GetGauge("ingest.lag_ms")->Value(), 0);

  SetE2eSamplingActive(false);
  ResetE2eStateForTest();
}

TEST(SamplerTest, BackgroundThreadFoldsPeriodically) {
  ResetE2eStateForTest();
  ObsSampler sampler(1);  // 1 ms cadence
  sampler.Start();
  for (int spins = 0; sampler.folds() < 3 && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_GE(sampler.folds(), 3u);
  ResetE2eStateForTest();
}

// ---------------------------------------------------------------------------
// ObsServer — endpoint wiring end to end.

TEST(ObsServerTest, ServesAllFiveEndpoints) {
  ResetE2eStateForTest();
  telemetry::Registry::Global()->ResetForTest();
  telemetry::Registry::Global()->GetCounter("query.obs_test_marker")->Add(7);

  std::atomic<bool> ready{false};
  ObsServerOptions opts;
  opts.host = "127.0.0.1";
  opts.port = 0;
  opts.sample_interval_ms = 3600 * 1000;  // fold manually via scrape
  opts.ready_source = [&ready] { return ready.load(); };
  opts.status_source = [] {
    StatusSnapshot s;
    s.nodes.push_back({"cn0", 3, 64, 17, 1234});
    s.shards.push_back({0, 900, 2, 8192, 41, 9, 4, 870});
    s.shards.push_back({1, 100, 0, 8192, 7, 9, 4, 95});
    s.view_epoch = 9;
    s.publications = 4;
    s.open_publication = 5;
    s.total_records = 4321;
    return s;
  };
  ObsServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(E2eSamplingActive());  // Start switches sampling on
  const uint16_t port = server.port();

  std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("fresque_query_obs_test_marker 7"),
            std::string::npos)
      << metrics;

  EXPECT_NE(HttpGet(port, "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/readyz").find("HTTP/1.1 503"),
            std::string::npos);
  ready.store(true);
  EXPECT_NE(HttpGet(port, "/readyz").find("HTTP/1.1 200"),
            std::string::npos);

  std::string statusz = HttpGet(port, "/statusz");
  const size_t body_at = statusz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = statusz.substr(body_at + 4);
  EXPECT_TRUE(telemetry::ValidateJsonSyntax(body).ok()) << body;
  EXPECT_NE(body.find("\"view_epoch\":9"), std::string::npos);
  EXPECT_NE(body.find("\"open_publication\":5"), std::string::npos);
  EXPECT_NE(body.find("\"cn0\""), std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\":3"), std::string::npos);
  // The shard table (DESIGN.md §17): one row per collector shard.
  EXPECT_NE(body.find("\"shards\":[{\"shard\":0,\"routed\":900"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"ingress_watermark\":7"), std::string::npos);

  std::string flightz = HttpGet(port, "/flightz");
  const size_t fbody_at = flightz.find("\r\n\r\n");
  ASSERT_NE(fbody_at, std::string::npos);
  EXPECT_TRUE(
      telemetry::ValidateJsonSyntax(flightz.substr(fbody_at + 4)).ok());

  EXPECT_GE(server.requests(), 6u);
  server.Stop();
  EXPECT_FALSE(E2eSamplingActive());  // Stop switches sampling off
  ResetE2eStateForTest();
}

}  // namespace
}  // namespace obs
}  // namespace fresque
