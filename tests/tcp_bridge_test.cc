#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "net/tcp_bridge.h"
#include "record/dataset.h"

namespace fresque {
namespace {

TEST(TcpBridgeTest, FramesCrossTheSocket) {
  auto sink = net::MakeMailbox(64);
  auto ingress = net::TcpIngress::Listen(sink);
  ASSERT_TRUE(ingress.ok());
  (*ingress)->Start();
  auto egress = net::TcpEgress::Connect((*ingress)->port());
  ASSERT_TRUE(egress.ok());

  for (uint64_t i = 0; i < 10; ++i) {
    net::Message m;
    m.type = net::MessageType::kCloudRecord;
    m.pn = i;
    m.payload = Bytes(8, static_cast<uint8_t>(i));
    ASSERT_TRUE((*egress)->mailbox()->Push(std::move(m)));
  }
  net::Message stop;
  stop.type = net::MessageType::kShutdown;
  (*egress)->mailbox()->Push(std::move(stop));
  (*ingress)->Join();

  for (uint64_t i = 0; i < 10; ++i) {
    auto m = sink->Pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pn, i);
  }
  auto last = sink->Pop();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->type, net::MessageType::kShutdown);
  EXPECT_TRUE((*egress)->first_error().ok());
  EXPECT_TRUE((*ingress)->first_error().ok());
}

TEST(TcpBridgeTest, CountsFramesDroppedBehindShutdown) {
  auto sink = net::MakeMailbox(128);
  auto ingress = net::TcpIngress::Listen(sink);
  ASSERT_TRUE(ingress.ok());
  (*ingress)->Start();
  auto egress = net::TcpEgress::Connect((*ingress)->port());
  ASSERT_TRUE(egress.ok());

  // 60 records, then kShutdown, then 39 more frames that can never be
  // delivered. One PushBatch inserts all 100 under a single lock
  // acquisition while the pump is parked in PopBatch, so the pump
  // observes them together: its first 64-frame pop holds the shutdown
  // (truncation remainder), the rest sit in the mailbox (drain path).
  std::vector<net::Message> frames(100);
  for (uint64_t i = 0; i < frames.size(); ++i) {
    frames[i].type = i == 60 ? net::MessageType::kShutdown
                             : net::MessageType::kCloudRecord;
    frames[i].pn = i;
  }
  ASSERT_EQ((*egress)->mailbox()->PushBatch(frames.data(), frames.size()),
            frames.size());
  (*ingress)->Join();
  (*egress)->Shutdown();  // joins the pump; the counter is final

  EXPECT_EQ((*egress)->dropped_after_shutdown(), 39u);
  // The peer saw exactly the frames ahead of (and including) kShutdown.
  for (uint64_t i = 0; i < 60; ++i) {
    auto m = sink->Pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->pn, i);
    EXPECT_EQ(m->type, net::MessageType::kCloudRecord);
  }
  auto last = sink->Pop();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->type, net::MessageType::kShutdown);
  EXPECT_TRUE((*egress)->first_error().ok());
  EXPECT_TRUE((*ingress)->first_error().ok());
}

TEST(TcpBridgeTest, CleanShutdownDropsNothing) {
  auto sink = net::MakeMailbox(64);
  auto ingress = net::TcpIngress::Listen(sink);
  ASSERT_TRUE(ingress.ok());
  (*ingress)->Start();
  auto egress = net::TcpEgress::Connect((*ingress)->port());
  ASSERT_TRUE(egress.ok());
  net::Message m;
  m.type = net::MessageType::kShutdown;
  ASSERT_TRUE((*egress)->mailbox()->Push(std::move(m)));
  (*ingress)->Join();
  (*egress)->Shutdown();
  EXPECT_EQ((*egress)->dropped_after_shutdown(), 0u);
}

// The headline use: a FRESQUE collector whose "cloud link" is a real TCP
// socket, as it would be in a two-process deployment.
TEST(TcpBridgeTest, FresquePipelineOverRealSocket) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  // cloud side: socket -> CloudNode inbox.
  auto ingress = net::TcpIngress::Listen(cloud_node.inbox());
  ASSERT_TRUE(ingress.ok());
  (*ingress)->Start();
  // collector side: mailbox -> socket.
  auto egress = net::TcpEgress::Connect((*ingress)->port());
  ASSERT_TRUE(egress.ok());

  crypto::KeyManager keys(Bytes(32, 0x21));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 77;
  engine::FresqueCollector collector(cfg, keys, (*egress)->mailbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 4);
  std::vector<record::Record> truth;
  for (int i = 0; i < 800; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok());
    truth.push_back(std::move(*rec));
    ASSERT_TRUE(collector.Ingest(line).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());  // merger sends kShutdown last
  (*ingress)->Join();                      // socket drained
  cloud_node.Shutdown();

  EXPECT_TRUE((*egress)->first_error().ok());
  EXPECT_TRUE((*ingress)->first_error().ok());
  EXPECT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();
  ASSERT_EQ(cloud_node.matching_stats().size(), 1u);

  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto acc = client.QueryWithGroundTruth(server, q, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_GE(acc->Recall(), 0.6);
}

}  // namespace
}  // namespace fresque
