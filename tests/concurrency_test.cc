// Concurrency-facing behaviour: querying the cloud while ingestion and
// publication are in full flight, and the multi-range client API.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace fresque {
namespace {

TEST(ConcurrencyTest, QueriesDuringIngestNeverFailOrCorrupt) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x81));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.delta = 0.51;  // small randomer buffer so records reach the cloud
  cfg.seed = 33;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  // A reader hammering the cloud while the collector streams.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> failures{0};
  std::thread reader([&] {
    client::Client client(keys, &spec->parser->schema());
    index::RangeQuery q{spec->domain_min, spec->domain_max};
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = client.Query(server, q);
      ++queries;
      if (!r.ok()) ++failures;
    }
  });

  auto gen = record::MakeGenerator(*spec, 11);
  for (int interval = 0; interval < 3; ++interval) {
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
    }
    ASSERT_TRUE(collector.Publish().ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());
  stop = true;
  reader.join();
  cloud_node.Shutdown();

  EXPECT_TRUE(cloud_node.first_error().ok());
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ConcurrencyTest, QueryMultiDeduplicatesOverlappingRanges) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x82));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 44;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 22);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();

  client::Client client(keys, &spec->parser->schema());
  double mid = spec->domain_min + 313 * 3600.0;
  index::RangeQuery whole{spec->domain_min, spec->domain_max};
  index::RangeQuery left{spec->domain_min, mid};
  index::RangeQuery right{mid - 50 * 3600.0, spec->domain_max};  // overlap

  auto single = client.Query(server, whole);
  auto multi = client.QueryMulti(server, {left, right});
  ASSERT_TRUE(single.ok() && multi.ok());
  // left ∪ right covers the whole domain with a 50-hour overlap: the
  // union must equal the single full query, duplicates removed.
  EXPECT_EQ(multi->size(), single->size());

  // Disjoint slivers: union is additive.
  index::RangeQuery a{spec->domain_min, spec->domain_min + 10 * 3600.0};
  index::RangeQuery b{spec->domain_min + 400 * 3600.0,
                      spec->domain_min + 420 * 3600.0};
  auto qa = client.Query(server, a);
  auto qb = client.Query(server, b);
  auto qab = client.QueryMulti(server, {a, b});
  ASSERT_TRUE(qa.ok() && qb.ok() && qab.ok());
  EXPECT_EQ(qab->size(), qa->size() + qb->size());
}

TEST(ConcurrencyTest, QueryMultiEmptyRangesReturnsEmpty) {
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  auto schema = record::Schema::Create(
      {{"v", record::ValueType::kInt64}}, "v");
  client::Client client(crypto::KeyManager(Bytes(32, 1)), &*schema);
  auto r = client.QueryMulti(server, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace fresque
