#include <gtest/gtest.h>

#include "record/dataset.h"
#include "sim/cost_model.h"
#include "sim/pipeline.h"

namespace fresque {
namespace sim {
namespace {

CostModel SimpleCosts() {
  CostModel cm;
  cm.dataset = "test";
  cm.parse_ns = 1000;
  cm.leaf_offset_ns = 10;
  cm.encrypt_ns = 2000;
  cm.encrypt_dummy_ns = 1500;
  cm.tree_walk_ns = 300;
  cm.tree_update_ns = 300;
  cm.table_add_ns = 100;
  cm.al_update_ns = 5;
  cm.randomer_push_ns = 100;
  cm.hop_ns = 50;
  cm.cloud_store_ns = 100;
  return cm;
}

TEST(MultiServerStationTest, SingleServerSerializes) {
  MultiServerStation s("x", 1);
  EXPECT_DOUBLE_EQ(s.Process(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Process(0.0, 1.0), 2.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(s.Process(5.0, 1.0), 6.0);  // idle gap respected
  EXPECT_DOUBLE_EQ(s.busy_seconds(), 3.0);
  EXPECT_EQ(s.processed(), 3u);
}

TEST(MultiServerStationTest, TwoServersOverlap) {
  MultiServerStation s("x", 2);
  EXPECT_DOUBLE_EQ(s.Process(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Process(0.0, 1.0), 1.0);  // second server
  EXPECT_DOUBLE_EQ(s.Process(0.0, 1.0), 2.0);  // back to first
}

TEST(PipelineTest, ClosedLoopThroughputIsBottleneckCapacity) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  auto r = SimulateNonParallelPp(cm, cfg);
  // Collector service = parse + walk + update + table + encrypt + hop.
  double service_ns = 1000 + 300 + 300 + 100 + 2000 + 50;
  EXPECT_NEAR(r.throughput_rps, 1e9 / service_ns, 1e9 / service_ns * 0.01);
  EXPECT_EQ(r.bottleneck, "collector");
}

TEST(PipelineTest, OfferedRateCapsThroughput) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 100000;
  cfg.offered_rate_rps = 1000;  // far below capacity
  auto r = SimulateFresque(cm, 4, cfg);
  EXPECT_NEAR(r.throughput_rps, 1000, 20);
}

TEST(PipelineTest, FresqueScalesWithComputingNodesThenPlateaus) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 300000;
  double prev = 0;
  for (size_t k = 1; k <= 64; k *= 2) {
    auto r = SimulateFresque(cm, k, cfg);
    EXPECT_GE(r.throughput_rps, prev * 0.999) << "k=" << k;
    prev = r.throughput_rps;
  }
  // Plateau: past the crossover, doubling k gains almost nothing.
  auto r32 = SimulateFresque(cm, 32, cfg);
  auto r64 = SimulateFresque(cm, 64, cfg);
  EXPECT_LT(r64.throughput_rps / r32.throughput_rps, 1.05);
  EXPECT_NE(r64.bottleneck, "computing-nodes");
}

TEST(PipelineTest, OrderingFresqueBeatsParallelBeatsSequential) {
  // Paper's ordering, checked under the paper-cluster cost profiles (the
  // regime Fig. 11 describes). With arbitrary synthetic costs the order
  // can differ at tiny k — that is a property of the cost regime, not a
  // bug (parallel PP pipelines its dispatcher parse against the workers).
  SimConfig cfg;
  cfg.num_records = 300000;
  for (const auto& cm : {PaperProfileNasa(), PaperProfileGowalla()}) {
    for (size_t k : {2, 4, 8, 12}) {
      auto f = SimulateFresque(cm, k, cfg);
      auto p = SimulateParallelPp(cm, k, cfg);
      auto s = SimulateNonParallelPp(cm, cfg);
      EXPECT_GT(f.throughput_rps, p.throughput_rps)
          << cm.dataset << " k=" << k;
      EXPECT_GT(p.throughput_rps, s.throughput_rps)
          << cm.dataset << " k=" << k;
    }
  }
}

TEST(PipelineTest, DummyLoadReducesThroughputSlightly) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  auto clean = SimulateFresque(cm, 2, cfg);
  cfg.dummies_per_real = 0.5;
  auto loaded = SimulateFresque(cm, 2, cfg);
  EXPECT_LT(loaded.throughput_rps, clean.throughput_rps);
  EXPECT_GT(loaded.throughput_rps, clean.throughput_rps * 0.5);
}

TEST(PipelineTest, UtilizationIdentifiesBottleneck) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 100000;
  auto r = SimulateFresque(cm, 1, cfg);
  EXPECT_EQ(r.bottleneck, "computing-nodes");
  EXPECT_NEAR(r.utilization.at("computing-nodes"), 1.0, 0.01);
  EXPECT_LT(r.utilization.at("checking-node"), 0.5);
}

TEST(PaperProfileTest, MatchesPaperAnchors) {
  SimConfig cfg;
  cfg.num_records = 500000;
  // Non-parallel PINED-RQ++ anchors (§7.2a): ~3,159 (NASA) and ~13,223
  // (Gowalla) records/s.
  auto nasa = SimulateNonParallelPp(PaperProfileNasa(), cfg);
  EXPECT_NEAR(nasa.throughput_rps, 3159, 3159 * 0.15);
  auto gow = SimulateNonParallelPp(PaperProfileGowalla(), cfg);
  EXPECT_NEAR(gow.throughput_rps, 13223, 13223 * 0.15);
  // FRESQUE NASA @12 ~ 142k (Fig 9) within 25%.
  auto f12 = SimulateFresque(PaperProfileNasa(), 12, cfg);
  EXPECT_NEAR(f12.throughput_rps, 142000, 142000 * 0.25);
  // Gowalla plateau: peak within 8->12 changes by < 5%.
  auto g8 = SimulateFresque(PaperProfileGowalla(), 8, cfg);
  auto g12 = SimulateFresque(PaperProfileGowalla(), 12, cfg);
  EXPECT_LT(g12.throughput_rps / g8.throughput_rps, 1.05);
}

TEST(PipelineTest, LatencyTrackedUnderOfferedLoad) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 100000;
  cfg.offered_rate_rps = 100000;  // ~31% of single-CN capacity
  auto light = SimulateFresque(cm, 4, cfg);
  EXPECT_GT(light.mean_latency_seconds, 0);
  EXPECT_GE(light.p99_latency_seconds, light.mean_latency_seconds);
  // Near saturation, queueing pushes latency up by orders of magnitude.
  cfg.offered_rate_rps = 1240000;  // ~95% of 4-CN capacity
  auto heavy = SimulateFresque(cm, 4, cfg);
  EXPECT_GT(heavy.mean_latency_seconds, light.mean_latency_seconds);
}

TEST(PipelineTest, PoissonArrivalsQueueMoreThanDeterministic) {
  auto cm = SimpleCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  cfg.offered_rate_rps = 250000;  // ~77% utilization at k=4
  auto det = SimulateFresque(cm, 4, cfg);
  cfg.poisson_arrivals = true;
  auto poisson = SimulateFresque(cm, 4, cfg);
  // Same throughput (same offered rate)...
  EXPECT_NEAR(poisson.throughput_rps, det.throughput_rps,
              det.throughput_rps * 0.02);
  // ...but bursty arrivals wait longer (M/D/c vs D/D/c).
  EXPECT_GT(poisson.mean_latency_seconds, det.mean_latency_seconds);
}

TEST(CostModelTest, MeasurementProducesSaneNumbers) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto cm = MeasureCosts(*spec, 2000);
  ASSERT_TRUE(cm.ok()) << cm.status().ToString();
  EXPECT_GT(cm->parse_ns, 0);
  EXPECT_GT(cm->encrypt_ns, cm->parse_ns);  // AES dominates CSV parse
  EXPECT_GT(cm->tree_walk_ns, cm->al_update_ns);  // the FRESQUE argument
  EXPECT_GT(cm->ciphertext_bytes, 16);  // at least IV-sized
  EXPECT_FALSE(cm->ToString().empty());
}

TEST(CostModelTest, RejectsZeroSamples) {
  auto spec = record::GowallaDataset();
  EXPECT_FALSE(MeasureCosts(*spec, 0).ok());
}

}  // namespace
}  // namespace sim
}  // namespace fresque
