#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/pipeline.h"

namespace fresque {
namespace sim {
namespace {

CostModel FlatCosts() {
  CostModel cm;
  cm.dataset = "flat";
  cm.parse_ns = 500;
  cm.leaf_offset_ns = 5;
  cm.encrypt_ns = 1500;
  cm.encrypt_dummy_ns = 1000;
  cm.tree_walk_ns = 200;
  cm.tree_update_ns = 200;
  cm.table_add_ns = 100;
  cm.al_update_ns = 5;
  cm.randomer_push_ns = 100;
  cm.hop_ns = 50;
  cm.cloud_store_ns = 50;
  return cm;
}

TEST(IncomingOnlyTest, CapsAtTwoHopService) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 100000;
  auto r = SimulateIncomingOnly(cm, cfg);
  EXPECT_NEAR(r.throughput_rps, 1e9 / (2 * cm.hop_ns),
              1e9 / (2 * cm.hop_ns) * 0.01);
  EXPECT_EQ(r.bottleneck, "dispatcher");
}

TEST(CheckerFirstTest, AlwaysSlowerThanFresquePlacement) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  for (size_t k : {1, 2, 4, 8, 16}) {
    auto after = SimulateFresque(cm, k, cfg);
    auto between = SimulateFresqueCheckerFirst(cm, k, cfg);
    EXPECT_LT(between.throughput_rps, after.throughput_rps) << "k=" << k;
  }
}

TEST(CheckerFirstTest, CheckingNodeBecomesBottleneckQuickly) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  auto r = SimulateFresqueCheckerFirst(cm, 16, cfg);
  EXPECT_EQ(r.bottleneck, "checking-node");
  // With the checker visited twice per record, its cap is fixed in k.
  auto r32 = SimulateFresqueCheckerFirst(cm, 32, cfg);
  EXPECT_NEAR(r32.throughput_rps, r.throughput_rps,
              r.throughput_rps * 0.02);
}

TEST(ExtraHopTest, RaisingLinkCostLowersThroughputMonotonically) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  double prev = 1e18;
  for (double hop : {0.0, 500.0, 2000.0, 10000.0}) {
    cfg.extra_hop_ns = hop;
    auto r = SimulateFresque(cm, 4, cfg);
    EXPECT_LT(r.throughput_rps, prev) << "hop=" << hop;
    prev = r.throughput_rps;
  }
}

TEST(PinedRqBatchTest, StallsDominateAtHighRatesButNotLowOnes) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  // Closed loop: the batch pipeline caps throughput near
  // 1/(ingest + publish-per-record).
  auto r = SimulatePinedRqBatch(cm, cfg, 10000);
  double per_record =
      (2 * cm.hop_ns + 50 + cm.parse_ns + cm.encrypt_ns) * 1e-9;
  EXPECT_NEAR(r.throughput_rps, 1.0 / per_record, 1.0 / per_record * 0.05);

  // At a modest offered rate the stall still caps it: offered 300k vs
  // effective capacity ~390k with these costs — accepted; offered 800k
  // exceeds capacity and the queue grows (throughput = capacity).
  cfg.offered_rate_rps = 100000;
  auto low = SimulatePinedRqBatch(cm, cfg, 10000);
  EXPECT_NEAR(low.throughput_rps, 100000, 2000);
}

TEST(PinedRqBatchTest, StreamingBeatsBatchAtSaturation) {
  // The PINED-RQ++ motivation: streaming spreads the work, batch stalls.
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 200000;
  auto batch = SimulatePinedRqBatch(cm, cfg, 10000);
  auto fresque = SimulateFresque(cm, 4, cfg);
  EXPECT_GT(fresque.throughput_rps, batch.throughput_rps);
}

TEST(ResultShapeTest, UtilizationCoversEveryStation) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 50000;
  auto f = SimulateFresque(cm, 2, cfg);
  EXPECT_EQ(f.utilization.size(), 4u);  // dispatcher, CNs, checking, cloud
  auto p = SimulateParallelPp(cm, 2, cfg);
  EXPECT_EQ(p.utilization.size(), 3u);  // dispatcher, workers, cloud
  auto s = SimulateNonParallelPp(cm, cfg);
  EXPECT_EQ(s.utilization.size(), 2u);  // collector, cloud
  for (const auto& [name, util] : f.utilization) {
    EXPECT_GE(util, 0.0) << name;
    EXPECT_LE(util, 1.0 + 1e-9) << name;
  }
}

TEST(ResultShapeTest, RecordsAndMakespanAreConsistent) {
  auto cm = FlatCosts();
  SimConfig cfg;
  cfg.num_records = 123456;
  auto r = SimulateFresque(cm, 3, cfg);
  EXPECT_EQ(r.records, cfg.num_records);
  EXPECT_GT(r.makespan_seconds, 0);
  EXPECT_NEAR(r.throughput_rps,
              static_cast<double>(r.records) / r.makespan_seconds, 1e-6);
}

}  // namespace
}  // namespace sim
}  // namespace fresque
