// Sharded scale-out invariants (DESIGN.md §17): placement arithmetic,
// router extraction/fallback, cross-shard record conservation (every
// record in exactly one shard's publications), and merged fan-out query
// results against a single-shard oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"
#include "shard/partition.h"
#include "shard/pipeline.h"
#include "shard/router.h"
#include "shard/sharded_cloud.h"

namespace fresque {
namespace {

record::DatasetSpec Gowalla() {
  auto spec = record::GowallaDataset();
  EXPECT_TRUE(spec.ok());
  return std::move(spec).ValueOrDie();
}

shard::ShardPlacement MakePlacement(const record::DatasetSpec& spec,
                                    size_t shards,
                                    shard::ShardBy by = shard::ShardBy::kRange) {
  shard::ShardOptions opts;
  opts.num_shards = shards;
  opts.shard_by = by;
  auto p = shard::ShardPlacement::Create(spec, opts);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

TEST(ShardPlacementTest, RangeSlicesAreContiguousBalancedAndExhaustive) {
  auto spec = Gowalla();  // 626 bins
  for (size_t shards : {1u, 2u, 4u, 5u, 64u}) {
    auto p = MakePlacement(spec, shards);
    // Walk every bin center: shard ids must be non-decreasing, cover
    // [0, shards), and slice sizes must differ by at most one bin.
    std::vector<size_t> bins_per_shard(shards, 0);
    size_t prev = 0;
    for (size_t bin = 0; bin < spec.num_bins(); ++bin) {
      const double v = spec.domain_min + (static_cast<double>(bin) + 0.5) *
                                             spec.bin_width;
      const size_t s = p.ShardOf(v);
      ASSERT_LT(s, shards);
      ASSERT_GE(s, prev) << "slices must be contiguous";
      prev = s;
      ++bins_per_shard[s];
    }
    const auto [lo, hi] =
        std::minmax_element(bins_per_shard.begin(), bins_per_shard.end());
    EXPECT_GE(*lo, spec.num_bins() / shards);
    EXPECT_LE(*hi - *lo, 1u);
    // Out-of-domain values clamp like DomainBinning::LeafOffset.
    EXPECT_EQ(p.ShardOf(spec.domain_min - 1e9), 0u);
    EXPECT_EQ(p.ShardOf(spec.domain_max + 1e9), shards - 1);
  }
}

TEST(ShardPlacementTest, ShardSpecSlicesTileTheDomain) {
  auto spec = Gowalla();
  auto p = MakePlacement(spec, 4);
  double expect_lo = spec.domain_min;
  size_t total_bins = 0;
  for (size_t i = 0; i < 4; ++i) {
    const auto& sub = p.ShardSpec(i);
    EXPECT_DOUBLE_EQ(sub.domain_min, expect_lo);
    EXPECT_GT(sub.domain_max, sub.domain_min);
    EXPECT_DOUBLE_EQ(sub.bin_width, spec.bin_width);
    total_bins += sub.num_bins();
    expect_lo = sub.domain_max;
  }
  EXPECT_DOUBLE_EQ(expect_lo, spec.domain_max);
  EXPECT_EQ(total_bins, spec.num_bins());
}

TEST(ShardPlacementTest, HashModeScattersAndCoversAllShards) {
  auto spec = Gowalla();
  auto p = MakePlacement(spec, 4, shard::ShardBy::kHash);
  std::vector<size_t> hits(4, 0);
  for (size_t bin = 0; bin < spec.num_bins(); ++bin) {
    const double v =
        spec.domain_min + (static_cast<double>(bin) + 0.5) * spec.bin_width;
    ++hits[p.ShardOf(v)];
  }
  for (size_t s = 0; s < 4; ++s) EXPECT_GT(hits[s], 0u) << "shard " << s;
  // Hash shards index the full domain.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(p.ShardSpec(i).domain_min, spec.domain_min);
    EXPECT_DOUBLE_EQ(p.ShardSpec(i).domain_max, spec.domain_max);
  }
}

TEST(ShardPlacementTest, EpsilonCompositionResolvesPerMode) {
  auto spec = Gowalla();
  // kAuto: range -> parallel composition (full epsilon per shard).
  auto range = MakePlacement(spec, 4, shard::ShardBy::kRange);
  EXPECT_EQ(range.effective_composition(), shard::EpsilonComposition::kFull);
  EXPECT_DOUBLE_EQ(range.ShardEpsilon(1.0), 1.0);
  // kAuto: hash -> sequential composition (epsilon / N).
  auto hash = MakePlacement(spec, 4, shard::ShardBy::kHash);
  EXPECT_EQ(hash.effective_composition(), shard::EpsilonComposition::kSplit);
  EXPECT_DOUBLE_EQ(hash.ShardEpsilon(1.0), 0.25);
  // Explicit override wins over the mode default.
  shard::ShardOptions opts;
  opts.num_shards = 4;
  opts.shard_by = shard::ShardBy::kRange;
  opts.epsilon_composition = shard::EpsilonComposition::kSplit;
  auto forced = shard::ShardPlacement::Create(spec, opts);
  ASSERT_TRUE(forced.ok());
  EXPECT_DOUBLE_EQ(forced->ShardEpsilon(1.0), 0.25);
}

TEST(ShardPlacementTest, QueryPruningMatchesSliceIntersection) {
  auto spec = Gowalla();
  auto p = MakePlacement(spec, 4);
  // Full domain -> every shard, in order.
  auto all = p.ShardsForQuery({spec.domain_min, spec.domain_max});
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(all[i], i);
  // A query inside one slice -> that shard only.
  const auto& s2 = p.ShardSpec(2);
  auto one = p.ShardsForQuery({s2.domain_min + 1, s2.domain_max - 1});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 2u);
  // Straddling a slice boundary -> both neighbors.
  auto two = p.ShardsForQuery({s2.domain_min - 1, s2.domain_min + 1});
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], 1u);
  EXPECT_EQ(two[1], 2u);
  // Inverted and out-of-domain queries prune everything.
  EXPECT_TRUE(p.ShardsForQuery({spec.domain_min + 10, spec.domain_min}).empty());
  // Hash mode cannot prune.
  auto hash = MakePlacement(spec, 4, shard::ShardBy::kHash);
  EXPECT_EQ(hash.ShardsForQuery({s2.domain_min + 1, s2.domain_max - 1}).size(),
            4u);
}

TEST(ShardPlacementTest, RejectsInvalidShardCounts) {
  auto spec = Gowalla();
  shard::ShardOptions opts;
  opts.num_shards = 0;
  EXPECT_FALSE(shard::ShardPlacement::Create(spec, opts).ok());
  opts.num_shards = shard::ShardPlacement::kMaxShards + 1;
  EXPECT_FALSE(shard::ShardPlacement::Create(spec, opts).ok());
  // More range shards than bins cannot tile the domain.
  opts.num_shards = 64;
  auto narrow = spec;
  narrow.domain_max = narrow.domain_min + 10 * narrow.bin_width;
  EXPECT_FALSE(shard::ShardPlacement::Create(narrow, opts).ok());
  // ...but hash mode has no slice constraint beyond kMaxShards.
  opts.shard_by = shard::ShardBy::kHash;
  EXPECT_TRUE(shard::ShardPlacement::Create(narrow, opts).ok());
}

TEST(ShardPlacementTest, ParseAndToStringRoundTrip) {
  EXPECT_EQ(*shard::ParseShardBy("range"), shard::ShardBy::kRange);
  EXPECT_EQ(*shard::ParseShardBy("hash"), shard::ShardBy::kHash);
  EXPECT_FALSE(shard::ParseShardBy("modulo").ok());
  EXPECT_STREQ(shard::ToString(shard::ShardBy::kRange), "range");
  EXPECT_STREQ(shard::ToString(shard::ShardBy::kHash), "hash");
  EXPECT_EQ(*shard::ParseEpsilonComposition("auto"),
            shard::EpsilonComposition::kAuto);
  EXPECT_EQ(*shard::ParseEpsilonComposition("split"),
            shard::EpsilonComposition::kSplit);
  EXPECT_EQ(*shard::ParseEpsilonComposition("full"),
            shard::EpsilonComposition::kFull);
  EXPECT_FALSE(shard::ParseEpsilonComposition("parallel").ok());
}

TEST(ShardRouterTest, RoutesByIndexedValueAndCountsPerShard) {
  auto spec = Gowalla();
  shard::ShardOptions opts;
  opts.num_shards = 4;
  auto placement = shard::ShardPlacement::Create(spec, opts);
  ASSERT_TRUE(placement.ok());
  shard::ShardRouter router(*placement, spec.parser);

  auto gen = record::MakeGenerator(spec, 11);
  ASSERT_TRUE(gen.ok());
  std::vector<uint64_t> expect(4, 0);
  constexpr size_t kLines = 2000;
  for (size_t i = 0; i < kLines; ++i) {
    const std::string line = (*gen)->NextLine();
    auto v = spec.parser->IndexedValue(line);
    ASSERT_TRUE(v.ok());
    const size_t want = placement->ShardOf(*v);
    auto d = router.Route(line);
    EXPECT_EQ(d.shard, want);
    EXPECT_TRUE(d.extracted);
    ++expect[want];
  }
  auto m = router.Metrics();
  EXPECT_EQ(m.routed, kLines);
  EXPECT_EQ(m.extract_fallbacks, 0u);
  ASSERT_EQ(m.per_shard.size(), 4u);
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(m.per_shard[s], expect[s]);
}

TEST(ShardRouterTest, UnparsableLineFallsBackDeterministically) {
  auto spec = Gowalla();
  shard::ShardOptions opts;
  opts.num_shards = 4;
  auto placement = shard::ShardPlacement::Create(spec, opts);
  ASSERT_TRUE(placement.ok());
  shard::ShardRouter router(*placement, spec.parser);

  const std::string garbage = "not,a;valid line at all";
  auto d1 = router.Route(garbage);
  auto d2 = router.Route(garbage);
  EXPECT_FALSE(d1.extracted);
  EXPECT_EQ(d1.shard, d2.shard);  // same line -> same shard, always
  EXPECT_LT(d1.shard, 4u);
  EXPECT_EQ(router.Metrics().extract_fallbacks, 2u);
}

// ---------------------------------------------------------------------------
// Pipeline-level invariants.

struct OracleRun {
  std::unique_ptr<cloud::CloudServer> server;
  std::unique_ptr<engine::CloudNode> node;
};

/// Ingests `lines` through the unsharded collector (the oracle).
OracleRun RunOracle(const record::DatasetSpec& spec,
                    const std::vector<std::string>& lines, size_t publish_at,
                    crypto::KeyManager keys) {
  OracleRun out;
  auto binning = index::DomainBinning::Create(spec.domain_min, spec.domain_max,
                                              spec.bin_width);
  out.server =
      std::make_unique<cloud::CloudServer>(std::move(binning).ValueOrDie());
  out.node = std::make_unique<engine::CloudNode>(out.server.get());
  out.node->Start();
  engine::CollectorConfig cfg;
  cfg.dataset = spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 77;
  engine::FresqueCollector collector(cfg, std::move(keys), out.node->inbox());
  EXPECT_TRUE(collector.Start().ok());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_TRUE(collector.Ingest(lines[i]).ok());
    if (i + 1 == publish_at) {
      EXPECT_TRUE(collector.Publish().ok());
    }
  }
  EXPECT_TRUE(collector.Shutdown().ok());
  out.node->Shutdown();
  EXPECT_TRUE(out.node->first_error().ok());
  return out;
}

TEST(ShardedPipelineTest, ConservationEveryRecordInExactlyOneShard) {
  auto spec = Gowalla();
  constexpr size_t kLines = 4000;
  std::vector<std::string> lines;
  auto gen = record::MakeGenerator(spec, 303);
  ASSERT_TRUE(gen.ok());
  for (size_t i = 0; i < kLines; ++i) lines.push_back((*gen)->NextLine());

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.collector.seed = 99;
  cfg.shard.num_shards = 4;
  crypto::KeyManager keys(Bytes(32, 0x42));
  shard::ShardedPipeline pipe(cfg, keys);
  ASSERT_TRUE(pipe.Start().ok());

  // Expected per-shard routing histogram from the placement itself.
  std::vector<uint64_t> expect(4, 0);
  for (const auto& line : lines) {
    auto v = spec.parser->IndexedValue(line);
    ASSERT_TRUE(v.ok());
    ++expect[pipe.placement().ShardOf(*v)];
  }

  for (size_t i = 0; i < kLines; ++i) {
    ASSERT_TRUE(pipe.Ingest(lines[i]).ok());
    if (i + 1 == kLines / 2) {
      ASSERT_TRUE(pipe.Publish().ok());
    }
  }
  ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();

  // Router conservation: every line routed, to the shard the placement
  // names, none duplicated, none dropped.
  auto m = pipe.Metrics();
  EXPECT_EQ(m.router.routed, kLines);
  EXPECT_EQ(m.router.extract_fallbacks, 0u);
  uint64_t routed_sum = 0;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.router.per_shard[s], expect[s]) << "shard " << s;
    routed_sum += m.router.per_shard[s];
  }
  EXPECT_EQ(routed_sum, kLines);

  // Publication alignment: both interval barriers reached every shard.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(pipe.cloud()->shard(s)->num_publications(), 2u) << "shard " << s;
  }
  EXPECT_TRUE(pipe.WaitForPublication(1).ok());

  // Fan-out accounting: the per-shard counts of a full-domain query sum
  // exactly to the merged result (the conservation ledger).
  shard::FanoutStats stats;
  auto merged =
      pipe.cloud()->ExecuteQuery({spec.domain_min, spec.domain_max}, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(stats.probed.size(), 4u);
  EXPECT_EQ(stats.shards_pruned, 0u);
  EXPECT_EQ(stats.TotalRecords(), merged->TotalRecords());

  // Every decrypted record came through exactly one shard: the client
  // sees no duplicates (ciphertexts are unique by construction, so equal
  // plaintext counts prove no record was routed twice).
  client::Client client(keys, &spec.parser->schema());
  auto recs = client.Decrypt(*merged, {spec.domain_min, spec.domain_max});
  ASSERT_TRUE(recs.ok());
  EXPECT_LE(recs->size(), kLines);            // no duplication
  EXPECT_GE(recs->size(), kLines * 7 / 10);   // no mass loss beyond DP removal
}

TEST(ShardedPipelineTest, MergedFanoutMatchesSingleShardOracle) {
  auto spec = Gowalla();
  constexpr size_t kLines = 3000;
  std::vector<std::string> lines;
  auto gen = record::MakeGenerator(spec, 404);
  ASSERT_TRUE(gen.ok());
  for (size_t i = 0; i < kLines; ++i) lines.push_back((*gen)->NextLine());

  crypto::KeyManager keys(Bytes(32, 0x42));
  auto oracle = RunOracle(spec, lines, kLines / 2, keys);

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.collector.seed = 77;
  cfg.shard.num_shards = 4;
  shard::ShardedPipeline pipe(cfg, keys);
  ASSERT_TRUE(pipe.Start().ok());
  for (size_t i = 0; i < kLines; ++i) {
    ASSERT_TRUE(pipe.Ingest(lines[i]).ok());
    if (i + 1 == kLines / 2) {
      ASSERT_TRUE(pipe.Publish().ok());
    }
  }
  ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();

  // Ground truth per query from the raw lines.
  client::Client client(keys, &spec.parser->schema());
  const double span = spec.domain_max - spec.domain_min;
  for (double lo_frac : {0.0, 0.2, 0.55}) {
    for (double sel : {0.15, 0.6}) {
      index::RangeQuery q{spec.domain_min + lo_frac * span,
                          spec.domain_min + (lo_frac + sel) * span};
      if (q.hi > spec.domain_max) q.hi = spec.domain_max;
      size_t truth = 0;
      for (const auto& line : lines) {
        auto v = spec.parser->IndexedValue(line);
        if (v.ok() && *v >= q.lo && *v <= q.hi) ++truth;
      }

      auto oracle_res = client.Query(*oracle.server, q);
      ASSERT_TRUE(oracle_res.ok());
      shard::FanoutStats stats;
      auto merged_raw = pipe.cloud()->ExecuteQuery(q, &stats);
      ASSERT_TRUE(merged_raw.ok());
      EXPECT_EQ(stats.TotalRecords(), merged_raw->TotalRecords());
      auto merged = client.Decrypt(*merged_raw, q);
      ASSERT_TRUE(merged.ok());

      // Both paths post-filter on the exact predicate, so both are
      // subsets of the truth; equivalence to the oracle means the same
      // high recall, not identical DP noise draws.
      EXPECT_LE(merged->size(), truth);
      EXPECT_LE(oracle_res->size(), truth);
      if (truth > 100) {
        EXPECT_GE(merged->size(), truth * 8 / 10)
            << "q=[" << q.lo << "," << q.hi << "]";
        EXPECT_GE(merged->size() * 10, oracle_res->size() * 9)
            << "sharded recall far below the oracle";
      }
    }
  }

  // Pruning: a query inside shard 2's slice probes one shard only and
  // still reaches the oracle's quality bar.
  const auto& s2 = pipe.placement().ShardSpec(2);
  index::RangeQuery narrow{s2.domain_min + spec.bin_width,
                           s2.domain_max - spec.bin_width};
  shard::FanoutStats stats;
  auto res = pipe.cloud()->ExecuteQuery(narrow, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.probed.size(), 1u);
  EXPECT_EQ(stats.shards_pruned, 3u);
  EXPECT_EQ(stats.probed[0].shard, 2u);
}

TEST(ShardedPipelineTest, HashModeFansOutEverywhereAndStaysConsistent) {
  auto spec = Gowalla();
  constexpr size_t kLines = 1500;
  std::vector<std::string> lines;
  auto gen = record::MakeGenerator(spec, 505);
  ASSERT_TRUE(gen.ok());
  for (size_t i = 0; i < kLines; ++i) lines.push_back((*gen)->NextLine());

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.collector.seed = 5;
  cfg.shard.num_shards = 3;
  cfg.shard.shard_by = shard::ShardBy::kHash;
  crypto::KeyManager keys(Bytes(32, 0x42));
  shard::ShardedPipeline pipe(cfg, keys);
  ASSERT_TRUE(pipe.Start().ok());
  for (const auto& line : lines) ASSERT_TRUE(pipe.Ingest(line).ok());
  ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();

  shard::FanoutStats stats;
  const double mid = spec.domain_min + (spec.domain_max - spec.domain_min) / 2;
  auto res = pipe.cloud()->ExecuteQuery({spec.domain_min, mid}, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.probed.size(), 3u);  // hash mode cannot prune
  EXPECT_EQ(stats.shards_pruned, 0u);
  EXPECT_EQ(stats.TotalRecords(), res->TotalRecords());

  client::Client client(keys, &spec.parser->schema());
  auto recs = client.Decrypt(*res, {spec.domain_min, mid});
  ASSERT_TRUE(recs.ok());
  size_t truth = 0;
  for (const auto& line : lines) {
    auto v = spec.parser->IndexedValue(line);
    if (v.ok() && *v >= spec.domain_min && *v <= mid) ++truth;
  }
  // Hash mode resolves kAuto to split composition (epsilon / 3 per
  // shard), so DP removal cuts ~3x deeper than the range-mode tests —
  // exactly the accuracy cost results/shard_dp_ablation.csv quantifies.
  // The bound here only guards against wholesale loss, not DP noise.
  EXPECT_LE(recs->size(), truth);
  EXPECT_GE(recs->size(), truth * 2 / 5);
}

TEST(ShardedPipelineTest, UnparsableLinesBecomeShardParseErrorsNotDrops) {
  auto spec = Gowalla();
  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = spec;
  cfg.collector.num_computing_nodes = 2;
  cfg.shard.num_shards = 2;
  crypto::KeyManager keys(Bytes(32, 0x42));
  shard::ShardedPipeline pipe(cfg, keys);
  ASSERT_TRUE(pipe.Start().ok());
  auto gen = record::MakeGenerator(spec, 21);
  ASSERT_TRUE(gen.ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(pipe.Ingest((*gen)->NextLine()).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pipe.Ingest("garbage line").ok());
  ASSERT_TRUE(pipe.Shutdown().ok()) << pipe.first_error().ToString();

  auto m = pipe.Metrics();
  EXPECT_EQ(m.router.routed, 205u);
  EXPECT_EQ(m.router.extract_fallbacks, 5u);
  uint64_t parse_errors = 0;
  for (const auto& s : m.shards) {
    parse_errors += s.collector.parse_errors;
  }
  EXPECT_EQ(parse_errors, 5u);
}

}  // namespace
}  // namespace fresque
