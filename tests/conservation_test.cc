// System-wide conservation invariants: nothing the collector emits may be
// lost or duplicated on its way to the cloud.

#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace fresque {
namespace {

TEST(ConservationTest, EveryEmittedRecordReachesExactlyOnePlace) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x12));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 3;
  cfg.seed = 2024;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 66);
  constexpr uint64_t kRecords = 5000;
  for (uint64_t i = 0; i < kRecords; ++i) {
    collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok());

  engine::PublishReport report{};
  for (const auto& r : collector.Reports()) {
    if (r.pn == 0) report = r;
  }
  ASSERT_EQ(report.real_records, kRecords);

  // Conservation at the cloud's streaming store:
  //   streamed records = reals forwarded + dummies
  //                    = (reals - removed) + dummies.
  uint64_t streamed = server.total_records();
  EXPECT_EQ(streamed,
            report.real_records - report.removed_records +
                report.dummy_records);
  // Nothing fell past the overflow arrays' delta-probability bound.
  EXPECT_EQ(collector.overflow_drops(), 0u);

  // The zero-copy iteration API agrees with the aggregate counters: every
  // stored ciphertext of publication 0 is visited exactly once, and the
  // bytes visited are a strict part of the store's byte total (which also
  // counts the index and overflow payloads on top of the records).
  uint64_t visited = 0;
  uint64_t visited_bytes = 0;
  ASSERT_TRUE(server
                  .ForEachStoredRecord(
                      0,
                      [&](const cloud::PhysicalAddress&, const uint8_t* data,
                          size_t size) {
                        EXPECT_NE(data, nullptr);
                        EXPECT_GT(size, 0u);
                        ++visited;
                        visited_bytes += size;
                        return Status::OK();
                      })
                  .ok());
  EXPECT_EQ(visited, streamed);
  EXPECT_GT(visited_bytes, 0u);
  EXPECT_LT(visited_bytes, server.total_bytes());
  EXPECT_TRUE(server.ForEachStoredRecord(99, [](const cloud::PhysicalAddress&,
                                                const uint8_t*, size_t) {
                        return Status::OK();
                      }).IsNotFound());

  // And the removed records are all recoverable through the client: a
  // full-domain query returns every real record whose leaf survived,
  // including the overflow-array residents.
  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto records = client.Query(server, q);
  ASSERT_TRUE(records.ok());
  EXPECT_LE(records->size(), kRecords);              // no duplication
  EXPECT_GE(records->size(), kRecords * 7 / 10);     // no mass loss
}

TEST(ConservationTest, SameSeedSameNoiseDifferentSeedDifferentNoise) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto run = [&](uint64_t seed) -> uint64_t {
    auto binning = index::DomainBinning::Create(
        spec->domain_min, spec->domain_max, spec->bin_width);
    cloud::CloudServer server(std::move(binning).ValueOrDie());
    engine::CloudNode cloud_node(&server);
    cloud_node.Start();
    crypto::KeyManager keys(Bytes(32, 0x13));
    engine::CollectorConfig cfg;
    cfg.dataset = *spec;
    cfg.num_computing_nodes = 2;
    cfg.seed = seed;
    engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
    (void)collector.Start();
    (void)collector.Publish();
    (void)collector.Shutdown();
    cloud_node.Shutdown();
    for (const auto& r : collector.Reports()) {
      if (r.pn == 0) return r.dummy_records;
    }
    return 0;
  };
  uint64_t a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);   // reproducible noise
  EXPECT_NE(a, c);   // and genuinely seed-dependent
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace fresque
