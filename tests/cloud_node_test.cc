#include <gtest/gtest.h>

#include <vector>

#include "cloud/server.h"
#include "engine/cloud_node.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/message.h"
#include "net/payloads.h"

namespace fresque {
namespace engine {
namespace {

index::DomainBinning TinyBinning() {
  auto b = index::DomainBinning::Create(0, 10, 1);
  return std::move(b).ValueOrDie();
}

Bytes PublicationPayload(const index::DomainBinning& binning,
                         std::vector<int64_t> counts) {
  auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), binning, counts);
  index::OverflowArrays ovf(binning.num_bins(), 1);
  return net::EncodeIndexPublication(net::IndexPublication(
      std::move(idx).ValueOrDie(), std::move(ovf)));
}

net::Message Msg(net::MessageType type, uint64_t pn, uint64_t leaf = 0,
                 Bytes payload = {}) {
  net::Message m;
  m.type = type;
  m.pn = pn;
  m.leaf = leaf;
  m.payload = std::move(payload);
  return m;
}

class CloudNodeTest : public ::testing::Test {
 protected:
  CloudNodeTest() : server_(TinyBinning()), node_(&server_) {
    node_.Start();
  }

  void Finish() {
    node_.inbox()->Push(Msg(net::MessageType::kShutdown, 0));
    node_.Shutdown();
  }

  cloud::CloudServer server_;
  CloudNode node_;
};

TEST_F(CloudNodeTest, IndexedFlowPublishesImmediately) {
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 0));
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudRecord, 0, 3, Bytes{0xAA}));
  std::vector<int64_t> counts(10, 0);
  counts[3] = 1;
  node_.inbox()->Push(Msg(net::MessageType::kIndexPublication, 0, 0,
                          PublicationPayload(server_.binning(), counts)));
  Finish();
  EXPECT_TRUE(node_.first_error().ok()) << node_.first_error().ToString();
  ASSERT_EQ(node_.matching_stats().size(), 1u);
  EXPECT_EQ(node_.matching_stats()[0].records_matched, 1u);
}

TEST_F(CloudNodeTest, TaggedFlowWaitsForTableThenIndex) {
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 0));
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudTaggedRecord, 0, 777, Bytes{0xBB}));
  index::MatchingTable table;
  (void)table.Add(777, 2);
  // Table first, then index: pairing must still complete.
  node_.inbox()->Push(Msg(net::MessageType::kMatchingTable, 0, 0,
                          net::EncodeMatchingTable(table)));
  std::vector<int64_t> counts(10, 0);
  counts[2] = 1;
  node_.inbox()->Push(Msg(net::MessageType::kIndexPublication, 0, 0,
                          PublicationPayload(server_.binning(), counts)));
  Finish();
  EXPECT_TRUE(node_.first_error().ok());
  ASSERT_EQ(node_.matching_stats().size(), 1u);
}

TEST_F(CloudNodeTest, TaggedFlowIndexBeforeTableAlsoPairs) {
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 0));
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudTaggedRecord, 0, 42, Bytes{0xCC}));
  std::vector<int64_t> counts(10, 0);
  counts[1] = 1;
  node_.inbox()->Push(Msg(net::MessageType::kIndexPublication, 0, 0,
                          PublicationPayload(server_.binning(), counts)));
  index::MatchingTable table;
  (void)table.Add(42, 1);
  node_.inbox()->Push(Msg(net::MessageType::kMatchingTable, 0, 0,
                          net::EncodeMatchingTable(table)));
  Finish();
  EXPECT_TRUE(node_.first_error().ok());
  ASSERT_EQ(node_.matching_stats().size(), 1u);
}

TEST_F(CloudNodeTest, BadPayloadIsRecordedNotFatal) {
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 0));
  node_.inbox()->Push(
      Msg(net::MessageType::kIndexPublication, 0, 0, Bytes{1, 2, 3}));
  // Node keeps running after the decode error.
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudRecord, 0, 1, Bytes{0xDD}));
  Finish();
  EXPECT_FALSE(node_.first_error().ok());
  EXPECT_EQ(server_.total_records(), 1u);  // later frame still applied
}

TEST_F(CloudNodeTest, UnexpectedFrameTypeIsError) {
  node_.inbox()->Push(Msg(net::MessageType::kRawLine, 0));
  Finish();
  EXPECT_FALSE(node_.first_error().ok());
}

TEST_F(CloudNodeTest, InterleavedPublicationsStayIndependent) {
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 0));
  node_.inbox()->Push(Msg(net::MessageType::kPublicationStart, 1));
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudRecord, 0, 1, Bytes{0x00}));
  node_.inbox()->Push(
      Msg(net::MessageType::kCloudRecord, 1, 1, Bytes{0x01}));
  std::vector<int64_t> counts(10, 0);
  counts[1] = 1;
  node_.inbox()->Push(Msg(net::MessageType::kIndexPublication, 1, 0,
                          PublicationPayload(server_.binning(), counts)));
  node_.inbox()->Push(Msg(net::MessageType::kIndexPublication, 0, 0,
                          PublicationPayload(server_.binning(), counts)));
  Finish();
  EXPECT_TRUE(node_.first_error().ok());
  EXPECT_EQ(node_.matching_stats().size(), 2u);
  EXPECT_EQ(server_.num_publications(), 2u);
}

}  // namespace
}  // namespace engine
}  // namespace fresque
