// Races the query engine against publication installs (DESIGN.md §15).
// Run under TSan via scripts/tsan_tests.sh. The central invariant is
// snapshot consistency: a query pins one view inside the server's install
// critical section, so every publication it observes is either fully
// open (all records unindexed) or fully installed (all records indexed)
// — never a partial mix, never missing, never double-counted.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cloud/server.h"
#include "net/payloads.h"
#include "query/context.h"
#include "query/executor.h"
#include "query/view.h"

namespace fresque {
namespace query {
namespace {

index::DomainBinning TinyBinning() {
  return std::move(index::DomainBinning::Create(0, 10, 1)).ValueOrDie();
}

net::IndexPublication MakePublication(const index::DomainBinning& binning,
                                      const std::vector<int64_t>& counts) {
  auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
  auto idx = index::HistogramIndex::FromLeafCounts(
      std::move(layout).ValueOrDie(), binning, counts);
  index::OverflowArrays ovf(binning.num_bins(), 1);
  return net::IndexPublication(std::move(idx).ValueOrDie(), std::move(ovf));
}

TEST(QueryConcurrencyTest, QueriesRaceInstallsConserveRecords) {
  constexpr int kPublications = 12;
  constexpr int kRecordsPerPub = 64;
  cloud::CloudServer server(TinyBinning());

  // Stage every publication open, fully ingested.
  std::vector<int64_t> counts(10, 0);
  for (uint32_t leaf = 0; leaf < 10; ++leaf) {
    counts[leaf] = kRecordsPerPub / 10 + 1;
  }
  for (uint64_t pn = 0; pn < kPublications; ++pn) {
    ASSERT_TRUE(server.StartPublication(pn).ok());
    for (int i = 0; i < kRecordsPerPub; ++i) {
      ASSERT_TRUE(
          server
              .IngestRecord(pn, static_cast<uint32_t>(i % 10),
                            Bytes{static_cast<uint8_t>(pn),
                                  static_cast<uint8_t>(i)})
              .ok());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> queries{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = server.ExecuteQuery({0.0, 9.9}, QueryContext{});
      if (!r.ok()) {
        ++violations;
        continue;
      }
      ++queries;
      // Conservation per publication: all kRecordsPerPub records appear
      // exactly once, either all indexed or all unindexed.
      std::map<uint64_t, std::pair<size_t, size_t>> per_pn;
      for (const auto& rr : r->indexed_records) ++per_pn[rr.pn].first;
      for (const auto& rr : r->unindexed_records) ++per_pn[rr.pn].second;
      if (per_pn.size() != kPublications) ++violations;
      for (const auto& [pn, io] : per_pn) {
        (void)pn;
        const auto& [indexed, unindexed] = io;
        if (indexed + unindexed != kRecordsPerPub ||
            (indexed != 0 && unindexed != 0)) {
          ++violations;
        }
      }
    }
  };
  std::thread r1(reader), r2(reader);

  // Install publications one by one while the readers hammer.
  for (uint64_t pn = 0; pn < kPublications; ++pn) {
    ASSERT_TRUE(
        server.PublishIndexed(pn, MakePublication(server.binning(), counts))
            .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop = true;
  r1.join();
  r2.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(server.view_epoch(), static_cast<uint64_t>(kPublications));
  // After all installs, everything is indexed.
  auto final = server.ExecuteQuery({0.0, 9.9});
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(final->indexed_records.size(),
            static_cast<size_t>(kPublications * kRecordsPerPub));
  EXPECT_EQ(final->unindexed_records.size(), 0u);
}

TEST(QueryConcurrencyTest, ViewGCUnderInstallRetireChurn) {
  auto binning = TinyBinning();
  ViewManager views;
  auto make_installed = [&](uint64_t pn) {
    auto layout = index::IndexLayout::Create(binning.num_bins(), 4);
    auto idx = index::HistogramIndex::FromLeafCounts(
        std::move(layout).ValueOrDie(), binning,
        std::vector<int64_t>(binning.num_bins(), 1));
    return std::make_shared<const InstalledPublication>(
        pn, cloud::SegmentStorage(), std::move(idx).ValueOrDie(),
        index::OverflowArrays(binning.num_bins(), 1),
        std::vector<std::vector<cloud::PhysicalAddress>>(binning.num_bins()),
        Bytes{}, TagFilter());
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> pins{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto view = views.Current();
      // Touch every publication through the pinned view; the churner may
      // retire them concurrently, but the pin keeps them valid.
      for (const auto& pub : view->publications()) {
        if (pub->pn > 1u << 20) ++pins;  // never taken; forces the read
      }
      ++pins;
    }
  };
  std::thread r1(reader), r2(reader);

  std::vector<std::weak_ptr<const InstalledPublication>> weaks;
  for (uint64_t round = 0; round < 200; ++round) {
    uint64_t pn = round % 8;
    auto pub = make_installed(pn);
    weaks.emplace_back(pub);
    views.Install(std::move(pub));
    if (round % 3 == 0) views.Retire((round + 1) % 8);
    // Yield periodically so the readers interleave with the churn even on
    // a single-CPU box.
    if (round % 16 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Make sure the readers actually overlapped the churn (on a single-CPU
  // box the 200 rounds above can finish before a reader is scheduled).
  while (pins.load() < 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop = true;
  r1.join();
  r2.join();
  EXPECT_GT(pins.load(), 0u);

  // Quiesce: only publications in the final view may still be alive.
  auto final_view = views.Current();
  size_t alive = 0;
  for (const auto& w : weaks) {
    if (auto p = w.lock()) {
      ++alive;
      EXPECT_NE(final_view->Find(p->pn), nullptr)
          << "leaked publication " << p->pn;
      EXPECT_EQ(final_view->Find(p->pn).get(), p.get());
    }
  }
  EXPECT_EQ(alive, final_view->num_publications());
}

TEST(QueryConcurrencyTest, ExecutorStressAccountsEveryQuery) {
  std::atomic<uint64_t> handled{0};
  ExecutorOptions opts;
  opts.num_threads = 3;
  opts.queue_capacity = 8;
  QueryExecutor exec(
      [&](const index::RangeQuery&, const QueryContext& ctx) -> Result<QueryResult> {
        FRESQUE_RETURN_NOT_OK(ctx.Check());
        ++handled;
        return QueryResult{};
      },
      opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<uint64_t> ok{0}, shed{0}, deadline{0}, other{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryOptions qo;
        if ((t + i) % 5 == 0) qo.deadline = std::chrono::nanoseconds(1);
        auto r = exec.Execute({0, 1}, qo);
        if (r.ok()) {
          ++ok;
        } else if (r.status().code() == StatusCode::kOverloaded) {
          ++shed;
        } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
          ++deadline;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  exec.Shutdown();

  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load() + deadline.load(),
            static_cast<uint64_t>(kThreads * kPerThread));
  auto m = exec.metrics();
  EXPECT_EQ(m.executed, ok.load());
  EXPECT_EQ(m.shed, shed.load());
  EXPECT_EQ(m.deadline_exceeded, deadline.load());
  EXPECT_EQ(m.submitted, m.executed + m.deadline_exceeded + m.cancelled);
  EXPECT_EQ(m.inflight, 0);
  EXPECT_EQ(handled.load(), ok.load());
}

TEST(QueryConcurrencyTest, ShutdownResolvesQueuedQueries) {
  std::atomic<bool> release{false};
  ExecutorOptions opts;
  opts.num_threads = 1;
  opts.queue_capacity = 8;
  QueryExecutor exec(
      [&](const index::RangeQuery&, const QueryContext&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Result<QueryResult>(QueryResult{});
      },
      opts);
  // One query occupies the worker; several more sit in the queue.
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 5; ++i) {
    auto t = exec.Submit({0, 1});
    if (t.ok()) tickets.push_back(*t);
  }
  release = true;
  exec.Shutdown();
  // Every ticket resolves — no waiter hangs forever.
  for (auto& t : tickets) {
    auto r = t->Wait();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace fresque
