// The whole story in one test: many publications, snapshot persistence,
// restart, integrity audit, multi-range analytics — everything a
// deployment would do across a retention horizon.

#include <gtest/gtest.h>

#include <cstdio>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace fresque {
namespace {

TEST(GrandTourTest, TenPublicationsSurviveRestartAndAudit) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  std::string snap =
      std::string(::testing::TempDir()) + "/grand_tour.snap";

  crypto::KeyManager keys(Bytes(32, 0xA5));
  std::vector<record::Record> truth;

  // --- Day 1..10 of operation.
  {
    cloud::CloudServer server(std::move(binning).ValueOrDie());
    engine::CloudNode cloud_node(&server);
    cloud_node.Start();
    engine::CollectorConfig cfg;
    cfg.dataset = *spec;
    cfg.num_computing_nodes = 3;
    cfg.epsilon = 1.0;
    cfg.seed = 1010;
    engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
    ASSERT_TRUE(collector.Start().ok());
    auto gen = record::MakeGenerator(*spec, 55);
    for (int day = 0; day < 10; ++day) {
      for (int i = 0; i < 800; ++i) {
        std::string line = (*gen)->NextLine();
        auto rec = spec->parser->Parse(line);
        ASSERT_TRUE(rec.ok());
        truth.push_back(std::move(*rec));
        collector.SetIntervalProgress(i / 800.0);
        ASSERT_TRUE(collector.Ingest(line).ok());
      }
      ASSERT_TRUE(collector.Publish().ok());
    }
    ASSERT_TRUE(collector.Shutdown().ok());
    cloud_node.Shutdown();
    ASSERT_TRUE(cloud_node.first_error().ok());
    ASSERT_EQ(cloud_node.matching_stats().size(), 10u);
    ASSERT_TRUE(server.SaveSnapshot(snap).ok());
  }

  // --- "The cloud restarts."
  auto restored = cloud::CloudServer::LoadSnapshot(snap);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  cloud::CloudServer& server = **restored;
  EXPECT_EQ(server.num_publications(), 11u);  // 10 published + 1 open

  client::Client client(keys, &spec->parser->schema());

  // Integrity audit of every published publication.
  for (uint64_t pn = 0; pn < 10; ++pn) {
    EXPECT_TRUE(client.VerifyPublication(server, pn).ok()) << pn;
  }

  // Full-domain recall across all ten publications.
  index::RangeQuery all{spec->domain_min, spec->domain_max};
  auto acc = client.QueryWithGroundTruth(server, all, truth);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc->expected, truth.size());
  EXPECT_GE(acc->Recall(), 0.70);

  // Multi-range analytics: morning vs evening check-ins (diurnal data).
  std::vector<index::RangeQuery> evenings;
  for (int day = 0; day < 26; ++day) {
    double base = spec->domain_min + day * 24 * 3600.0;
    evenings.push_back({base + 17 * 3600.0, base + 21 * 3600.0});
  }
  auto evening_records = client.QueryMulti(server, evenings);
  ASSERT_TRUE(evening_records.ok());
  // Diurnal generator: evening hours hold far more than 4/24 of mass.
  EXPECT_GT(evening_records->size(), truth.size() / 5);

  std::remove(snap.c_str());
}

}  // namespace
}  // namespace fresque
