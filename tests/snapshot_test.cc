#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace fresque {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotTest, QueriesSurviveSaveAndLoad) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x70));
  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.num_computing_nodes = 2;
  cfg.seed = 9;
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());
  auto gen = record::MakeGenerator(*spec, 12);
  std::vector<record::Record> truth;
  for (int i = 0; i < 1200; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok());
    truth.push_back(std::move(*rec));
    ASSERT_TRUE(collector.Ingest(line).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  // Leave some records in an open (unpublished) second publication too.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok());

  // The "cloud restarts": persist, reload, compare query answers.
  std::string path = TempPath("cloud_snapshot.bin");
  ASSERT_TRUE(server.SaveSnapshot(path).ok());
  auto restored = cloud::CloudServer::LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto before = client.Query(server, q);
  auto after = client.Query(**restored, q);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->size(), after->size());
  EXPECT_GT(after->size(), 0u);

  // Integrity evidence survives too.
  EXPECT_TRUE(client.VerifyPublication(**restored, 0).ok());
  EXPECT_EQ((*restored)->num_publications(), server.num_publications());
  EXPECT_EQ((*restored)->total_records(), server.total_records());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsCorruptSnapshots) {
  std::string path = TempPath("bad_snapshot.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a snapshot", f);
    std::fclose(f);
  }
  EXPECT_FALSE(cloud::CloudServer::LoadSnapshot(path).ok());
  EXPECT_FALSE(cloud::CloudServer::LoadSnapshot("/nonexistent/nope").ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyServerRoundTrips) {
  auto binning = index::DomainBinning::Create(0, 10, 1);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  std::string path = TempPath("empty_snapshot.bin");
  ASSERT_TRUE(server.SaveSnapshot(path).ok());
  auto restored = cloud::CloudServer::LoadSnapshot(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->num_publications(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fresque
