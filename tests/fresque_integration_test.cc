#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/config.h"
#include "engine/fresque_collector.h"
#include "index/binning.h"
#include "record/dataset.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace {

engine::CollectorConfig MakeConfig(const record::DatasetSpec& spec,
                                   size_t num_cns) {
  engine::CollectorConfig cfg;
  cfg.dataset = spec;
  cfg.num_computing_nodes = num_cns;
  cfg.epsilon = 1.0;
  cfg.delta = 0.99;
  cfg.alpha = 2.0;
  cfg.seed = 12345;
  return cfg;
}

index::DomainBinning BinningOf(const record::DatasetSpec& spec) {
  auto b = index::DomainBinning::Create(spec.domain_min, spec.domain_max,
                                        spec.bin_width);
  EXPECT_TRUE(b.ok());
  return std::move(b).ValueOrDie();
}

class FresqueEndToEndTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FresqueEndToEndTest, IngestPublishQueryNasa) {
  auto spec = record::NasaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, GetParam());

  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x55));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  // Generate, remember ground truth, ingest.
  auto gen = record::MakeGenerator(*spec, 777);
  ASSERT_TRUE(gen.ok());
  std::vector<record::Record> truth;
  constexpr size_t kRecords = 3000;
  for (size_t i = 0; i < kRecords; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok()) << line;
    truth.push_back(std::move(*rec));
    collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
    ASSERT_TRUE(collector.Ingest(line).ok());
  }
  ASSERT_TRUE(collector.Publish().ok());
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();

  EXPECT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();
  EXPECT_EQ(collector.parse_errors(), 0u);

  // Publication 0 must be fully published with matching stats.
  auto stats = cloud_node.matching_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].pn, 0u);

  // Query a wide range and check recall against ground truth. DP noise
  // can prune negative leaves, so recall is high but not exactly 1.
  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{0, 200 * 1024.0};
  auto acc = client.QueryWithGroundTruth(server, q, truth);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  EXPECT_GT(acc->expected, 0u);
  // DP prunes leaves whose noisy count went negative, so a few percent of
  // records in sparse leaves are unreachable by design.
  EXPECT_GE(acc->Recall(), 0.90);
  EXPECT_LE(acc->Recall(), 1.0);
  // No false positives after client-side post-filtering.
  EXPECT_EQ(acc->matched, acc->returned);
}

INSTANTIATE_TEST_SUITE_P(VaryComputingNodes, FresqueEndToEndTest,
                         ::testing::Values(1, 2, 4));

TEST(FresqueCollectorTest, MultiplePublicationsAllArrive) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, 2);

  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x66));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 888);
  ASSERT_TRUE(gen.ok());
  constexpr int kIntervals = 3;
  constexpr int kPerInterval = 500;
  for (int interval = 0; interval < kIntervals; ++interval) {
    for (int i = 0; i < kPerInterval; ++i) {
      collector.SetIntervalProgress(static_cast<double>(i) / kPerInterval);
      ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
    }
    ASSERT_TRUE(collector.Publish().ok());
  }
  EXPECT_EQ(collector.current_publication(), 3u);
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();

  EXPECT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();
  EXPECT_EQ(cloud_node.matching_stats().size(), 3u);
  // Publication 3 was opened but never published: 4 publications known.
  EXPECT_EQ(server.num_publications(), 4u);

  // Reports carry all component timings for the three closed intervals.
  auto reports = collector.Reports();
  int complete = 0;
  for (const auto& r : reports) {
    if (r.pn < 3) {
      EXPECT_GT(r.real_records, 0u) << "pn " << r.pn;
      ++complete;
    }
  }
  EXPECT_EQ(complete, 3);
}

TEST(FresqueCollectorTest, ShutdownDrainsAndPublishesOpenPublication) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, 2);
  // Small delta => small randomer buffer, so records spill to the cloud
  // mid-interval; the drain-time publication must install the index over
  // that already-streamed metadata.
  cfg.delta = 0.51;

  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x77));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 999);
  ASSERT_TRUE(gen.ok());
  std::vector<record::Record> truth;
  for (int i = 0; i < 3000; ++i) {
    std::string line = (*gen)->NextLine();
    auto rec = spec->parser->Parse(line);
    ASSERT_TRUE(rec.ok());
    truth.push_back(std::move(*rec));
    ASSERT_TRUE(collector.Ingest(line).ok());
  }
  // No Publish(): Shutdown() drains — the open publication (including the
  // records still inside the randomer buffer) is published, not lost.
  ASSERT_TRUE(collector.Shutdown().ok());
  Status acked =
      collector.WaitForPublication(0, std::chrono::milliseconds(15000));
  EXPECT_TRUE(acked.ok()) << acked.ToString();
  cloud_node.Shutdown();

  ASSERT_EQ(cloud_node.matching_stats().size(), 1u);

  // The drain itself lost nothing: everything ingested left the
  // collector, and conservation holds at the cloud.
  engine::PublishReport report{};
  for (const auto& r : collector.Reports()) {
    if (r.pn == 0) report = r;
  }
  EXPECT_EQ(report.real_records, 3000u);
  EXPECT_EQ(server.total_records(),
            report.real_records - report.removed_records +
                report.dummy_records);

  client::Client client(keys, &spec->parser->schema());
  index::RangeQuery q{spec->domain_min, spec->domain_max};
  auto acc = client.QueryWithGroundTruth(server, q, truth);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  // δ=0.51 sizes the overflow arrays to fit each leaf's removed records
  // with only 51% probability, so some removed records drop at the
  // merger by design — but every drop is counted. Matched results plus
  // counted drops must cover the interval (the remainder is DP pruning
  // of negative leaves), which would fail loudly if Shutdown() lost the
  // randomer buffer instead.
  auto metrics = collector.Metrics();
  EXPECT_GE(acc->matched + metrics.overflow_drops,
            static_cast<uint64_t>(0.90 * acc->expected))
      << "matched=" << acc->matched
      << " overflow_drops=" << metrics.overflow_drops;
  EXPECT_EQ(acc->matched, acc->returned);  // no false positives
}

TEST(FresqueCollectorTest, IngestBeforeStartFails) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, 1);
  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();
  crypto::KeyManager keys(Bytes(32, 0x01));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  EXPECT_FALSE(collector.Ingest("1,1230768000,2").ok());
  cloud_node.inbox()->Push([] {
    net::Message m;
    m.type = net::MessageType::kShutdown;
    return m;
  }());
  cloud_node.Shutdown();
}

TEST(FresqueCollectorTest, ZeroComputingNodesRejected) {
  auto spec = record::GowallaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, 0);
  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  crypto::KeyManager keys(Bytes(32, 0x01));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  EXPECT_FALSE(collector.Start().ok());
}

#if FRESQUE_TELEMETRY_ENABLED
// Record conservation across the whole pipeline, as seen by the metrics
// registry: after a full drain, every ingested frame (real or dummy) must
// be accounted for — accepted by the cloud, rejected by the cloud, or
// dropped at a named pipeline stage. A leak on either side of the ledger
// means a counter is missing or a record vanished silently.
TEST(TelemetryInvariantsTest, RecordCountersConserveAcrossPipeline) {
  telemetry::Registry::Global()->ResetForTest();

  auto spec = record::NasaDataset();
  ASSERT_TRUE(spec.ok());
  auto cfg = MakeConfig(*spec, 3);

  cloud::CloudServer server(BinningOf(*spec));
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  crypto::KeyManager keys(Bytes(32, 0x55));
  engine::FresqueCollector collector(cfg, keys, cloud_node.inbox());
  ASSERT_TRUE(collector.Start().ok());

  auto gen = record::MakeGenerator(*spec, 4242);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kRecords = 2000;
  constexpr size_t kIntervals = 2;
  for (size_t interval = 0; interval < kIntervals; ++interval) {
    for (size_t i = 0; i < kRecords; ++i) {
      collector.SetIntervalProgress(static_cast<double>(i) / kRecords);
      ASSERT_TRUE(collector.Ingest((*gen)->NextLine()).ok());
    }
    ASSERT_TRUE(collector.Publish().ok());
  }
  ASSERT_TRUE(collector.Shutdown().ok());
  cloud_node.Shutdown();
  ASSERT_TRUE(cloud_node.first_error().ok())
      << cloud_node.first_error().ToString();

  telemetry::MetricsSnapshot snap =
      telemetry::Registry::Global()->Snapshot();
  auto counter = [&snap](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return 0;
  };

  const uint64_t in = counter("ingest.records_in");
  const uint64_t dummies = counter("ingest.dummy_records");
  const uint64_t arrived = counter("cloud.records_in");
  const uint64_t rejected = counter("cloud.records_rejected");
  const uint64_t removed = counter("collector.records_removed");
  const uint64_t dropped = counter("collector.parse_errors") +
                           counter("collector.codec_failures") +
                           counter("collector.pending_dropped");
  EXPECT_EQ(in, static_cast<uint64_t>(kRecords) * kIntervals);
  EXPECT_EQ(in + dummies, arrived + rejected + removed + dropped)
      << "records leaked: in=" << in << " dummies=" << dummies
      << " arrived=" << arrived << " rejected=" << rejected
      << " removed=" << removed << " dropped=" << dropped;
  EXPECT_EQ(counter("collector.publications_shipped"),
            counter("cloud.publications_installed") +
                counter("cloud.publications_failed"));
  EXPECT_EQ(counter("cloud.publications_failed"), 0u);

  // The end-to-end latency histogram must have seen every accepted record.
  for (const auto& h : snap.histograms) {
    if (h.name == "pipeline.record_e2e_ns") {
      EXPECT_EQ(h.count, arrived);
    }
  }
}
#endif  // FRESQUE_TELEMETRY_ENABLED

}  // namespace
}  // namespace fresque
