// fresque_cli — command-line front door to the library:
//
//   fresque_cli generate <nasa|gowalla> <count> <lines.txt>
//   fresque_cli ingest   <nasa|gowalla> <lines.txt> <snapshot.bin>
//                        [epsilon] [nodes] [interval_records] [key_hex]
//   fresque_cli query    <nasa|gowalla> <snapshot.bin> <lo> <hi> [key_hex]
//   fresque_cli verify   <nasa|gowalla> <snapshot.bin> [key_hex]
//   fresque_cli inspect  <snapshot.bin>
//
// `ingest` runs the full FRESQUE collector over the file, publishing every
// `interval_records` lines, then persists the cloud state; `query` and
// `verify` operate on the persisted snapshot. The key (hex master secret,
// default a fixed demo key) must match between ingest and query/verify.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "client/client.h"
#include "cloud/server.h"
#include "common/bytes.h"
#include "crypto/key_manager.h"
#include "engine/cloud_node.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"

namespace {

using namespace fresque;

constexpr const char* kDefaultKeyHex =
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f";

int Fail(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  return 1;
}

Result<record::DatasetSpec> SpecByName(const std::string& name) {
  if (name == "nasa") return record::NasaDataset();
  if (name == "gowalla") return record::GowallaDataset();
  return Status::InvalidArgument("unknown dataset " + name +
                                 " (want nasa|gowalla)");
}

crypto::KeyManager KeysFromHex(const std::string& hex) {
  auto bytes = FromHex(hex);
  if (!bytes.ok() || bytes->empty()) {
    std::cerr << "warning: bad key hex, using demo key\n";
    bytes = FromHex(kDefaultKeyHex);
  }
  return crypto::KeyManager(std::move(*bytes));
}

int CmdGenerate(const std::string& dataset, size_t count,
                const std::string& path) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto gen = record::MakeGenerator(*spec, 20210323);
  if (!gen.ok()) return Fail(gen.status().ToString());
  std::ofstream out(path);
  if (!out) return Fail("cannot open " + path);
  for (size_t i = 0; i < count; ++i) out << (*gen)->NextLine() << "\n";
  std::cout << "wrote " << count << " " << dataset << " lines to " << path
            << "\n";
  return 0;
}

int CmdIngest(const std::string& dataset, const std::string& in_path,
              const std::string& snap_path, double epsilon, size_t nodes,
              size_t interval, const std::string& key_hex) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::ifstream in(in_path);
  if (!in) return Fail("cannot open " + in_path);

  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);
  cloud_node.Start();

  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.epsilon = epsilon;
  cfg.num_computing_nodes = nodes;
  engine::FresqueCollector collector(cfg, KeysFromHex(key_hex),
                                     cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  if (auto st = collector.Start(); !st.ok()) return Fail(st.ToString());

  std::string line;
  size_t total = 0, in_interval = 0, publications = 0;
  while (std::getline(in, line)) {
    collector.SetIntervalProgress(static_cast<double>(in_interval) /
                                  static_cast<double>(interval));
    if (auto st = collector.Ingest(line); !st.ok()) {
      return Fail(st.ToString());
    }
    ++total;
    if (++in_interval >= interval) {
      if (auto st = collector.Publish(); !st.ok()) {
        return Fail(st.ToString());
      }
      in_interval = 0;
      ++publications;
    }
  }
  // The trailing partial interval is drained by Shutdown() itself; wait
  // for the cloud to acknowledge it so the snapshot is complete.
  uint64_t last_pn = collector.current_publication();
  if (auto st = collector.Shutdown(); !st.ok()) return Fail(st.ToString());
  if (in_interval > 0) {
    Status acked =
        collector.WaitForPublication(last_pn, std::chrono::seconds(30));
    if (!acked.ok()) return Fail("drained publication: " + acked.ToString());
    ++publications;
  }
  cloud_node.Shutdown();
  if (!cloud_node.first_error().ok()) {
    return Fail(cloud_node.first_error().ToString());
  }
  if (auto st = server.SaveSnapshot(snap_path); !st.ok()) {
    return Fail(st.ToString());
  }
  auto metrics = collector.Metrics();
  std::cout << "ingested " << total << " lines ("
            << collector.parse_errors() << " parse errors), published "
            << publications << " publication(s), snapshot " << snap_path
            << " (" << server.total_bytes() << " payload bytes)\n"
            << "collector drops: " << metrics.TotalDrops()
            << " (parse " << metrics.parse_errors << ", codec "
            << metrics.codec_failures << ", pending "
            << metrics.pending_dropped << ", overflow "
            << metrics.overflow_drops << ")\n";
  return 0;
}

int CmdQuery(const std::string& dataset, const std::string& snap_path,
             double lo, double hi, const std::string& key_hex) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());

  client::Client client(KeysFromHex(key_hex), &spec->parser->schema());
  auto records = client.Query(**server, {lo, hi});
  if (!records.ok()) return Fail(records.status().ToString());
  std::cout << records->size() << " records match ["
            << lo << ", " << hi << "]\n";
  for (size_t i = 0; i < records->size() && i < 5; ++i) {
    std::cout << "  " << (*records)[i].ToString() << "\n";
  }
  if (records->size() > 5) std::cout << "  ...\n";
  return 0;
}

int CmdVerify(const std::string& dataset, const std::string& snap_path,
              const std::string& key_hex) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());
  client::Client client(KeysFromHex(key_hex), &spec->parser->schema());

  size_t verified = 0, failed = 0;
  for (uint64_t pn = 0; pn < (*server)->num_publications() + 8; ++pn) {
    Status st = client.VerifyPublication(**server, pn);
    if (st.ok()) {
      ++verified;
      std::cout << "publication " << pn << ": OK\n";
    } else if (!st.IsNotFound()) {
      ++failed;
      std::cout << "publication " << pn << ": " << st.ToString() << "\n";
    }
  }
  std::cout << verified << " verified, " << failed << " failed\n";
  return failed == 0 ? 0 : 2;
}

int CmdInspect(const std::string& snap_path) {
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());
  const auto& binning = (*server)->binning();
  std::cout << "snapshot " << snap_path << "\n"
            << "  domain [" << binning.domain_min() << ", "
            << binning.domain_max() << "), " << binning.num_bins()
            << " bins of " << binning.bin_width() << "\n"
            << "  publications: " << (*server)->num_publications() << "\n"
            << "  stored records: " << (*server)->total_records() << "\n"
            << "  payload bytes: " << (*server)->total_bytes() << "\n";
  return 0;
}

int Usage() {
  std::cerr
      << "usage:\n"
      << "  fresque_cli generate <nasa|gowalla> <count> <lines.txt>\n"
      << "  fresque_cli ingest <nasa|gowalla> <lines.txt> <snapshot.bin>"
         " [epsilon] [nodes] [interval] [key_hex]\n"
      << "  fresque_cli query <nasa|gowalla> <snapshot.bin> <lo> <hi>"
         " [key_hex]\n"
      << "  fresque_cli verify <nasa|gowalla> <snapshot.bin> [key_hex]\n"
      << "  fresque_cli inspect <snapshot.bin>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  try {
    if (cmd == "generate" && args.size() == 4) {
      return CmdGenerate(args[1], std::stoul(args[2]), args[3]);
    }
    if (cmd == "ingest" && args.size() >= 4) {
      double epsilon = args.size() > 4 ? std::stod(args[4]) : 1.0;
      size_t nodes = args.size() > 5 ? std::stoul(args[5]) : 4;
      size_t interval = args.size() > 6 ? std::stoul(args[6]) : 100000;
      std::string key = args.size() > 7 ? args[7] : kDefaultKeyHex;
      return CmdIngest(args[1], args[2], args[3], epsilon, nodes, interval,
                       key);
    }
    if (cmd == "query" && args.size() >= 5) {
      std::string key = args.size() > 5 ? args[5] : kDefaultKeyHex;
      return CmdQuery(args[1], args[2], std::stod(args[3]),
                      std::stod(args[4]), key);
    }
    if (cmd == "verify" && args.size() >= 3) {
      std::string key = args.size() > 3 ? args[3] : kDefaultKeyHex;
      return CmdVerify(args[1], args[2], key);
    }
    if (cmd == "inspect" && args.size() == 2) {
      return CmdInspect(args[1]);
    }
  } catch (const std::exception& e) {
    return Fail(std::string("bad argument: ") + e.what());
  }
  return Usage();
}
