// fresque_cli — command-line front door to the library:
//
//   fresque_cli generate <nasa|gowalla> <count> <lines.txt>
//   fresque_cli ingest   <nasa|gowalla> <lines.txt> <snapshot.bin>
//                        [epsilon] [nodes] [interval_records] [key_hex]
//   fresque_cli query    <nasa|gowalla> <snapshot.bin> <lo> <hi> [key_hex]
//   fresque_cli verify   <nasa|gowalla> <snapshot.bin> [key_hex]
//   fresque_cli inspect  <snapshot.bin>
//   fresque_cli wal-dump <data-dir>
//   fresque_cli recover  <data-dir> [snapshot.bin]
//   fresque_cli metrics-dump <metrics.json>
//
// `ingest` runs the full FRESQUE collector over the file, publishing every
// `interval_records` lines, then persists the cloud state; `query` and
// `verify` operate on the persisted snapshot. The key (hex master secret,
// default a fixed demo key) must match between ingest and query/verify.
//
// Durability flags (apply to `ingest`):
//   --data-dir=<dir>      write-ahead log + snapshots live here; every
//                         publication ack then implies the install is
//                         durable, and `recover` rebuilds the store after
//                         a crash
//   --fsync=<policy>      always | interval | interval:<ms> | never
//   --snapshot-every=<n>  snapshot + truncate the WAL every n installs
//                         (0 = only the final snapshot)
//
// Observability flags (apply to `ingest`, see DESIGN.md §11):
//   --metrics-out=<file>        dump the metrics registry periodically and
//                               at exit; JSON when the path ends in .json,
//                               Prometheus text exposition otherwise
//   --metrics-interval-ms=<n>   dump period (default 1000)
//   --trace-out=<file>          capture spans and write a Chrome
//                               trace_event JSON; open in chrome://tracing
//                               or https://ui.perfetto.dev
//
// Live-observability flags (apply to `ingest`, see DESIGN.md §16):
//   --obs-addr=<[host:]port>    serve GET /metrics /healthz /readyz
//                               /statusz /flightz on this address for the
//                               duration of the run (port 0 = ephemeral;
//                               the bound port is printed at startup)
//   --slo-e2e-ms=<n>            end-to-end latency SLO target; samples
//                               above it burn `slo.e2e_violations`
//                               (0 = SLO accounting off)
//   --flight-capacity=<n>       flight-recorder ring size in events
//                               (default 4096); the ring is dumped to
//                               stderr (and <data-dir>/flight.dump when
//                               --data-dir is set) on SIGSEGV/SIGABRT/
//                               SIGTERM and served live at /flightz
//
// Query-engine flags (apply to `query`, see DESIGN.md §15):
//   --query-threads=<n>      executor worker threads (default 2)
//   --query-queue=<n>        admission bound: queued queries beyond this
//                            are shed with kOverloaded (default 64)
//   --query-deadline-ms=<n>  per-query deadline (0 = unbounded)
//   --repeat=<n>             run the range n times and report p50/p95/p99
//
// Overload-control flags (apply to `ingest`, see DESIGN.md §13):
//   --static-batching           disable the per-node adaptive batching
//                               controller and apply the batch/linger
//                               knobs verbatim (the pre-adaptive behavior)
//   --admission-rps=<rate>      enable admission control with a token
//                               bucket capping the admitted rate; shed
//                               lines are skipped and counted, not fatal
//   --shed-watermarks=<lo>:<hi> queue-fill fractions above which kLow /
//                               kNormal records are shed (default
//                               0.50:0.85; only meaningful with
//                               --admission-rps, which enables the gate)

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <algorithm>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "common/bytes.h"
#include "query/executor.h"
#include "crypto/key_manager.h"
#include "durability/metrics.h"
#include "durability/recovery.h"
#include "durability/snapshot_manager.h"
#include "durability/wal.h"
#include "engine/cloud_node.h"
#include "engine/config.h"
#include "engine/fresque_collector.h"
#include "record/dataset.h"
#include "shard/pipeline.h"
#include "shard/sharded_cloud.h"
#include "telemetry/telemetry.h"

#if FRESQUE_TELEMETRY_ENABLED
#include "obs/flight_recorder.h"
#include "obs/sampler.h"
#include "obs/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#endif

namespace {

using namespace fresque;

constexpr const char* kDefaultKeyHex =
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f";

int Fail(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  return 1;
}

Result<record::DatasetSpec> SpecByName(const std::string& name) {
  if (name == "nasa") return record::NasaDataset();
  if (name == "gowalla") return record::GowallaDataset();
  return Status::InvalidArgument("unknown dataset " + name +
                                 " (want nasa|gowalla)");
}

crypto::KeyManager KeysFromHex(const std::string& hex) {
  auto bytes = FromHex(hex);
  if (!bytes.ok() || bytes->empty()) {
    std::cerr << "warning: bad key hex, using demo key\n";
    bytes = FromHex(kDefaultKeyHex);
  }
  return crypto::KeyManager(std::move(*bytes));
}

int CmdGenerate(const std::string& dataset, size_t count,
                const std::string& path) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto gen = record::MakeGenerator(*spec, 20210323);
  if (!gen.ok()) return Fail(gen.status().ToString());
  std::ofstream out(path);
  if (!out) return Fail("cannot open " + path);
  for (size_t i = 0; i < count; ++i) out << (*gen)->NextLine() << "\n";
  std::cout << "wrote " << count << " " << dataset << " lines to " << path
            << "\n";
  return 0;
}

/// Observability options parsed from --metrics-out/--trace-out.
struct TelemetryOptions {
  std::string metrics_out;
  std::string trace_out;
  size_t metrics_interval_ms = 1000;

  bool any() const { return !metrics_out.empty() || !trace_out.empty(); }
};

/// Overload-control options parsed from --static-batching /
/// --admission-rps / --shed-watermarks.
struct OverloadOptions {
  bool static_batching = false;
  double admission_rps = 0;  // > 0 enables admission control
  double shed_low_watermark = 0.50;
  double shed_high_watermark = 0.85;
};

#if FRESQUE_TELEMETRY_ENABLED

/// Background thread dumping the registry to `path` every interval, plus
/// a final dump on destruction (so short runs still produce a file).
class MetricsDumper {
 public:
  MetricsDumper(std::string path, size_t interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~MetricsDumper() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Dump();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_));
      if (stop_) break;
      lock.unlock();
      Dump();
      lock.lock();
    }
  }

  void Dump() {
    auto snap = telemetry::Registry::Global()->Snapshot();
    if (auto st = telemetry::WriteMetricsFile(snap, path_); !st.ok()) {
      std::cerr << "warning: metrics dump: " << st.ToString() << "\n";
    }
  }

  std::string path_;
  size_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

#endif  // FRESQUE_TELEMETRY_ENABLED

/// Knobs for the `query` subcommand's executor path.
struct QueryCliOptions {
  size_t threads = 2;        ///< --query-threads
  size_t queue = 64;         ///< --query-queue (admission bound)
  uint64_t deadline_ms = 0;  ///< --query-deadline-ms (0 = unbounded)
  size_t repeat = 1;         ///< --repeat (same range, reports latency)
};

/// `--shards` / `--shard-by` / `--epsilon-composition` (DESIGN.md §17).
struct ShardCliOptions {
  fresque::shard::ShardOptions opts;
  bool sharded() const { return opts.num_shards > 1; }
};

/// Where shard `i` of a sharded ingest persists its snapshot: the
/// unsharded path plus a `.shard-<i>` suffix, so `query --shards=N` can
/// reassemble the fleet from the base path alone.
std::string ShardSnapshotPath(const std::string& snap_path, size_t i) {
  return snap_path + ".shard-" + std::to_string(i);
}

bool HasDurabilityState(const std::string& dir) {
  if (std::filesystem::exists(dir + "/MANIFEST")) return true;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) return true;
  }
  return false;
}

/// `ingest --shards=N`: the sharded scale-out path (DESIGN.md §17). One
/// ShardedPipeline replaces the collector+cloud-node pair: a router fans
/// raw lines out to N full collector pipelines, each with its own cloud
/// slice, publication counter, durability directory (`<data-dir>/
/// shard-<i>`) and DP budget per the placement's composition rule. Each
/// shard's final state lands in `<snapshot.bin>.shard-<i>`; query them
/// back with the same `--shards`/`--shard-by` values.
int CmdIngestSharded(const std::string& dataset, const std::string& in_path,
                     const std::string& snap_path, double epsilon,
                     size_t nodes, size_t interval, const std::string& key_hex,
                     const engine::DurabilityConfig& dur,
                     const OverloadOptions& ovl, const engine::ObsConfig& obs,
                     const ShardCliOptions& shards) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::ifstream in(in_path);
  if (!in) return Fail("cannot open " + in_path);
  if (ovl.static_batching || ovl.admission_rps > 0) {
    std::cerr << "warning: overload-control flags are per-collector and"
                 " not yet wired through --shards; ignored\n";
  }

  if (dur.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(dur.data_dir, ec);
    for (size_t i = 0; i < shards.opts.num_shards; ++i) {
      const std::string sdir = shard::ShardDataDir(dur.data_dir, i);
      if (std::filesystem::exists(sdir) && HasDurabilityState(sdir)) {
        return Fail("shard data dir " + sdir +
                    " already holds durability state; recover it first or"
                    " pick a fresh directory");
      }
    }
  }

  shard::ShardedPipelineConfig cfg;
  cfg.collector.dataset = *spec;
  cfg.collector.epsilon = epsilon;
  cfg.collector.num_computing_nodes = nodes;
  cfg.shard = shards.opts;
  cfg.durability = dur;
  shard::ShardedPipeline pipe(cfg, KeysFromHex(key_hex));
  if (auto st = pipe.Start(); !st.ok()) return Fail(st.ToString());

#if FRESQUE_TELEMETRY_ENABLED
  std::unique_ptr<obs::ObsServer> obs_server;
  std::atomic<bool> obs_ready{true};
  if (obs.enabled()) {
    auto parsed = obs::ParseObsAddr(obs.addr);
    if (!parsed.ok()) {
      return Fail("bad --obs-addr: " + parsed.status().ToString());
    }
    obs::ObsServerOptions oopts;
    oopts.host = parsed->first;
    oopts.port = parsed->second;
    oopts.sample_interval_ms = obs.sample_interval_ms;
    oopts.ready_source = [&obs_ready] {
      return obs_ready.load(std::memory_order_relaxed);
    };
    oopts.fold = [&pipe] { pipe.ExportTelemetry(); };
    oopts.status_source = [&pipe] {
      obs::StatusSnapshot s;
      auto m = pipe.Metrics();
      s.shards.reserve(m.shards.size());
      for (const auto& sh : m.shards) {
        obs::StatusSnapshot::Shard row;
        row.shard = sh.shard;
        row.routed = sh.routed;
        row.ingress_depth = sh.ingress_depth;
        row.ingress_capacity = sh.ingress_capacity;
        row.ingress_watermark = sh.ingress_high_watermark;
        row.view_epoch = sh.view_epoch;
        row.publications = sh.publications;
        row.records = sh.records;
        s.view_epoch = std::max<uint64_t>(s.view_epoch, sh.view_epoch);
        s.publications = std::max<uint64_t>(s.publications, sh.publications);
        s.total_records += sh.records;
        s.shards.push_back(row);
      }
      s.open_publication = static_cast<int64_t>(pipe.current_publication());
      return s;
    };
    obs_server = std::make_unique<obs::ObsServer>(std::move(oopts));
    if (auto st = obs_server->Start(); !st.ok()) {
      return Fail("obs server: " + st.ToString());
    }
    std::cout << "obs: listening on http://" << parsed->first << ":"
              << obs_server->port() << " (/metrics /healthz /readyz"
              << " /statusz /flightz)" << std::endl;
  }
#else
  if (obs.enabled()) {
    std::cerr << "warning: built with FRESQUE_TELEMETRY=OFF;"
                 " --obs-addr is a no-op\n";
  }
#endif

  std::string line;
  size_t total = 0, in_interval = 0, publications = 0;
  while (std::getline(in, line)) {
    if (auto st = pipe.Ingest(line); !st.ok()) return Fail(st.ToString());
    ++total;
    if (++in_interval >= interval) {
      if (auto st = pipe.Publish(); !st.ok()) return Fail(st.ToString());
      in_interval = 0;
      ++publications;
    }
  }
#if FRESQUE_TELEMETRY_ENABLED
  obs_ready.store(false, std::memory_order_relaxed);
#endif
  // Shutdown flushes the router, drains every shard and publishes each
  // open interval, waiting for the final cloud acks.
  if (auto st = pipe.Shutdown(); !st.ok()) return Fail(st.ToString());
  if (in_interval > 0) ++publications;
#if FRESQUE_TELEMETRY_ENABLED
  pipe.ExportTelemetry();
  if (obs_server) {
    obs_server->Stop();
    std::cout << "obs: served " << obs_server->requests()
              << " HTTP request(s)\n";
  }
#endif

  auto m = pipe.Metrics();
  std::cout << "ingested " << total << " lines across "
            << shards.opts.num_shards << " "
            << shard::ToString(shards.opts.shard_by) << " shard(s) ("
            << m.router.extract_fallbacks << " routed by fallback hash), "
            << publications << " publication barrier(s), epsilon "
            << pipe.placement().ShardEpsilon(epsilon) << "/shard ["
            << shard::ToString(pipe.placement().effective_composition())
            << " composition]\n";
  uint64_t routed_sum = 0;
  for (const auto& sh : m.shards) {
    routed_sum += sh.routed;
    const std::string spath = ShardSnapshotPath(snap_path, sh.shard);
    if (auto st = pipe.cloud()->shard(sh.shard)->SaveSnapshot(spath);
        !st.ok()) {
      return Fail("shard " + std::to_string(sh.shard) +
                  " snapshot: " + st.ToString());
    }
    std::cout << "  shard " << sh.shard << ": " << sh.routed << " routed, "
              << sh.records << " stored record(s), ingress watermark "
              << sh.ingress_high_watermark << "/" << sh.ingress_capacity
              << ", " << sh.publications << " publication(s) -> " << spath
              << "\n";
  }
  // Conservation ledger: every ingested line was routed to exactly one
  // shard; a mismatch here is a router bug, not an operational condition.
  if (routed_sum != total || m.router.routed != total) {
    return Fail("conservation violated: ingested " + std::to_string(total) +
                " but routed " + std::to_string(routed_sum));
  }
  std::cout << "conservation: " << total << " ingested == " << routed_sum
            << " routed (exactly-once placement)\n";
  return 0;
}

/// `query --shards=N`: reassembles the sharded cloud from the per-shard
/// snapshots CmdIngestSharded wrote and fans the range query out across
/// the shards whose slice intersects it, merging with exact accounting.
int CmdQuerySharded(const std::string& dataset, const std::string& snap_path,
                    double lo, double hi, const std::string& key_hex,
                    const QueryCliOptions& opts,
                    const ShardCliOptions& shards) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto placement = shard::ShardPlacement::Create(*spec, shards.opts);
  if (!placement.ok()) return Fail(placement.status().ToString());
  auto cloud = std::make_unique<shard::ShardedCloudServer>(*placement);
  for (size_t i = 0; i < placement->num_shards(); ++i) {
    auto srv = cloud::CloudServer::LoadSnapshot(ShardSnapshotPath(snap_path, i));
    if (!srv.ok()) {
      return Fail("shard " + std::to_string(i) + ": " +
                  srv.status().ToString() +
                  " (was the ingest run with the same --shards/--shard-by?)");
    }
    if (auto st = cloud->AdoptShard(i, std::move(*srv)); !st.ok()) {
      return Fail("shard " + std::to_string(i) + ": " + st.ToString());
    }
  }

  // Same executor front door as the unsharded path: the fan-out runs
  // under the worker's deadline/cancellation context on every shard.
  query::ExecutorOptions eo;
  eo.num_threads = opts.threads;
  eo.queue_capacity = opts.queue;
  eo.default_deadline = std::chrono::milliseconds(opts.deadline_ms);
  shard::ShardedCloudServer* srv = cloud.get();
  query::QueryExecutor executor(
      [srv](const index::RangeQuery& q, const query::QueryContext& ctx) {
        return srv->ExecuteQuery(q, ctx);
      },
      eo);

  client::Client client(KeysFromHex(key_hex), &spec->parser->schema());
  const index::RangeQuery q{lo, hi};
  std::vector<double> latencies_ms;
  latencies_ms.reserve(opts.repeat);
  Result<cloud::QueryResult> last = cloud::QueryResult{};
  for (size_t i = 0; i < opts.repeat; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    last = executor.Execute(q);
    auto t1 = std::chrono::steady_clock::now();
    if (!last.ok()) return Fail(last.status().ToString());
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  executor.Shutdown();
  auto records = client.Decrypt(*last, q);
  if (!records.ok()) return Fail(records.status().ToString());

  std::cout << records->size() << " records match [" << lo << ", " << hi
            << "]\n";
  for (size_t i = 0; i < records->size() && i < 5; ++i) {
    std::cout << "  " << (*records)[i].ToString() << "\n";
  }
  if (records->size() > 5) std::cout << "  ...\n";
  if (opts.repeat > 1) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto pct = [&](double p) {
      size_t i = static_cast<size_t>(p * (latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    std::cout << "latency over " << opts.repeat << " runs: p50 " << pct(0.50)
              << " ms, p95 " << pct(0.95) << " ms, p99 " << pct(0.99)
              << " ms\n";
  }

  // The fan-out ledger: which shards were probed, what each contributed,
  // and that the per-shard counts sum to the merged result.
  shard::FanoutStats stats;
  auto direct = cloud->ExecuteQuery(q, &stats);
  if (!direct.ok()) return Fail(direct.status().ToString());
  std::cout << "fan-out: " << stats.probed.size() << " shard(s) probed, "
            << stats.shards_pruned << " pruned by the placement\n";
  for (const auto& s : stats.probed) {
    std::cout << "  shard " << s.shard << " (view epoch " << s.view_epoch
              << "): " << s.indexed_records << " indexed + "
              << s.overflow_records << " overflow + " << s.unindexed_records
              << " unindexed = " << s.Total() << "\n";
  }
  std::cout << "ledger: " << stats.TotalRecords()
            << " across probed shards == " << direct->TotalRecords()
            << " merged ciphertext(s)\n";
  return stats.TotalRecords() == direct->TotalRecords() ? 0 : 2;
}

int CmdIngest(const std::string& dataset, const std::string& in_path,
              const std::string& snap_path, double epsilon, size_t nodes,
              size_t interval, const std::string& key_hex,
              const engine::DurabilityConfig& dur,
              const TelemetryOptions& tel, const OverloadOptions& ovl,
              const engine::ObsConfig& obs) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  std::ifstream in(in_path);
  if (!in) return Fail("cannot open " + in_path);

#if FRESQUE_TELEMETRY_ENABLED
  std::unique_ptr<MetricsDumper> dumper;
  if (!tel.metrics_out.empty()) {
    dumper = std::make_unique<MetricsDumper>(tel.metrics_out,
                                             tel.metrics_interval_ms);
  }
  if (!tel.trace_out.empty()) {
    telemetry::Tracer::Global()->Enable();
    telemetry::Tracer::Global()->SetCurrentThreadName("dispatcher");
  }
#else
  if (tel.any() || obs.enabled() || obs.slo_e2e_ms > 0) {
    std::cerr << "warning: built with FRESQUE_TELEMETRY=OFF;"
                 " --metrics-out/--trace-out/--obs-addr/--slo-e2e-ms are"
                 " no-ops\n";
  }
#endif

#if FRESQUE_TELEMETRY_ENABLED
  // Flight recorder first: capacity must land before the first event, and
  // the crash handlers before any pipeline thread that could fault. The
  // dump lands on stderr always, plus <data-dir>/flight.dump when a data
  // dir exists (crash forensics next to the WAL they explain).
  if (!obs::FlightRecorder::ConfigureGlobalCapacity(obs.flight_capacity)) {
    std::cerr << "warning: --flight-capacity=" << obs.flight_capacity
              << " ignored (out of range or recorder already created)\n";
  }
  obs::InstallCrashHandlers(dur.enabled() ? dur.data_dir + "/flight.dump"
                                          : std::string());
  obs::SetSloE2eTargetNs(static_cast<int64_t>(obs.slo_e2e_ms) * 1000000);
#endif

  auto binning = index::DomainBinning::Create(
      spec->domain_min, spec->domain_max, spec->bin_width);
  cloud::CloudServer server(std::move(binning).ValueOrDie());
  engine::CloudNode cloud_node(&server);

  std::unique_ptr<durability::Wal> wal;
  std::unique_ptr<durability::SnapshotManager> snapshots;
  if (dur.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(dur.data_dir, ec);
    if (HasDurabilityState(dur.data_dir)) {
      return Fail("data dir " + dur.data_dir +
                  " already holds durability state; run"
                  " `fresque_cli recover` on it or pick a fresh directory");
    }
    durability::WalOptions wopts;
    wopts.dir = dur.data_dir;
    wopts.fsync_policy = dur.fsync_policy;
    wopts.fsync_interval_ms = dur.fsync_interval_ms;
    wopts.segment_bytes = dur.wal_segment_bytes;
    auto opened = durability::Wal::Open(std::move(wopts));
    if (!opened.ok()) return Fail(opened.status().ToString());
    wal = std::move(*opened);
    durability::SnapshotOptions sopts;
    sopts.dir = dur.data_dir;
    sopts.snapshot_every_installs = dur.snapshot_every_installs;
    snapshots = std::make_unique<durability::SnapshotManager>(
        sopts, &server, wal.get());
    if (auto st = cloud_node.AttachDurability(wal.get(), snapshots.get());
        !st.ok()) {
      return Fail(st.ToString());
    }
  }
  cloud_node.Start();

  engine::CollectorConfig cfg;
  cfg.dataset = *spec;
  cfg.epsilon = epsilon;
  cfg.num_computing_nodes = nodes;
  cfg.adaptive_batching = !ovl.static_batching;
  if (ovl.admission_rps > 0) {
    cfg.admission.enabled = true;
    cfg.admission.rate_records_per_sec = ovl.admission_rps;
    cfg.admission.shed_low_watermark = ovl.shed_low_watermark;
    cfg.admission.shed_high_watermark = ovl.shed_high_watermark;
  }
  engine::FresqueCollector collector(cfg, KeysFromHex(key_hex),
                                     cloud_node.inbox());
  cloud_node.RouteAcksTo(collector.publication_acks());
  if (auto st = collector.Start(); !st.ok()) return Fail(st.ToString());

  // Mirrors the dispatcher's current publication for `/statusz` readers
  // on the obs HTTP thread (current_publication() itself is
  // dispatcher-thread state).
  std::atomic<int64_t> open_pn{0};

#if FRESQUE_TELEMETRY_ENABLED
  // The observability plane (DESIGN.md §16). Declared after the collector
  // so it is destroyed (and its sampler/HTTP threads joined) first — the
  // status/fold callbacks below capture the collector and cloud state by
  // reference.
  std::atomic<bool> obs_ready{true};
  const bool dur_on = dur.enabled();
  std::unique_ptr<obs::ObsServer> obs_server;
  if (obs.enabled()) {
    auto parsed = obs::ParseObsAddr(obs.addr);
    if (!parsed.ok()) {
      return Fail("bad --obs-addr: " + parsed.status().ToString());
    }
    obs::ObsServerOptions oopts;
    oopts.host = parsed->first;
    oopts.port = parsed->second;
    oopts.sample_interval_ms = obs.sample_interval_ms;
    oopts.ready_source = [&obs_ready] {
      return obs_ready.load(std::memory_order_relaxed);
    };
    oopts.fold = [&collector, &cloud_node, dur_on] {
      engine::ExportToRegistry(collector.Metrics());
      if (dur_on) {
        durability::ExportToRegistry(cloud_node.durability_metrics());
      }
    };
    oopts.status_source = [&collector, &cloud_node, &server, &open_pn,
                           dur_on] {
      obs::StatusSnapshot s;
      auto m = collector.Metrics();
      s.nodes.reserve(m.nodes.size());
      for (const auto& n : m.nodes) {
        s.nodes.push_back({n.name, n.inbox.depth, n.inbox.capacity,
                           n.inbox.high_watermark, n.frames_processed});
      }
      s.view_epoch = server.view_epoch();
      s.publications = m.publications_completed;
      s.open_publication = open_pn.load(std::memory_order_relaxed);
      s.total_records = server.total_records();
      if (dur_on) {
        auto dm = cloud_node.durability_metrics();
        s.wal_frames = dm.wal_frames;
        s.wal_bytes = dm.wal_bytes;
        s.wal_segments =
            dm.wal_segments_created - dm.wal_segments_deleted;
        s.snapshots_written = dm.snapshots_written;
        s.last_snapshot_millis =
            static_cast<int64_t>(dm.last_snapshot_millis);
      }
      return s;
    };
    obs_server = std::make_unique<obs::ObsServer>(std::move(oopts));
    if (auto st = obs_server->Start(); !st.ok()) {
      return Fail("obs server: " + st.ToString());
    }
    // std::endl: scrape scripts tail the log for the bound (possibly
    // ephemeral) port, so this line must not sit in a full buffer.
    std::cout << "obs: listening on http://" << parsed->first << ":"
              << obs_server->port() << " (/metrics /healthz /readyz"
              << " /statusz /flightz)" << std::endl;
  }
#endif

  std::string line;
  size_t total = 0, in_interval = 0, publications = 0;
  while (std::getline(in, line)) {
    collector.SetIntervalProgress(static_cast<double>(in_interval) /
                                  static_cast<double>(interval));
    if (auto st = collector.Ingest(line); !st.ok()) {
      // A shed line is the admission gate doing its job, not a failure:
      // skip it (the count is reported below) and keep ingesting.
      if (st.IsOverloaded()) continue;
      return Fail(st.ToString());
    }
    ++total;
    if (++in_interval >= interval) {
      if (auto st = collector.Publish(); !st.ok()) {
        return Fail(st.ToString());
      }
      in_interval = 0;
      ++publications;
      open_pn.store(static_cast<int64_t>(collector.current_publication()),
                    std::memory_order_relaxed);
    }
  }
  // The trailing partial interval is drained by Shutdown() itself; wait
  // for the cloud to acknowledge it so the snapshot is complete.
  uint64_t last_pn = collector.current_publication();
#if FRESQUE_TELEMETRY_ENABLED
  obs_ready.store(false, std::memory_order_relaxed);  // /readyz goes 503
#endif
  if (auto st = collector.Shutdown(); !st.ok()) return Fail(st.ToString());
  if (in_interval > 0) {
    Status acked =
        collector.WaitForPublication(last_pn, std::chrono::seconds(30));
    if (!acked.ok()) return Fail("drained publication: " + acked.ToString());
    ++publications;
  }
  cloud_node.Shutdown();
  if (!cloud_node.first_error().ok()) {
    return Fail(cloud_node.first_error().ToString());
  }
  if (auto st = server.SaveSnapshot(snap_path); !st.ok()) {
    return Fail(st.ToString());
  }
  if (snapshots) {
    // Converge the data dir: snapshot the final state (including the
    // still-open interval's records) and truncate the covered WAL prefix.
    if (auto st = snapshots->WriteSnapshot(); !st.ok()) {
      return Fail("final durability snapshot: " + st.ToString());
    }
  }
  auto metrics = collector.Metrics();
  engine::ExportToRegistry(metrics);
  if (dur.enabled()) {
    durability::ExportToRegistry(cloud_node.durability_metrics());
  }
#if FRESQUE_TELEMETRY_ENABLED
  if (obs_server) {
    // Stop before the final metrics dump so the sampler's closing fold
    // (e2e quantiles, queue gauges) lands in the dumped snapshot.
    obs_server->Stop();
    std::cout << "obs: served " << obs_server->requests()
              << " HTTP request(s)\n";
  }
  dumper.reset();  // stop the thread and write the final snapshot
  if (!tel.trace_out.empty()) {
    telemetry::Tracer::Global()->Disable();
    auto stats = telemetry::Tracer::Global()->GetStats();
    if (auto st = telemetry::Tracer::Global()->WriteChromeTrace(tel.trace_out);
        !st.ok()) {
      return Fail("trace dump: " + st.ToString());
    }
    std::cout << "trace: " << stats.retained << " span(s) across "
              << stats.threads << " thread(s) -> " << tel.trace_out;
    if (stats.dropped > 0) {
      std::cout << " (" << stats.dropped << " dropped to ring wraparound)";
    }
    std::cout << "\n";
  }
  if (!tel.metrics_out.empty()) {
    std::cout << "metrics: " << tel.metrics_out << "\n";
  }
#endif
  std::cout << "ingested " << total << " lines ("
            << collector.parse_errors() << " parse errors"
            << (cfg.admission.enabled
                    ? ", " + std::to_string(collector.shed_records()) +
                          " shed at admission"
                    : "")
            << "), published "
            << publications << " publication(s), snapshot " << snap_path
            << " (" << server.total_bytes() << " payload bytes)\n"
            << "collector drops: " << metrics.TotalDrops()
            << " (parse " << metrics.parse_errors << ", codec "
            << metrics.codec_failures << ", pending "
            << metrics.pending_dropped << ", overflow "
            << metrics.overflow_drops << ")\n";
  if (dur.enabled()) {
    auto dm = cloud_node.durability_metrics();
    std::cout << "durability: " << dm.wal_frames << " WAL frame(s), "
              << dm.wal_bytes << " bytes, " << dm.wal_fsyncs << " fsync(s), "
              << dm.wal_segments_created << " segment(s) ("
              << dm.wal_segments_deleted << " truncated), "
              << dm.snapshots_written << " snapshot(s) in " << dur.data_dir
              << " [fsync=" << durability::FsyncPolicyToString(dur.fsync_policy)
              << "]\n";
  }
  return 0;
}

int CmdQuery(const std::string& dataset, const std::string& snap_path,
             double lo, double hi, const std::string& key_hex,
             const QueryCliOptions& opts) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());

  // Serve through the concurrent query engine (DESIGN.md §15): the
  // executor's workers scan the restored store's immutable view, with the
  // same admission/deadline semantics a live deployment gets.
  query::ExecutorOptions eo;
  eo.num_threads = opts.threads;
  eo.queue_capacity = opts.queue;
  eo.default_deadline =
      std::chrono::milliseconds(opts.deadline_ms);
  cloud::CloudServer* srv = server->get();
  query::QueryExecutor executor(
      [srv](const index::RangeQuery& q, const query::QueryContext& ctx) {
        return srv->ExecuteQuery(q, ctx);
      },
      eo);

  client::Client client(KeysFromHex(key_hex), &spec->parser->schema());
  const index::RangeQuery q{lo, hi};
  std::vector<double> latencies_ms;
  latencies_ms.reserve(opts.repeat);
  Result<cloud::QueryResult> last = cloud::QueryResult{};
  for (size_t i = 0; i < opts.repeat; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    last = executor.Execute(q);
    auto t1 = std::chrono::steady_clock::now();
    if (!last.ok()) return Fail(last.status().ToString());
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  auto records = client.Decrypt(*last, q);
  if (!records.ok()) return Fail(records.status().ToString());

  std::cout << records->size() << " records match ["
            << lo << ", " << hi << "]\n";
  for (size_t i = 0; i < records->size() && i < 5; ++i) {
    std::cout << "  " << (*records)[i].ToString() << "\n";
  }
  if (records->size() > 5) std::cout << "  ...\n";

  if (opts.repeat > 1) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto pct = [&](double p) {
      size_t i = static_cast<size_t>(p * (latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    std::cout << "latency over " << opts.repeat << " runs: p50 " << pct(0.50)
              << " ms, p95 " << pct(0.95) << " ms, p99 " << pct(0.99)
              << " ms\n";
  }
  executor.Shutdown();
  auto m = executor.metrics();
  std::cout << "executor: " << m.submitted << " submitted, " << m.executed
            << " ok, " << m.shed << " shed, " << m.deadline_exceeded
            << " deadline-exceeded, " << m.cancelled << " cancelled, "
            << m.failed << " failed (view epoch "
            << (*server)->view_epoch() << ", leaf cache hit ratio "
            << (*server)->leaf_cache().stats().HitRatio() << ")\n";
  return 0;
}

int CmdVerify(const std::string& dataset, const std::string& snap_path,
              const std::string& key_hex) {
  auto spec = SpecByName(dataset);
  if (!spec.ok()) return Fail(spec.status().ToString());
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());
  client::Client client(KeysFromHex(key_hex), &spec->parser->schema());

  size_t verified = 0, failed = 0;
  for (uint64_t pn = 0; pn < (*server)->num_publications() + 8; ++pn) {
    Status st = client.VerifyPublication(**server, pn);
    if (st.ok()) {
      ++verified;
      std::cout << "publication " << pn << ": OK\n";
    } else if (!st.IsNotFound()) {
      ++failed;
      std::cout << "publication " << pn << ": " << st.ToString() << "\n";
    }
  }
  std::cout << verified << " verified, " << failed << " failed\n";
  return failed == 0 ? 0 : 2;
}

int CmdInspect(const std::string& snap_path) {
  auto server = cloud::CloudServer::LoadSnapshot(snap_path);
  if (!server.ok()) return Fail(server.status().ToString());
  const auto& binning = (*server)->binning();
  std::cout << "snapshot " << snap_path << "\n"
            << "  domain [" << binning.domain_min() << ", "
            << binning.domain_max() << "), " << binning.num_bins()
            << " bins of " << binning.bin_width() << "\n"
            << "  publications: " << (*server)->num_publications() << "\n"
            << "  stored records: " << (*server)->total_records() << "\n"
            << "  payload bytes: " << (*server)->total_bytes() << "\n";
  return 0;
}

int CmdWalDump(const std::string& data_dir) {
  auto manifest = durability::ReadManifest(data_dir);
  if (manifest.ok()) {
    std::cout << "MANIFEST: snapshot="
              << (manifest->snapshot_file.empty() ? "(none)"
                                                  : manifest->snapshot_file)
              << " wal_lsn=" << manifest->wal_lsn << "\n";
  } else if (manifest.status().IsNotFound()) {
    std::cout << "MANIFEST: (none)\n";
  } else {
    return Fail(manifest.status().ToString());
  }

  auto stats = durability::Wal::Replay(
      data_dir, 0, [](const durability::Wal::Frame& f) -> Status {
        std::cout << "  lsn " << f.lsn << "  "
                  << durability::WalOpToString(f.op);
        switch (f.op) {
          case durability::WalOp::kMeta: {
            auto m = durability::DecodeWalMeta(f.body);
            if (!m.ok()) return m.status();
            std::cout << "  domain [" << m->domain_min << ", "
                      << m->domain_max << ") width " << m->bin_width;
            break;
          }
          case durability::WalOp::kStart: {
            auto pn = durability::DecodeWalStart(f.body);
            if (!pn.ok()) return pn.status();
            std::cout << "  pn " << *pn;
            break;
          }
          case durability::WalOp::kRecordBatch: {
            auto b = durability::DecodeWalRecordBatch(f.body);
            if (!b.ok()) return b.status();
            std::cout << "  pn " << b->pn << "  " << b->records.size()
                      << " record(s)";
            break;
          }
          case durability::WalOp::kTaggedBatch: {
            auto b = durability::DecodeWalTaggedBatch(f.body);
            if (!b.ok()) return b.status();
            std::cout << "  pn " << b->pn << "  " << b->records.size()
                      << " tagged record(s)";
            break;
          }
          case durability::WalOp::kInstall:
          case durability::WalOp::kInstallTagged: {
            auto ins = durability::DecodeWalInstall(f.op, f.body);
            if (!ins.ok()) return ins.status();
            std::cout << "  pn " << ins->pn << "  publication "
                      << ins->publication.size() << " B";
            if (!ins->table.empty()) {
              std::cout << "  table " << ins->table.size() << " B";
            }
            break;
          }
        }
        std::cout << "\n";
        return Status::OK();
      });
  if (!stats.ok()) return Fail(stats.status().ToString());
  std::cout << stats->frames << " frame(s), last lsn " << stats->last_lsn;
  if (stats->torn_tail) {
    std::cout << " (torn tail: " << stats->torn_bytes << " bytes discarded)";
  }
  std::cout << "\n";
  return 0;
}

int CmdRecover(const std::string& data_dir, const std::string& out_snap) {
  auto recovered = durability::RecoveryManager::Recover(data_dir);
  if (!recovered.ok()) return Fail(recovered.status().ToString());
  const auto& st = recovered->stats;
  std::cout << "recovered " << recovered->server->num_publications()
            << " publication(s), " << recovered->server->total_records()
            << " record(s) in " << st.recovery_millis << " ms\n"
            << "  snapshot: "
            << (st.snapshot_loaded
                    ? "loaded (lsn " + std::to_string(st.snapshot_lsn) + ")"
                    : "none")
            << "\n  WAL: " << st.frames_replayed << " frame(s) replayed ("
            << st.records_replayed << " record(s), " << st.installs_replayed
            << " install(s)), last lsn " << st.last_lsn << "\n";
  if (st.torn_tail) {
    std::cout << "  torn tail: " << st.torn_bytes
              << " byte(s) of an in-flight frame discarded\n";
  }
  if (!out_snap.empty()) {
    if (auto s = recovered->server->SaveSnapshot(out_snap); !s.ok()) {
      return Fail(s.ToString());
    }
    std::cout << "  wrote " << out_snap << "\n";
  }
  return 0;
}

int CmdMetricsDump(const std::string& path) {
#if FRESQUE_TELEMETRY_ENABLED
  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    auto snap = telemetry::ParseMetricsJson(text);
    if (!snap.ok()) return Fail(snap.status().ToString());
    std::cout << telemetry::FormatMetricsTable(*snap);
  } else {
    // Prometheus text is already human-readable; echo it through.
    std::cout << text;
  }
  return 0;
#else
  (void)path;
  return Fail("built with FRESQUE_TELEMETRY=OFF; metrics-dump unavailable");
#endif
}

int Usage() {
  std::cerr
      << "usage:\n"
      << "  fresque_cli generate <nasa|gowalla> <count> <lines.txt>\n"
      << "  fresque_cli ingest <nasa|gowalla> <lines.txt> <snapshot.bin>"
         " [epsilon] [nodes] [interval] [key_hex]\n"
      << "      [--data-dir=<dir>] [--fsync=always|interval[:<ms>]|never]"
         " [--snapshot-every=<n>]\n"
      << "      [--metrics-out=<file>] [--metrics-interval-ms=<n>]"
         " [--trace-out=<file>]\n"
      << "      [--static-batching] [--admission-rps=<rate>]"
         " [--shed-watermarks=<low>:<high>]\n"
      << "      [--obs-addr=<[host:]port>] [--slo-e2e-ms=<n>]"
         " [--flight-capacity=<n>]\n"
      << "      [--shards=<n>] [--shard-by=range|hash]"
         " [--epsilon-composition=auto|split|full]\n"
      << "  fresque_cli query <nasa|gowalla> <snapshot.bin> <lo> <hi>"
         " [key_hex]\n"
      << "      [--query-threads=<n>] [--query-queue=<n>]"
         " [--query-deadline-ms=<n>] [--repeat=<n>]\n"
      << "      [--shards=<n>] [--shard-by=range|hash] (match the ingest)\n"
      << "  fresque_cli verify <nasa|gowalla> <snapshot.bin> [key_hex]\n"
      << "  fresque_cli inspect <snapshot.bin>\n"
      << "  fresque_cli wal-dump <data-dir>\n"
      << "  fresque_cli recover <data-dir> [snapshot.bin]\n"
      << "  fresque_cli metrics-dump <metrics.json|metrics.prom>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  fresque::engine::DurabilityConfig dur;
  fresque::engine::ObsConfig obs;
  TelemetryOptions tel;
  OverloadOptions ovl;
  QueryCliOptions qopts;
  ShardCliOptions shards;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--data-dir=", 0) == 0) {
      dur.data_dir = arg.substr(11);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      tel.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      tel.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-interval-ms=", 0) == 0) {
      try {
        tel.metrics_interval_ms = std::stoul(arg.substr(22));
      } catch (const std::exception&) {
        return Fail("bad --metrics-interval-ms value: " + arg.substr(22));
      }
      if (tel.metrics_interval_ms == 0) tel.metrics_interval_ms = 1;
    } else if (arg.rfind("--obs-addr=", 0) == 0) {
      obs.addr = arg.substr(11);
      if (obs.addr.empty()) return Fail("--obs-addr wants [host:]port");
    } else if (arg.rfind("--slo-e2e-ms=", 0) == 0) {
      try {
        obs.slo_e2e_ms = std::stoull(arg.substr(13));
      } catch (const std::exception&) {
        return Fail("bad --slo-e2e-ms value: " + arg.substr(13));
      }
    } else if (arg.rfind("--flight-capacity=", 0) == 0) {
      try {
        obs.flight_capacity = std::stoul(arg.substr(18));
      } catch (const std::exception&) {
        return Fail("bad --flight-capacity value: " + arg.substr(18));
      }
    } else if (arg.rfind("--fsync=", 0) == 0) {
      auto policy =
          fresque::durability::ParseFsyncPolicy(arg.substr(8),
                                                &dur.fsync_interval_ms);
      if (!policy.ok()) return Fail(policy.status().ToString());
      dur.fsync_policy = *policy;
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      try {
        dur.snapshot_every_installs = std::stoul(arg.substr(17));
      } catch (const std::exception&) {
        return Fail("bad --snapshot-every value: " + arg.substr(17));
      }
    } else if (arg.rfind("--query-threads=", 0) == 0) {
      try {
        qopts.threads = std::stoul(arg.substr(16));
      } catch (const std::exception&) {
        return Fail("bad --query-threads value: " + arg.substr(16));
      }
      if (qopts.threads == 0) qopts.threads = 1;
    } else if (arg.rfind("--query-queue=", 0) == 0) {
      try {
        qopts.queue = std::stoul(arg.substr(14));
      } catch (const std::exception&) {
        return Fail("bad --query-queue value: " + arg.substr(14));
      }
      if (qopts.queue == 0) qopts.queue = 1;
    } else if (arg.rfind("--query-deadline-ms=", 0) == 0) {
      try {
        qopts.deadline_ms = std::stoull(arg.substr(20));
      } catch (const std::exception&) {
        return Fail("bad --query-deadline-ms value: " + arg.substr(20));
      }
    } else if (arg.rfind("--repeat=", 0) == 0) {
      try {
        qopts.repeat = std::stoul(arg.substr(9));
      } catch (const std::exception&) {
        return Fail("bad --repeat value: " + arg.substr(9));
      }
      if (qopts.repeat == 0) qopts.repeat = 1;
    } else if (arg.rfind("--shards=", 0) == 0) {
      try {
        shards.opts.num_shards = std::stoul(arg.substr(9));
      } catch (const std::exception&) {
        return Fail("bad --shards value: " + arg.substr(9));
      }
      if (shards.opts.num_shards == 0) {
        return Fail("--shards wants a positive count");
      }
    } else if (arg.rfind("--shard-by=", 0) == 0) {
      auto by = fresque::shard::ParseShardBy(arg.substr(11));
      if (!by.ok()) return Fail(by.status().ToString());
      shards.opts.shard_by = *by;
    } else if (arg.rfind("--epsilon-composition=", 0) == 0) {
      auto comp = fresque::shard::ParseEpsilonComposition(arg.substr(22));
      if (!comp.ok()) return Fail(comp.status().ToString());
      shards.opts.epsilon_composition = *comp;
    } else if (arg == "--static-batching") {
      ovl.static_batching = true;
    } else if (arg.rfind("--admission-rps=", 0) == 0) {
      try {
        ovl.admission_rps = std::stod(arg.substr(16));
      } catch (const std::exception&) {
        return Fail("bad --admission-rps value: " + arg.substr(16));
      }
      if (ovl.admission_rps <= 0) {
        return Fail("--admission-rps wants a positive rate");
      }
    } else if (arg.rfind("--shed-watermarks=", 0) == 0) {
      const std::string pair = arg.substr(18);
      const size_t colon = pair.find(':');
      try {
        if (colon == std::string::npos) throw std::invalid_argument(pair);
        ovl.shed_low_watermark = std::stod(pair.substr(0, colon));
        ovl.shed_high_watermark = std::stod(pair.substr(colon + 1));
      } catch (const std::exception&) {
        return Fail("bad --shed-watermarks value (want <low>:<high>): " +
                    pair);
      }
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag " + arg);
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  try {
    if (cmd == "generate" && args.size() == 4) {
      return CmdGenerate(args[1], std::stoul(args[2]), args[3]);
    }
    if (cmd == "ingest" && args.size() >= 4) {
      double epsilon = args.size() > 4 ? std::stod(args[4]) : 1.0;
      size_t nodes = args.size() > 5 ? std::stoul(args[5]) : 4;
      size_t interval = args.size() > 6 ? std::stoul(args[6]) : 100000;
      std::string key = args.size() > 7 ? args[7] : kDefaultKeyHex;
      if (shards.sharded()) {
        return CmdIngestSharded(args[1], args[2], args[3], epsilon, nodes,
                                interval, key, dur, ovl, obs, shards);
      }
      return CmdIngest(args[1], args[2], args[3], epsilon, nodes, interval,
                       key, dur, tel, ovl, obs);
    }
    if (cmd == "wal-dump" && args.size() == 2) {
      return CmdWalDump(args[1]);
    }
    if (cmd == "metrics-dump" && args.size() == 2) {
      return CmdMetricsDump(args[1]);
    }
    if (cmd == "recover" && (args.size() == 2 || args.size() == 3)) {
      return CmdRecover(args[1], args.size() == 3 ? args[2] : "");
    }
    if (cmd == "query" && args.size() >= 5) {
      std::string key = args.size() > 5 ? args[5] : kDefaultKeyHex;
      if (shards.sharded()) {
        return CmdQuerySharded(args[1], args[2], std::stod(args[3]),
                               std::stod(args[4]), key, qopts, shards);
      }
      return CmdQuery(args[1], args[2], std::stod(args[3]),
                      std::stod(args[4]), key, qopts);
    }
    if (cmd == "verify" && args.size() >= 3) {
      std::string key = args.size() > 3 ? args[3] : kDefaultKeyHex;
      return CmdVerify(args[1], args[2], key);
    }
    if (cmd == "inspect" && args.size() == 2) {
      return CmdInspect(args[1]);
    }
  } catch (const std::exception& e) {
    return Fail(std::string("bad argument: ") + e.what());
  }
  return Usage();
}
