"""The six FRESQUE-specific checks, over the srcmodel IR.

Each check returns a list of Finding. Suppression filtering happens in
the driver (fresque_lint.py), so checks report everything they see.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import srcmodel
from srcmodel import (
    CHECK_DISCARDED_STATUS,
    CHECK_DUP_METRIC,
    CHECK_GUARDED_BY,
    CHECK_HOT_ALLOC,
    CHECK_LOCK_ORDER,
    CHECK_RAW_SYNC,
    Call,
    Function,
    Model,
)


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"


# ---------------------------------------------------------------------
# Lock identity resolution
# ---------------------------------------------------------------------


def resolve_lock_expr(expr: str, fn: Function, model: Model) -> str:
    """Normalizes a MutexLock argument spelling to a stable lock id,
    `Class::member` where resolvable."""
    e = expr.strip()
    # Strip a leading dereference.
    while e.startswith("*"):
        e = e[1:].strip()
    for sep in ("->", "."):
        if sep in e:
            head, _, tail = e.partition(sep)
            head = head.strip()
            tail = tail.split("->")[-1].split(".")[-1].strip()
            if head == "this":
                if fn.class_name:
                    return f"{fn.class_name}::{tail}"
            rtype = fn.var_types.get(head)
            if rtype is None and fn.class_name:
                cls = model.classes.get(fn.class_name)
                if cls:
                    fld = cls.field(head)
                    if fld:
                        rtype = fld.type_name
            if rtype:
                return f"{rtype.split('::')[-1]}::{tail}"
            return f"<{head}>::{tail}"
    if "::" in e:
        return e  # already qualified (global / static member)
    if fn.class_name:
        cls = model.classes.get(fn.class_name)
        if cls is None or cls.field(e) is not None or e.endswith("_"):
            return f"{fn.class_name}::{e}"
    stem = fn.file.rsplit("/", 1)[-1].split(".")[0]
    return f"{stem}::{e}"


# ---------------------------------------------------------------------
# Check 1: lock-order DAG extraction + cycle detection
# ---------------------------------------------------------------------


@dataclasses.dataclass
class LockGraph:
    nodes: Set[str] = dataclasses.field(default_factory=set)
    # (from, to) -> list of human-readable example sites
    edges: Dict[Tuple[str, str], List[str]] = dataclasses.field(
        default_factory=dict
    )
    # lock id -> declaration site "file:line" when known
    decls: Dict[str, str] = dataclasses.field(default_factory=dict)

    def add_edge(self, a: str, b: str, site: str) -> None:
        self.nodes.add(a)
        self.nodes.add(b)
        self.edges.setdefault((a, b), []).append(site)


def build_lock_graph(model: Model) -> LockGraph:
    graph = LockGraph()
    defs = [f for f in model.functions if f.is_definition]

    # Resolve every acquisition's lock id once.
    for fn in defs:
        for acq in fn.acquires:
            acq.lock_id = resolve_lock_expr(acq.expr, fn, model)
            graph.nodes.add(acq.lock_id)

    # Mutex declaration sites, for the generated inventory.
    for cls in model.classes.values():
        for fld in cls.fields:
            if fld.type_name in ("Mutex", "fresque::Mutex"):
                graph.decls[f"{cls.name}::{fld.name}"] = (
                    f"{cls.file}:{fld.line}"
                )

    # Transitive acquire sets via a call-graph fixpoint.
    direct: Dict[int, Set[str]] = {}
    callees: Dict[int, Set[int]] = {}
    index = {id(f): i for i, f in enumerate(defs)}
    for i, fn in enumerate(defs):
        direct[i] = {a.lock_id for a in fn.acquires}
        outs: Set[int] = set()
        for call in fn.calls:
            for g in model.resolve_call(call, fn):
                j = index.get(id(g))
                if j is not None:
                    outs.add(j)
        callees[i] = outs
    acq: Dict[int, Set[str]] = {i: set(s) for i, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for i in range(len(defs)):
            before = len(acq[i])
            for j in callees[i]:
                acq[i] |= acq[j]
            if len(acq[i]) != before:
                changed = True

    # Edges: a lock held while another is acquired (directly or through
    # a call).
    for fn in defs:
        for a in fn.acquires:
            for held_expr in a.held:
                h = resolve_lock_expr(held_expr, fn, model)
                graph.add_edge(
                    h, a.lock_id,
                    f"{fn.qual_name} ({fn.file}:{a.line})",
                )
        for call in fn.calls:
            if not call.held:
                continue
            for g in model.resolve_call(call, fn):
                j = index.get(id(g))
                if j is None:
                    continue
                for lock in acq[j]:
                    for held_expr in call.held:
                        h = resolve_lock_expr(held_expr, fn, model)
                        graph.add_edge(
                            h, lock,
                            f"{fn.qual_name} -> {g.qual_name} "
                            f"({fn.file}:{call.line})",
                        )
    return graph


def _find_cycles(graph: LockGraph) -> List[List[str]]:
    """Returns one representative cycle per strongly-connected component
    with more than one node, plus self-loops."""
    adj: Dict[str, List[str]] = {n: [] for n in graph.nodes}
    for (a, b) in graph.edges:
        adj[a].append(b)
    for k in adj:
        adj[k].sort()

    # Tarjan SCC, iterative.
    idx: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                idx[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            recurse = False
            for i in range(pi, len(adj[v])):
                w = adj[v][i]
                if w not in idx:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], idx[w])
            if recurse:
                continue
            if low[v] == idx[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
            work.pop()
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])

    for n in sorted(graph.nodes):
        if n not in idx:
            strongconnect(n)

    cycles = [sorted(s) for s in sccs if len(s) > 1]
    for n in sorted(graph.nodes):
        if (n, n) in graph.edges:
            cycles.append([n])
    return cycles


def run_lock_order(model: Model) -> Tuple[List[Finding], LockGraph]:
    graph = build_lock_graph(model)
    findings: List[Finding] = []
    for cycle in _find_cycles(graph):
        if len(cycle) == 1:
            n = cycle[0]
            site = graph.edges[(n, n)][0]
            findings.append(Finding(
                CHECK_LOCK_ORDER, _site_file(site), _site_line(site),
                f"lock {n} can be re-acquired while already held "
                f"(self-deadlock); via {site}",
            ))
            continue
        # Report each edge participating in the cycle once, at its site.
        cyc_set = set(cycle)
        edges = sorted(
            (a, b) for (a, b) in graph.edges
            if a in cyc_set and b in cyc_set
        )
        desc = " -> ".join(cycle + [cycle[0]])
        for (a, b) in edges:
            site = graph.edges[(a, b)][0]
            findings.append(Finding(
                CHECK_LOCK_ORDER, _site_file(site), _site_line(site),
                f"lock-order cycle {desc}: edge {a} -> {b} via {site}",
            ))
    return findings, graph


def _site_file(site: str) -> str:
    # site format: "name (file:line)"
    inner = site.rsplit("(", 1)[-1].rstrip(")")
    return inner.rsplit(":", 1)[0]


def _site_line(site: str) -> int:
    inner = site.rsplit("(", 1)[-1].rstrip(")")
    try:
        return int(inner.rsplit(":", 1)[1])
    except (IndexError, ValueError):
        return 1


def topological_order(graph: LockGraph) -> Optional[List[str]]:
    indeg = {n: 0 for n in graph.nodes}
    for (_, b) in graph.edges:
        indeg[b] += 1
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order: List[str] = []
    indeg = dict(indeg)
    while ready:
        n = ready.pop(0)
        order.append(n)
        for (a, b) in graph.edges:
            if a == n:
                indeg[b] -= 1
                if indeg[b] == 0:
                    ready.append(b)
        ready.sort()
    if len(order) != len(graph.nodes):
        return None
    return order


def render_lock_dag(graph: LockGraph, repo_rev: str = "") -> str:
    """Renders docs/lock_order.md (deterministic, sorted)."""
    lines: List[str] = []
    lines.append("# Lock-order DAG")
    lines.append("")
    lines.append(
        "<!-- GENERATED by tools/fresque_lint — do not edit by hand."
    )
    lines.append(
        "     Regenerate: python3 tools/fresque_lint/fresque_lint.py"
        " --emit-lock-dag docs/lock_order.md -->"
    )
    lines.append("")
    lines.append(
        "Extracted from every `MutexLock` acquisition in `src/` by the"
        " `lock-order`"
    )
    lines.append(
        "check: an edge `A -> B` means some thread acquires `B` while"
        " holding `A`"
    )
    lines.append(
        "(directly, or through a call chain). The check fails CI if this"
        " graph ever"
    )
    lines.append("acquires a cycle.")
    lines.append("")
    lines.append("## Mutex inventory")
    lines.append("")
    lines.append("| Lock | Declared at |")
    lines.append("|------|-------------|")
    for n in sorted(graph.nodes):
        lines.append(f"| `{n}` | {graph.decls.get(n, '(unresolved)')} |")
    lines.append("")
    lines.append("## Held-while-acquiring edges")
    lines.append("")
    if graph.edges:
        lines.append("| Held | Acquires | Example site |")
        lines.append("|------|----------|--------------|")
        for (a, b) in sorted(graph.edges):
            site = sorted(graph.edges[(a, b)])[0]
            lines.append(f"| `{a}` | `{b}` | `{site}` |")
    else:
        lines.append(
            "*(none — every lock in the pipeline is a leaf lock; no lock"
            " is ever held while taking another)*"
        )
    lines.append("")
    lines.append("## Allowed acquisition order")
    lines.append("")
    order = topological_order(graph)
    if order is None:
        lines.append("**CYCLE DETECTED — this graph is not a DAG.**")
    elif graph.edges:
        lines.append(
            " -> ".join(f"`{n}`" for n in order)
        )
        lines.append("")
        lines.append(
            "Locks earlier in this order may be held while acquiring"
            " later ones;"
        )
        lines.append("the reverse direction is a lint error.")
    else:
        lines.append(
            "Any single lock at a time; nesting is currently never"
            " needed."
        )
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------
# Check 2: no raw std:: synchronization outside src/common/
# ---------------------------------------------------------------------

_RAW_SYNC_NAMES = {
    "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock",
}
_RAW_SYNC_HEADERS = {"mutex", "condition_variable", "shared_mutex"}


def run_raw_sync(model: Model, exempt_prefix: str = "src/common/"
                 ) -> List[Finding]:
    findings: List[Finding] = []
    for path, sf in sorted(model.files.items()):
        if not path.startswith("src/") or path.startswith(exempt_prefix):
            continue
        toks = sf.tokens
        for i, t in enumerate(toks):
            if (
                t.text in _RAW_SYNC_NAMES
                and i >= 2
                and toks[i - 1].text == "::"
                and toks[i - 2].text == "std"
            ):
                findings.append(Finding(
                    CHECK_RAW_SYNC, path, t.line,
                    f"raw std::{t.text} outside src/common/ — use the"
                    " annotated fresque::Mutex/MutexLock/CondVar wrappers"
                    " (common/mutex.h) so the thread-safety analysis and"
                    " the lock-order check can see it",
                ))
        for (target, is_system, line) in sf.includes:
            if is_system and target in _RAW_SYNC_HEADERS:
                findings.append(Finding(
                    CHECK_RAW_SYNC, path, line,
                    f"#include <{target}> outside src/common/ — include"
                    ' "common/mutex.h" instead',
                ))
    return findings


# ---------------------------------------------------------------------
# Check 3: hot-path allocation lint
# ---------------------------------------------------------------------

_MAX_CHAIN_DEPTH = 12


def run_hot_alloc(model: Model) -> List[Finding]:
    findings: List[Finding] = []
    reported: Set[Tuple[str, int, str]] = set()
    hot_roots = [
        f for f in model.functions if f.is_hot and f.is_definition
    ]

    def report(fn: Function, line: int, what: str,
               chain: List[str]) -> None:
        key = (fn.file, line, what)
        if key in reported:
            return
        reported.add(key)
        via = " -> ".join(chain)
        findings.append(Finding(
            CHECK_HOT_ALLOC, fn.file, line,
            f"{what} in FRESQUE_HOT path {via} — the steady-state hot"
            " path must stay allocation-free (PR 5 contract); hoist to a"
            " reused member/scratch buffer, or suppress with"
            " `// fresque-lint: allow(hot-alloc) <reason>` if this is a"
            " cold error/setup path",
        ))

    def visit(fn: Function, chain: List[str],
              visited: Set[int]) -> None:
        if id(fn) in visited or len(chain) > _MAX_CHAIN_DEPTH:
            return
        visited.add(id(fn))
        chain = chain + [fn.qual_name]
        for (what, line) in fn.alloc_tokens:
            report(fn, line, f"`{what}` allocation", chain)
        for loc in fn.locals:
            if loc.is_static or loc.is_ref_or_ptr:
                continue
            # Default construction of the tracked containers is free, and
            # move construction steals instead of copying.
            if not loc.has_init or loc.is_move_init:
                continue
            if loc.type_name in _ALLOC_TYPES:
                report(
                    fn, loc.line,
                    f"local `{loc.type_name} {loc.var}` constructed per"
                    " call", chain,
                )
        for call in fn.calls:
            for g in model.resolve_call(call, fn):
                if g.file.startswith("src/") or g.file == fn.file:
                    visit(g, chain, visited)

    for root in hot_roots:
        visit(root, [], set())
    return findings


_ALLOC_TYPES = {
    "std::string", "std::vector", "std::deque", "std::list", "std::map",
    "std::set", "std::multimap", "std::multiset", "std::unordered_map",
    "std::unordered_set", "std::function", "std::stringstream",
    "std::ostringstream", "std::istringstream", "std::basic_string",
    "Bytes", "fresque::Bytes",
}


# ---------------------------------------------------------------------
# Check 4: discarded Status / Result
# ---------------------------------------------------------------------


def run_discarded_status(model: Model) -> List[Finding]:
    findings: List[Finding] = []
    for fn in model.functions:
        if not fn.is_definition or not fn.file.startswith("src/"):
            continue
        for call in fn.calls:
            if not call.is_statement or call.void_cast:
                continue
            if model.status_like(call, fn) is True:
                recv = call.receiver
                findings.append(Finding(
                    CHECK_DISCARDED_STATUS, fn.file, call.line,
                    f"result of `{recv}{call.name}(...)` (Status/Result)"
                    " is discarded — handle it, propagate it, or discard"
                    " explicitly with `(void)` and a comment",
                ))
    return findings


# ---------------------------------------------------------------------
# Check 5: GUARDED_BY completeness heuristic
# ---------------------------------------------------------------------

_GUARDED_EXEMPT_TYPES = {
    "Mutex", "fresque::Mutex", "CondVar", "fresque::CondVar",
    "std::atomic", "atomic",
}


def run_guarded_by(model: Model) -> List[Finding]:
    findings: List[Finding] = []
    # Collect member-function mutations per class.
    mutations: Dict[str, Dict[str, List[Tuple[str, int, str]]]] = {}
    for fn in model.functions:
        if not fn.is_definition or not fn.class_name:
            continue
        if fn.is_ctor or fn.is_dtor:
            continue
        for (name, line, kind) in fn.mutations:
            if name in fn.var_types:
                continue  # shadowed by a local/param
            mutations.setdefault(fn.class_name, {}).setdefault(
                name, []
            ).append((fn.file, line, f"{fn.qual_name} ({kind})"))

    for cls_name in sorted(model.classes):
        cls = model.classes[cls_name]
        if not cls.owns_mutex():
            continue
        cls_muts = mutations.get(cls.name, {})
        for fld in cls.fields:
            if (
                fld.is_const or fld.is_static or fld.is_atomic
                or fld.type_name in _GUARDED_EXEMPT_TYPES
                or fld.guarded_by is not None
                or fld.pt_guarded_by is not None
            ):
                continue
            sites = cls_muts.get(fld.name)
            if not sites:
                continue
            file, line, where = sorted(sites)[0]
            findings.append(Finding(
                CHECK_GUARDED_BY, cls.file, fld.line,
                f"field `{cls.name}::{fld.name}` of mutex-owning class is"
                f" mutated outside the constructor (e.g. {where},"
                f" {file}:{line}) but carries no FRESQUE_GUARDED_BY —"
                " annotate it, or suppress with a reason if it is"
                " confined to one thread by construction",
            ))
    return findings


# ---------------------------------------------------------------------
# Check 6: one metric name, one instrument kind
# ---------------------------------------------------------------------

# Registration sites the token scan recognizes. The telemetry registry
# keys counters, gauges and histograms in separate maps, so registering
# the same name with two kinds silently produces two series that the
# exporter emits under one Prometheus family — exactly the corruption
# this check exists to catch at lint time.
_METRIC_SITES = {
    "FRESQUE_COUNTER_ADD": "Counter",
    "FRESQUE_GAUGE_SET": "Gauge",
    "FRESQUE_HISTOGRAM_RECORD": "Histogram",
    "GetCounter": "Counter",
    "GetGauge": "Gauge",
    "GetHistogram": "Histogram",
}


def run_dup_metric(model: Model) -> List[Finding]:
    """Flags a metric name registered as more than one instrument kind.

    Only literal first arguments count: `FRESQUE_COUNTER_ADD("a.b", 1)`
    and `reg->GetCounter("a.b")` register, `GetCounter(prefix + ".b")`
    is dynamic and skipped (the charter test covers those at runtime).
    The same name registered with the same kind at many sites is fine —
    the registry deduplicates; only a kind conflict is an error."""
    regs: Dict[str, Dict[str, List[Tuple[str, int]]]] = {}
    for path, sf in sorted(model.files.items()):
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            kind = _METRIC_SITES.get(t.text)
            if kind is None:
                continue
            if i + 2 >= len(toks) or toks[i + 1].text != "(":
                continue
            # The name must be one literal (or adjacent-literal splice)
            # forming the entire first argument.
            j = i + 2
            name_parts: List[str] = []
            while j < len(toks) and toks[j].kind == "str":
                name_parts.append(toks[j].text.strip('"'))
                j += 1
            if not name_parts or j >= len(toks):
                continue
            if toks[j].text not in (",", ")"):
                continue  # "prefix" + var — dynamic name, skip
            name = "".join(name_parts)
            if not name:
                continue
            regs.setdefault(name, {}).setdefault(kind, []).append(
                (path, toks[i + 2].line)
            )

    findings: List[Finding] = []
    for name in sorted(regs):
        kinds = regs[name]
        if len(kinds) < 2:
            continue
        for kind in sorted(kinds):
            file, line = sorted(kinds[kind])[0]
            others = "; ".join(
                f"{k} at {sorted(v)[0][0]}:{sorted(v)[0][1]}"
                for k, v in sorted(kinds.items())
                if k != kind
            )
            findings.append(Finding(
                CHECK_DUP_METRIC, file, line,
                f"metric `{name}` is registered as {kind} here but also"
                f" as {others} — the registry keys each kind separately,"
                " so both series would scrape under one Prometheus"
                " family; one metric name must map to exactly one"
                " instrument kind",
            ))
    return findings
