"""Source model (IR) shared by fresque_lint's frontends and checks.

A frontend (frontend_lite or frontend_clang) parses C++ sources into this
IR; the checks in checks.py consume only the IR, so they are oblivious to
which frontend produced it. The IR is deliberately coarse: it models only
what the six FRESQUE checks need — functions with their call/acquire/
local-declaration events, class fields with their annotations, and raw
token streams for the pattern checks.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

# Check identifiers (the names used in findings and suppressions).
CHECK_LOCK_ORDER = "lock-order"
CHECK_RAW_SYNC = "raw-sync"
CHECK_HOT_ALLOC = "hot-alloc"
CHECK_DISCARDED_STATUS = "discarded-status"
CHECK_GUARDED_BY = "guarded-by"
CHECK_DUP_METRIC = "dup-metric"
ALL_CHECKS = (
    CHECK_LOCK_ORDER,
    CHECK_RAW_SYNC,
    CHECK_HOT_ALLOC,
    CHECK_DISCARDED_STATUS,
    CHECK_GUARDED_BY,
    CHECK_DUP_METRIC,
)

# Per-site suppression:   // fresque-lint: allow(check-a,check-b) reason
# on the finding's line or the line directly above it. The reason is
# mandatory: a suppression is a documented contract, not an off switch.
SUPPRESS_RE = re.compile(
    r"//\s*fresque-lint:\s*allow\(([a-z\-,\s]+)\)\s*(\S.*)?$"
)


@dataclasses.dataclass
class Suppression:
    checks: Set[str]
    reason: str
    line: int


@dataclasses.dataclass
class Token:
    kind: str  # "id" | "num" | "str" | "chr" | "punct"
    text: str
    line: int


@dataclasses.dataclass
class LockAcquire:
    """One `MutexLock lock(<expr>);` site."""

    lock_id: str  # normalized, e.g. "CloudNode::mu_"
    expr: str  # source spelling, e.g. "wal->mu_"
    line: int
    # Lock ids already held (lexically) when this acquisition runs.
    held: Tuple[str, ...] = ()


@dataclasses.dataclass
class Call:
    """A call expression inside a function body."""

    name: str  # simple callee name, e.g. "PublishIndexed"
    receiver: str  # receiver chain spelling ("server_->", "Class::", "")
    line: int
    held: Tuple[str, ...] = ()  # lock ids held at the call site
    is_statement: bool = False  # full-expression statement `foo(...);`
    void_cast: bool = False  # spelled `(void)foo(...);`


@dataclasses.dataclass
class LocalDecl:
    """A local variable declaration `Type name...;` in a function body."""

    type_name: str  # normalized head, e.g. "std::vector", "Bytes"
    var: str
    line: int
    is_static: bool = False
    is_ref_or_ptr: bool = False
    # `Type name;` — default construction of the heap-backed containers we
    # track is allocation-free, so hot-alloc skips these.
    has_init: bool = True
    # `Type name = std::move(x);` — move construction never allocates.
    is_move_init: bool = False


@dataclasses.dataclass
class Function:
    qual_name: str  # "ns::Class::Name" (namespaces best-effort)
    simple_name: str
    class_name: str  # enclosing (or declaration-qualified) class, or ""
    file: str
    line: int
    end_line: int = 0
    return_type: str = ""  # normalized spelling, "" for ctors/dtors
    is_hot: bool = False  # FRESQUE_HOT on decl or def
    is_definition: bool = False
    is_ctor: bool = False
    is_dtor: bool = False
    acquires: List[LockAcquire] = dataclasses.field(default_factory=list)
    calls: List[Call] = dataclasses.field(default_factory=list)
    locals: List[LocalDecl] = dataclasses.field(default_factory=list)
    # Raw allocation tokens found directly in the body: (what, line).
    alloc_tokens: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    # var -> type head, for receiver resolution (params + locals).
    var_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    # Field mutations: (field_name, line, kind) where kind is "assign",
    # "incdec" or "call:<method>".
    mutations: List[Tuple[str, int, str]] = dataclasses.field(
        default_factory=list
    )


@dataclasses.dataclass
class Field:
    name: str
    type_name: str  # normalized head, e.g. "std::map", "Mutex"
    line: int
    is_const: bool = False
    is_static: bool = False
    is_mutable: bool = False
    is_atomic: bool = False
    is_ref_or_ptr: bool = False
    guarded_by: Optional[str] = None  # FRESQUE_GUARDED_BY argument
    pt_guarded_by: Optional[str] = None


@dataclasses.dataclass
class ClassInfo:
    name: str  # simple name
    qual_name: str
    file: str
    line: int
    fields: List[Field] = dataclasses.field(default_factory=list)

    def field(self, name: str) -> Optional[Field]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def owns_mutex(self) -> bool:
        return any(
            f.type_name in ("Mutex", "fresque::Mutex") for f in self.fields
        )


@dataclasses.dataclass
class SourceFile:
    path: str  # repo-relative
    tokens: List[Token] = dataclasses.field(default_factory=list)
    includes: List[Tuple[str, bool, int]] = dataclasses.field(
        default_factory=list
    )  # (target, is_system, line)
    suppressions: Dict[int, Suppression] = dataclasses.field(
        default_factory=dict
    )

    def suppressed(self, check: str, line: int) -> bool:
        """True if `check` is suppressed at `line` (same line or the one
        above carries the allow comment)."""
        for cand in (line, line - 1):
            sup = self.suppressions.get(cand)
            if sup and check in sup.checks and sup.reason:
                return True
        return False


@dataclasses.dataclass
class Model:
    """Whole-program model: all parsed files, functions and classes."""

    files: Dict[str, SourceFile] = dataclasses.field(default_factory=dict)
    functions: List[Function] = dataclasses.field(default_factory=list)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)

    # Derived indices (built by finalize()).
    by_simple_name: Dict[str, List[Function]] = dataclasses.field(
        default_factory=dict
    )
    by_class_and_name: Dict[Tuple[str, str], List[Function]] = (
        dataclasses.field(default_factory=dict)
    )

    def finalize(self) -> None:
        """Builds lookup indices and merges declaration-site attributes
        (FRESQUE_HOT, return types) into the matching definitions."""
        self.by_simple_name = {}
        self.by_class_and_name = {}
        for fn in self.functions:
            self.by_simple_name.setdefault(fn.simple_name, []).append(fn)
            self.by_class_and_name.setdefault(
                (fn.class_name, fn.simple_name), []
            ).append(fn)
        # Propagate decl-site FRESQUE_HOT / return types onto definitions
        # (out-of-line definitions usually repeat neither).
        for group in self.by_class_and_name.values():
            is_hot = any(f.is_hot for f in group)
            ret = next((f.return_type for f in group if f.return_type), "")
            for f in group:
                f.is_hot = f.is_hot or is_hot
                if not f.return_type:
                    f.return_type = ret

    def resolve_call(
        self, call: Call, caller: Function
    ) -> List[Function]:
        """Best-effort resolution of a call to definitions in the model.

        Returns candidate *definitions*. Ambiguous simple-name matches
        across different classes resolve to [] (the checks deliberately
        under-approximate rather than invent call edges)."""
        recv = call.receiver.rstrip(":->. ")
        # Explicit Class:: qualification.
        if call.receiver.endswith("::") and recv:
            cls = recv.split("::")[-1]
            return [
                f
                for f in self.by_class_and_name.get((cls, call.name), [])
                if f.is_definition
            ]
        # this-> or unqualified: same class first.
        if caller.class_name and (not recv or recv == "this"):
            own = [
                f
                for f in self.by_class_and_name.get(
                    (caller.class_name, call.name), []
                )
                if f.is_definition
            ]
            if own:
                return own
        # Receiver variable with a known type.
        if recv and recv != "this":
            head = recv.split("->")[0].split(".")[0].strip()
            rtype = caller.var_types.get(head)
            if rtype is None and caller.class_name:
                cls = self.classes.get(caller.class_name)
                if cls:
                    fld = cls.field(head)
                    if fld:
                        rtype = fld.type_name
            if rtype:
                cls_simple = rtype.split("::")[-1]
                return [
                    f
                    for f in self.by_class_and_name.get(
                        (cls_simple, call.name), []
                    )
                    if f.is_definition
                ]
            return []  # unknown receiver: don't guess
        # Free call: unique global match only.
        cands = [
            f
            for f in self.by_simple_name.get(call.name, [])
            if f.is_definition
        ]
        classes = {f.class_name for f in cands}
        if len(classes) == 1:
            return cands
        return []

    def status_like(self, call: Call, caller: Function) -> Optional[bool]:
        """Whether `call` returns Status/Result (by value, ref or pointer).

        None = unknown callee; False = known non-status; True = status."""
        recv = call.receiver.rstrip(":->. ")
        groups: List[Function] = []
        if call.receiver.endswith("::") and recv:
            cls = recv.split("::")[-1]
            groups = self.by_class_and_name.get((cls, call.name), [])
        elif caller.class_name and (not recv or recv == "this"):
            groups = self.by_class_and_name.get(
                (caller.class_name, call.name), []
            )
        if not groups and recv and recv != "this":
            head = recv.split("->")[0].split(".")[0].strip()
            rtype = caller.var_types.get(head)
            if rtype is None and caller.class_name:
                cls = self.classes.get(caller.class_name)
                if cls:
                    fld = cls.field(head)
                    if fld:
                        rtype = fld.type_name
            if rtype:
                groups = self.by_class_and_name.get(
                    (rtype.split("::")[-1], call.name), []
                )
        if not groups:
            cands = self.by_simple_name.get(call.name, [])
            if len({f.class_name for f in cands}) == 1:
                groups = cands
        if not groups:
            return None
        rets = {f.return_type for f in groups if f.return_type}
        if not rets:
            return None
        verdicts = {ret_is_status_like(r) for r in rets}
        if verdicts == {True}:
            return True
        if verdicts == {False}:
            return False
        return None  # mixed overloads: don't guess


def ret_is_status_like(ret: str) -> bool:
    """True for Status / Result<...> returns, including by ref/pointer."""
    head = ret.replace("const", " ").strip()
    return bool(
        re.match(r"^(fresque\s*::\s*)?(Status|Result)\b(?!\s*Code)", head)
    )
