"""Dependency-free C++ frontend for fresque_lint.

A tokenizer plus a structural scanner calibrated to this repo's code
style (clang-formatted, Google-ish C++20, `MutexLock lock(mu_);`
acquisitions, FRESQUE_* annotation macros). It produces the same IR
(srcmodel.Model) as the libclang frontend, so every check runs even on
machines with no clang installed — CI additionally runs the clang
frontend for precision.

Known, deliberate approximations (see DESIGN.md "Static analysis layer"):
 - functions are matched by (class, name); overload sets merge,
 - `auto` locals are invisible to the hot-alloc local-declaration rule,
 - calls that cannot be resolved to a unique definition produce no call
   edge (the checks under-approximate rather than guess).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

import srcmodel
from srcmodel import (
    Call,
    ClassInfo,
    Field,
    Function,
    LocalDecl,
    LockAcquire,
    Model,
    SourceFile,
    Suppression,
    Token,
)

_KEYWORDS = {
    "if", "else", "while", "for", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "alignas",
    "new", "delete", "this", "true", "false", "nullptr", "const",
    "constexpr", "consteval", "constinit", "static", "inline", "virtual",
    "override", "final", "explicit", "friend", "mutable", "volatile",
    "register", "thread_local", "extern", "typedef", "using", "namespace",
    "class", "struct", "union", "enum", "template", "typename", "public",
    "private", "protected", "operator", "noexcept", "throw", "try",
    "catch", "co_await", "co_return", "co_yield", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "static_assert",
    "decltype", "auto", "void", "bool", "char", "short", "int", "long",
    "float", "double", "signed", "unsigned", "wchar_t", "char8_t",
    "char16_t", "char32_t", "requires", "concept", "and", "or", "not",
}

_CONTROL = {"if", "while", "for", "switch", "catch", "return"}

# Declaration-specifier noise stripped when classifying declarations.
_SPECIFIERS = {
    "inline", "static", "virtual", "explicit", "constexpr", "consteval",
    "friend", "extern", "mutable", "typename",
}

# Annotation-style macros that may prefix a declaration.
_ANNOTATION_MACROS = {
    "FRESQUE_HOT",
}
# Annotation macros that take arguments and may trail a declaration.
_TRAILING_MACRO_RE = re.compile(r"^FRESQUE_[A-Z_]+$")

_PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


def tokenize(text: str, path: str) -> SourceFile:
    """Tokenizes C++ source, recording includes and lint suppressions."""
    sf = SourceFile(path=path)
    i, n, line = 0, len(text), 1
    tokens = sf.tokens
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            if j < 0:
                j = n
            comment = text[i:j]
            m = srcmodel.SUPPRESS_RE.search(comment)
            if m:
                checks = {
                    s.strip() for s in m.group(1).split(",") if s.strip()
                }
                sf.suppressions[line] = Suppression(
                    checks=checks, reason=(m.group(2) or "").strip(),
                    line=line,
                )
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            else:
                j += 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "#":
            # Preprocessor directive: record #include, skip the rest
            # (honoring line continuations).
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                    break
                if text[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    continue
                break
            directive = text[i:k]
            m = re.match(r'#\s*include\s*([<"])([^>"]+)[>"]', directive)
            if m:
                sf.includes.append(
                    (m.group(2), m.group(1) == "<", line)
                )
            line += directive.count("\n") + (1 if k < n else 0)
            i = k + 1
            continue
        if text.startswith('R"', i):
            # Raw string literal R"delim( ... )delim".
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                endmark = ")" + m.group(1) + '"'
                j = text.find(endmark, i)
                if j < 0:
                    j = n
                else:
                    j += len(endmark)
                line += text.count("\n", i, j)
                tokens.append(Token("str", '""', line))
                i = j
                continue
        if c == '"' or (
            c in "uUL" and i + 1 < n and text[i + 1] == '"'
        ):
            if c != '"':
                i += 1
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            # Content kept (quotes included): dup-metric reads the names.
            tokens.append(Token("str", text[i:min(j + 1, n)], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("chr", "''", line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (
            c == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            while j < n and (
                text[j].isalnum() or text[j] in "._'"
                or (
                    text[j] in "+-"
                    and j > i
                    and text[j - 1] in "eEpP"
                )
            ):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for p in _PUNCT3:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += 3
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    tokens.append(Token("punct", p, line))
                    i += 2
                    break
            else:
                tokens.append(Token("punct", c, line))
                i += 1
    return sf


class _Cursor:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.i = 0

    def eof(self) -> bool:
        return self.i >= len(self.toks)

    def peek(self, k: int = 0) -> Optional[Token]:
        j = self.i + k
        return self.toks[j] if j < len(self.toks) else None

    def next(self) -> Token:
        t = self.toks[self.i]
        self.i += 1
        return t


def _match_balanced(toks: List[Token], i: int, open_c: str,
                    close_c: str) -> int:
    """toks[i] is `open_c`; returns index just past the matching close."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _match_angle(toks: List[Token], i: int) -> Optional[int]:
    """toks[i] is '<'; returns index past matching '>' or None if this
    does not look like a template argument list."""
    depth = 0
    n = len(toks)
    j = i
    while j < n and j < i + 400:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}") or t in ("&&", "||"):
            return None
        j += 1
    return None


def _strip_decl_noise(toks: List[Token]) -> Tuple[List[Token], bool]:
    """Removes template prefixes, attributes, specifiers and annotation
    macros from a declaration head. Returns (rest, saw_fresque_hot)."""
    out: List[Token] = []
    is_hot = False
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text == "template" and i + 1 < n and toks[i + 1].text == "<":
            j = _match_angle(toks, i + 1)
            i = j if j else i + 2
            continue
        if (
            t.text == "["
            and i + 1 < n
            and toks[i + 1].text == "["
        ):
            j = i
            depth = 0
            while j < n:
                if toks[j].text == "[":
                    depth += 1
                elif toks[j].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            i = j + 1
            continue
        if t.text in _SPECIFIERS:
            i += 1
            continue
        if t.text in _ANNOTATION_MACROS:
            if t.text == "FRESQUE_HOT":
                is_hot = True
            i += 1
            continue
        if (
            _TRAILING_MACRO_RE.match(t.text)
            and i + 1 < n
            and toks[i + 1].text == "("
        ):
            i = _match_balanced(toks, i + 1, "(", ")")
            continue
        out.append(t)
        i += 1
    return out, is_hot


def _cut_at_init_list(toks: List[Token]) -> List[Token]:
    """Cuts a declaration head at a ctor init list's top-level ':' (a
    single-colon token at paren/angle depth 0 that follows a ')'), so
    `Foo() : member_(x)` classifies by `Foo()` alone."""
    depth = 0
    seen_close = False
    for i, t in enumerate(toks):
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
            seen_close = True
        elif t.text == "<" and depth == 0:
            j = _match_angle(toks, i)
            if j is not None:
                continue
        elif t.text == ":" and depth == 0 and seen_close:
            return toks[:i]
    return toks


def _find_param_group(toks: List[Token]) -> Optional[Tuple[int, int]]:
    """Finds the parameter-list parens of a function declarator: the
    last top-level '('-group that directly follows an identifier (or an
    operator spelling). Returns (open_idx, past_close_idx)."""
    best = None
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "(":
            j = _match_balanced(toks, i, "(", ")")
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and (
                prev.kind == "id" and prev.text not in _CONTROL
                or prev.text in (">", "]")  # operator>] etc.
                or prev.text == "operator"
            ):
                best = (i, j)
            i = j
            continue
        if t == "<":
            j = _match_angle(toks, i)
            i = j if j else i + 1
            continue
        i += 1
    return best


def _declarator_name(toks: List[Token], popen: int) -> Tuple[str, str, int]:
    """Extracts (simple_name, class_qualifier, name_start_idx) for the
    declarator whose parameter list opens at `popen`."""
    i = popen - 1
    if i < 0:
        return "", "", popen
    # operator spelling: "operator" followed by punct token(s) or id.
    name = toks[i].text
    start = i
    if i >= 1 and toks[i - 1].text == "operator":
        name = "operator" + name
        start = i - 1
    elif toks[i].kind == "id":
        if i >= 1 and toks[i - 1].text == "~":
            name = "~" + name
            start = i - 1
    # Walk back over Class:: qualifiers.
    quals: List[str] = []
    j = start
    while j >= 2 and toks[j - 1].text == "::" and toks[j - 2].kind == "id":
        quals.insert(0, toks[j - 2].text)
        j -= 2
    return name, "::".join(quals), j


def _looks_like_function_def(after: List[Token]) -> bool:
    """Classifies the tokens between a declarator's `)` and the `{`:
    qualifiers, trailing return, or a ctor init list."""
    i = 0
    n = len(after)
    while i < n:
        t = after[i].text
        if t in ("const", "noexcept", "override", "final", "mutable",
                 "volatile", "&", "&&", "throw", "try"):
            i += 1
            continue
        if t == "(":  # noexcept(...)
            i = _match_balanced(after, i, "(", ")")
            continue
        if t == "->":  # trailing return type
            i += 1
            continue
        if t == ":":  # ctor init list: rest is initializers
            return True
        if after[i].kind == "id" or t in ("::", "<", ">", ",", "*"):
            i += 1
            continue
        return False
    return True


def _type_head(toks: List[Token]) -> str:
    """Normalizes a type spelling's head: `std :: vector < T >` ->
    "std::vector", `const Bytes &` -> "Bytes"."""
    parts: List[str] = []
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text in ("const", "volatile", "struct", "class", "typename"):
            i += 1
            continue
        if t.kind == "id":
            parts.append(t.text)
            i += 1
            if i < n and toks[i].text == "::":
                parts.append("::")
                i += 1
                continue
            break
        i += 1
    return "".join(parts)


def _spelling(toks: List[Token]) -> str:
    out = []
    for t in toks:
        if out and (
            (t.kind in ("id", "num") and out[-1][-1].isalnum())
            or (t.kind == "id" and out[-1][-1] == "_")
        ):
            out.append(" ")
        out.append(t.text)
    return "".join(out)


_ALLOC_FUNCS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string",
}

_MUTATING_METHODS = {
    "push_back", "pop_back", "push_front", "pop_front", "emplace",
    "emplace_back", "emplace_front", "insert", "erase", "clear",
    "assign", "resize", "reserve", "swap", "reset", "append",
    "push", "pop", "store", "fetch_add", "fetch_sub", "merge",
    "extract", "splice", "remove", "shrink_to_fit",
}


class LiteFrontend:
    """Parses files into a srcmodel.Model."""

    def __init__(self, alloc_types: Optional[set] = None):
        self.model = Model()
        # Heap-backed types whose per-call local construction the
        # hot-alloc check flags.
        self.alloc_types = alloc_types or {
            "std::string", "std::vector", "std::deque", "std::list",
            "std::map", "std::set", "std::multimap", "std::multiset",
            "std::unordered_map", "std::unordered_set", "std::function",
            "std::stringstream", "std::ostringstream",
            "std::istringstream", "std::basic_string", "Bytes",
            "fresque::Bytes",
        }

    # -- public API ---------------------------------------------------

    def parse_file(self, path: str, text: str) -> None:
        sf = tokenize(text, path)
        self.model.files[path] = sf
        cur = _Cursor(sf.tokens)
        self._parse_scope(cur, sf, namespaces=[], class_stack=[])

    def parse_files(self, root: str, rel_paths: List[str]) -> Model:
        """Driver entry point: parses repo-relative paths under root."""
        import os
        for rel in rel_paths:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as fh:
                self.parse_file(rel, fh.read())
        return self.model

    def finish(self) -> Model:
        self.model.finalize()
        return self.model

    # -- scope scanning -----------------------------------------------

    def _parse_scope(self, cur: _Cursor, sf: SourceFile,
                     namespaces: List[str],
                     class_stack: List[ClassInfo]) -> None:
        pending: List[Token] = []
        while not cur.eof():
            t = cur.next()
            if t.text == ";":
                self._handle_decl_statement(pending, sf, class_stack)
                pending = []
                continue
            if t.text == "}":
                return
            if t.text == ":" and pending and pending[-1].text in (
                "public", "private", "protected",
            ):
                pending = []
                continue
            if t.text == "=":
                # `= default` / `= delete` / field initializers: keep.
                pending.append(t)
                continue
            if t.text == "{":
                self._handle_open_brace(cur, sf, pending, namespaces,
                                        class_stack)
                pending = []
                continue
            pending.append(t)

    def _handle_open_brace(self, cur: _Cursor, sf: SourceFile,
                           pending: List[Token],
                           namespaces: List[str],
                           class_stack: List[ClassInfo]) -> None:
        stripped, is_hot = _strip_decl_noise(pending)
        texts = [t.text for t in stripped]
        if not stripped:
            self._skip_braces(cur)  # stray block at decl scope
            return
        if texts[0] == "namespace":
            name = texts[-1] if len(texts) > 1 else ""
            self._parse_scope(cur, sf, namespaces + ([name] if name else []),
                              class_stack)
            return
        if texts[0] == "extern":  # extern "C" { ... }
            self._parse_scope(cur, sf, namespaces, class_stack)
            return
        if texts[0] == "enum":
            self._skip_braces(cur)
            return
        if texts[0] in ("class", "struct", "union"):
            # Name: identifier after class/struct, skipping attributes
            # (already stripped) and FRESQUE_CAPABILITY-style macros
            # (stripped too). Stop before base-clause ':'.
            name = ""
            for tok in stripped[1:]:
                if tok.kind == "id":
                    name = tok.text
                elif tok.text in (":", "<"):
                    break
                if name:
                    break
            qual = "::".join(
                [n for n in namespaces]
                + [c.name for c in class_stack]
                + ([name] if name else [])
            )
            cls = ClassInfo(name=name or "<anon>", qual_name=qual,
                            file=sf.path,
                            line=stripped[0].line)
            # Inner classes shadow same-name outer ones deliberately.
            self.model.classes[cls.name] = cls
            self._parse_scope(cur, sf, namespaces, class_stack + [cls])
            return
        if "=" in texts:
            # Namespace/class-scope initializer braces: consume.
            self._skip_braces(cur)
            return
        declarator = _cut_at_init_list(stripped)
        pg = _find_param_group(declarator)
        if pg is not None and _looks_like_function_def(declarator[pg[1]:]):
            self._parse_function(cur, sf, declarator, is_hot, pg,
                                 namespaces, class_stack)
            return
        # Unrecognized (e.g. `struct {` anonymous member): skip block.
        self._skip_braces(cur)

    def _skip_braces(self, cur: _Cursor) -> None:
        depth = 1
        while not cur.eof():
            t = cur.next()
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return

    # -- declarations -------------------------------------------------

    def _handle_decl_statement(self, pending: List[Token], sf: SourceFile,
                               class_stack: List[ClassInfo]) -> None:
        stripped, is_hot = _strip_decl_noise(pending)
        if not stripped:
            return
        texts = [t.text for t in stripped]
        if texts[0] in ("using", "typedef", "friend", "namespace",
                        "public", "private", "protected", "enum",
                        "class", "struct", "union", "concept"):
            return
        pg = _find_param_group(stripped)
        if pg is not None:
            # Method/function declaration (or `Type name(init);` —
            # indistinguishable; both are fine to record, unknown names
            # simply never resolve).
            self._record_function_decl(stripped, is_hot, pg, sf,
                                       class_stack)
            return
        if class_stack:
            self._record_field(stripped, pending, sf, class_stack[-1])

    def _record_function_decl(self, toks: List[Token], is_hot: bool,
                              pg: Tuple[int, int], sf: SourceFile,
                              class_stack: List[ClassInfo]) -> None:
        name, qual, name_start = _declarator_name(toks, pg[0])
        if not name or name in _KEYWORDS:
            return
        class_name = qual.split("::")[-1] if qual else (
            class_stack[-1].name if class_stack else ""
        )
        ret = _spelling(toks[:name_start])
        is_ctor = name == class_name and not ret
        is_dtor = name.startswith("~")
        fn = Function(
            qual_name=(class_name + "::" + name) if class_name else name,
            simple_name=name,
            class_name=class_name,
            file=sf.path,
            line=toks[name_start].line if name_start < len(toks)
            else toks[0].line,
            return_type="" if (is_ctor or is_dtor) else ret,
            is_hot=is_hot,
            is_definition=False,
            is_ctor=is_ctor,
            is_dtor=is_dtor,
        )
        self.model.functions.append(fn)

    def _record_field(self, toks: List[Token], raw: List[Token],
                      sf: SourceFile, cls: ClassInfo) -> None:
        texts = [t.text for t in raw]
        is_static = "static" in texts
        is_const = "const" in texts or "constexpr" in texts
        is_mutable = "mutable" in texts
        # Annotations live in the *raw* tokens (stripped as macros).
        guarded = self._macro_arg(raw, "FRESQUE_GUARDED_BY")
        pt_guarded = self._macro_arg(raw, "FRESQUE_PT_GUARDED_BY")
        # Cut at '=' or '{' initializer.
        cut = len(toks)
        depth = 0
        for i, t in enumerate(toks):
            if t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth -= 2 if t.text == ">>" else 1
            elif depth <= 0 and t.text in ("=", "{"):
                cut = i
                break
        decl = toks[:cut]
        if len(decl) < 2:
            return
        # Var name: last identifier; array suffix `name[N]` allowed.
        var_idx = None
        for i in range(len(decl) - 1, -1, -1):
            if decl[i].kind == "id":
                var_idx = i
                break
            if decl[i].text not in ("]", "[") and decl[i].kind != "num":
                break
        if var_idx is None or var_idx == 0:
            return
        var = decl[var_idx].text
        type_toks = decl[:var_idx]
        head = _type_head(type_toks)
        if not head:
            return
        is_atomic = head in ("std::atomic", "atomic")
        is_ref_or_ptr = any(t.text in ("*", "&") for t in type_toks)
        cls.fields.append(Field(
            name=var,
            type_name=head,
            line=decl[var_idx].line,
            is_const=is_const,
            is_static=is_static,
            is_mutable=is_mutable,
            is_atomic=is_atomic,
            is_ref_or_ptr=is_ref_or_ptr,
            guarded_by=guarded,
            pt_guarded_by=pt_guarded,
        ))

    @staticmethod
    def _macro_arg(toks: List[Token], macro: str) -> Optional[str]:
        for i, t in enumerate(toks):
            if t.text == macro and i + 1 < len(toks) \
                    and toks[i + 1].text == "(":
                j = _match_balanced(toks, i + 1, "(", ")")
                return _spelling(toks[i + 2:j - 1])
        return None

    # -- function bodies ----------------------------------------------

    def _parse_function(self, cur: _Cursor, sf: SourceFile,
                        decl: List[Token], is_hot: bool,
                        pg: Tuple[int, int], namespaces: List[str],
                        class_stack: List[ClassInfo]) -> None:
        name, qual, name_start = _declarator_name(decl, pg[0])
        class_name = qual.split("::")[-1] if qual else (
            class_stack[-1].name if class_stack else ""
        )
        ret = _spelling(decl[:name_start])
        is_ctor = name == class_name and not ret
        is_dtor = name.startswith("~")
        fn = Function(
            qual_name=(class_name + "::" + name) if class_name else name,
            simple_name=name,
            class_name=class_name,
            file=sf.path,
            line=decl[name_start].line if name_start < len(decl)
            else decl[0].line,
            return_type="" if (is_ctor or is_dtor) else ret,
            is_hot=is_hot,
            is_definition=True,
            is_ctor=is_ctor,
            is_dtor=is_dtor,
        )
        # Parameter types for receiver resolution.
        params = decl[pg[0] + 1:pg[1] - 1]
        for group in self._split_top_commas(params):
            if len(group) >= 2 and group[-1].kind == "id":
                head = _type_head(group[:-1])
                if head:
                    fn.var_types[group[-1].text] = head
        # Capture body tokens (ctor init lists included — harmless).
        body: List[Token] = []
        depth = 1
        while not cur.eof():
            t = cur.next()
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    break
            body.append(t)
        fn.end_line = body[-1].line if body else fn.line
        self._scan_body(fn, body)
        self.model.functions.append(fn)

    @staticmethod
    def _split_top_commas(toks: List[Token]) -> List[List[Token]]:
        out: List[List[Token]] = [[]]
        depth = 0
        for t in toks:
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            if t.text == "," and depth <= 0:
                out.append([])
            else:
                out[-1].append(t)
        return [g for g in out if g]

    def _scan_body(self, fn: Function, body: List[Token]) -> None:
        n = len(body)
        brace_depth = 0
        # Active lock scopes: (lock_id, depth_acquired_at).
        lock_stack: List[Tuple[str, int]] = []
        stmt_start = True  # at a statement boundary
        ternary_depth = 0  # open `?`s in the current statement
        stmt_static = False  # statement started with `static` (once-ever
        # initializers: their allocations run a single time, not per call)
        # Allocations feeding an error-Status construction are cold by
        # definition — the steady-state path constructs no errors. Token
        # indices below this bound sit inside `Status::Factory(...)` args.
        cold_args_until = -1
        i = 0
        while i < n:
            t = body[i]
            txt = t.text
            if txt == "{":
                brace_depth += 1
                stmt_start = True
                ternary_depth = 0
                stmt_static = False
                i += 1
                continue
            if txt == "}":
                brace_depth -= 1
                while lock_stack and lock_stack[-1][1] > brace_depth:
                    lock_stack.pop()
                # (locks acquired at the depth we just left are gone too)
                while lock_stack and lock_stack[-1][1] == brace_depth + 1:
                    lock_stack.pop()
                stmt_start = True
                ternary_depth = 0
                stmt_static = False
                i += 1
                continue
            if txt == ";":
                stmt_start = True
                ternary_depth = 0
                stmt_static = False
                i += 1
                continue
            if txt == "?":
                ternary_depth += 1
                i += 1
                continue
            if txt == "static" and t.kind == "id":
                stmt_static = True
                i += 1
                continue
            if txt == "new" and t.kind == "id":
                if not stmt_static and i >= cold_args_until:
                    fn.alloc_tokens.append(("new", t.line))
                stmt_start = False
                i += 1
                continue
            if (
                txt == "Status"
                and t.kind == "id"
                and i + 3 < n
                and body[i + 1].text == "::"
                and body[i + 2].kind == "id"
                and body[i + 3].text == "("
            ):
                close = _match_balanced(body, i + 3, "(", ")")
                cold_args_until = max(cold_args_until, close)
            # (alloc-function calls are recorded by _try_decl_or_call,
            # which owns call-chain scanning.)
            # MutexLock acquisition: `MutexLock name ( expr )`.
            if (
                txt == "MutexLock"
                and i + 2 < n
                and body[i + 1].kind == "id"
                and body[i + 2].text == "("
            ):
                j = _match_balanced(body, i + 2, "(", ")")
                expr = _spelling(body[i + 3:j - 1])
                held = tuple(lid for lid, _ in lock_stack)
                fn.acquires.append(LockAcquire(
                    lock_id="",  # resolved later (needs class context)
                    expr=expr, line=t.line, held=held,
                ))
                # The RAII object lives until the block it was declared
                # in closes: pop when brace_depth drops below the depth
                # at acquisition.
                lock_stack.append((expr, brace_depth))
                i = j
                stmt_start = False
                continue
            # `auto x = std::make_unique<T>(...)` and friends: a local
            # decl whose head is a keyword, still wanted for receiver
            # type resolution.
            if txt == "auto" and stmt_start:
                consumed = self._try_local_decl(fn, body, i)
                if consumed:
                    i = consumed
                    stmt_start = False
                    continue
            # Field mutations (for guarded-by) + local decls + calls.
            if t.kind == "id" and txt not in _KEYWORDS:
                consumed = self._try_decl_or_call(
                    fn, body, i, stmt_start,
                    tuple(lid for lid, _ in lock_stack),
                    stmt_static=stmt_static or i < cold_args_until)
                if consumed:
                    i = consumed
                    stmt_start = False
                    continue
                self._try_mutation(fn, body, i)
            if txt == ":" and ternary_depth > 0:
                # Ternary continuation, not a label: `x = c ? a : b;`.
                ternary_depth -= 1
                stmt_start = False
            else:
                stmt_start = txt in ("else", ":", "do")
            i += 1

    def _try_mutation(self, fn: Function, body: List[Token],
                      i: int) -> None:
        t = body[i]
        nxt = body[i + 1] if i + 1 < len(body) else None
        prev = body[i - 1] if i > 0 else None
        # member_ = ..., member_ += ..., member_++ / ++member_
        if prev is not None and prev.text in (".", "->", "::"):
            if not (prev.text == "->" and i >= 2
                    and body[i - 2].text == "this"):
                return  # x.field: not our own member access
        if nxt is None:
            return
        if nxt.text in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                        "^=", "<<=", ">>=", "++", "--"):
            fn.mutations.append((t.text, t.line, "assign"))
            return
        if prev is not None and prev.text in ("++", "--"):
            fn.mutations.append((t.text, t.line, "incdec"))
            return
        if nxt.text in (".", "->") and i + 3 < len(body):
            meth = body[i + 2]
            if (
                meth.kind == "id"
                and meth.text in _MUTATING_METHODS
                and body[i + 3].text == "("
            ):
                fn.mutations.append(
                    (t.text, t.line, "call:" + meth.text))
        if nxt.text == "[":
            j = _match_balanced(body, i + 1, "[", "]")
            if j < len(body) and body[j].text in (
                "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            ):
                fn.mutations.append((t.text, t.line, "assign"))

    def _try_decl_or_call(self, fn: Function, body: List[Token], i: int,
                          stmt_start: bool,
                          held: Tuple[str, ...],
                          stmt_static: bool = False) -> Optional[int]:
        """At an identifier, recognizes either a local declaration
        `Type name...` or a call `chain(...)`. Returns the index to
        resume at, or None."""
        n = len(body)
        # --- local declaration: Type [<...>] [*&]* name (terminator) --
        if stmt_start:
            consumed = self._try_local_decl(fn, body, i)
            if consumed:
                return consumed
        # --- call: chain ( ... ) --------------------------------------
        # Walk the chain forward from i: id (:: id | . id | -> id)* '('
        j = i
        chain_start = i
        prev = body[i - 1] if i > 0 else None
        if prev is not None and prev.text in (".", "->", "::"):
            return None  # middle of a chain; the head already handled it
        receiver_parts: List[str] = []
        while True:
            if j >= n or body[j].kind != "id":
                return None
            name_tok = body[j]
            j += 1
            # Skip template args on the segment: Foo<...>(
            if j < n and body[j].text == "<":
                k = _match_angle(body, j)
                if k is not None and k < n and body[k].text in (
                    "(", "::", ".", "->",
                ):
                    j = k
            if j < n and body[j].text in ("::", ".", "->"):
                receiver_parts.append(name_tok.text)
                receiver_parts.append(body[j].text)
                j += 1
                continue
            break
        if j >= n or body[j].text != "(":
            return None
        if name_tok.text in _KEYWORDS:
            return None
        # `Type name(args);` declarations at statement start were already
        # tried above; what remains is a call.
        close = _match_balanced(body, j, "(", ")")
        receiver = "".join(receiver_parts)
        is_stmt = stmt_start and close < n and body[close].text == ";"
        void_cast = False
        if stmt_start and chain_start >= 3:
            if (
                body[chain_start - 1].text == ")"
                and body[chain_start - 2].text == "void"
                and body[chain_start - 3].text == "("
            ):
                void_cast = True
                is_stmt = close < n and body[close].text == ";"
        if name_tok.text in _ALLOC_FUNCS and not stmt_static:
            fn.alloc_tokens.append((name_tok.text, name_tok.line))
        fn.calls.append(Call(
            name=name_tok.text,
            receiver=receiver,
            line=name_tok.line,
            held=held,
            is_statement=is_stmt,
            void_cast=void_cast,
        ))
        # `field_.push_back(...)` / `this->field_.clear()` are mutations
        # of the receiver head as well as calls.
        if name_tok.text in _MUTATING_METHODS and receiver_parts:
            parts = receiver_parts
            if len(parts) >= 4 and parts[0] == "this":
                parts = parts[2:]
            if len(parts) == 2 and parts[1] in (".", "->"):
                fn.mutations.append(
                    (parts[0], name_tok.line, "call:" + name_tok.text))
        # Don't consume the arguments: nested calls inside must be seen.
        return j + 1

    def _try_local_decl(self, fn: Function, body: List[Token],
                        i: int) -> Optional[int]:
        """Matches `[static] Type[<..>] [*&]* name (';' | '=' | '(' | '{')`
        at a statement start. Records allocating locals; returns resume
        index (just past the declarator name) or None."""
        n = len(body)
        j = i
        is_static = False
        prev = body[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "id" and prev.text in (
            "static", "constexpr", "thread_local",
        ):
            is_static = True
        # Parse type chain.
        type_toks: List[Token] = []
        while j < n and body[j].kind == "id":
            if body[j].text in ("const", "typename"):
                j += 1
                continue
            type_toks.append(body[j])
            j += 1
            if j < n and body[j].text == "::":
                type_toks.append(body[j])
                j += 1
                continue
            break
        if not type_toks or j >= n:
            return None
        pointee = ""  # smart pointers: the template argument's head
        if body[j].text == "<":
            k = _match_angle(body, j)
            if k is None:
                return None
            inner: List[Token] = []
            for tok in body[j + 1:k - 1]:
                if tok.kind == "id" or tok.text == "::":
                    inner.append(tok)
                else:
                    break
            if inner:
                pointee = _type_head(inner)
            j = k
        ref_ptr = False
        while j < n and body[j].text in ("*", "&", "&&", "const"):
            if body[j].text in ("*", "&", "&&"):
                ref_ptr = True
            j += 1
        if j >= n or body[j].kind != "id" or body[j].text in _KEYWORDS:
            return None
        var = body[j]
        if j + 1 >= n or body[j + 1].text not in (";", "=", "(", "{"):
            return None
        head = _type_head(type_toks)
        if head in ("return", "else"):
            return None
        has_init = body[j + 1].text != ";"
        move_init = (
            j + 5 < n
            and body[j + 1].text in ("=", "(", "{")
            and body[j + 2].text == "std"
            and body[j + 3].text == "::"
            and body[j + 4].text == "move"
            and body[j + 5].text == "("
        )
        fn.locals.append(LocalDecl(
            has_init=has_init,
            is_move_init=move_init,
            type_name=head,
            var=var.text,
            line=var.line,
            is_static=is_static,
            is_ref_or_ptr=ref_ptr,
        ))
        # Receiver resolution wants the logical type: see through smart
        # pointers and `auto x = std::make_unique<T>(...)`.
        recv_type = head
        if head in ("std::unique_ptr", "std::shared_ptr") and pointee:
            recv_type = pointee
        elif head == "auto" and body[j + 1].text == "=":
            k = j + 2
            parts: List[Token] = []
            while k < n and (body[k].kind == "id" or body[k].text == "::"):
                parts.append(body[k])
                k += 1
            maker = _type_head(parts)
            if maker in ("std::make_unique", "std::make_shared") \
                    and k < n and body[k].text == "<":
                inner2: List[Token] = []
                for tok in body[k + 1:]:
                    if tok.kind == "id" or tok.text == "::":
                        inner2.append(tok)
                    else:
                        break
                if inner2:
                    recv_type = _type_head(inner2)
        fn.var_types.setdefault(var.text, recv_type)
        return j + 1


def parse_files(paths: List[str], read=None) -> Model:
    fe = LiteFrontend()
    for p in paths:
        text = read(p) if read else open(p, encoding="utf-8",
                                         errors="replace").read()
        fe.parse_file(p, text)
    return fe.finish()
