#!/usr/bin/env python3
"""Golden-fixture tests for fresque_lint (run via ctest: fresque_lint_fixtures).

Each check gets at least one positive fixture (must fire) and one
negative fixture (must stay silent), parsed with the lite frontend —
the dependency-free reference engine. Fixtures are registered under
synthetic src/ paths because several checks scope themselves to src/.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod
import frontend_lite
import srcmodel

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "testdata")


def load(*fixtures):
    """Parses fixture files under synthetic src/ paths, returns the
    finalized Model. `fixtures` are (filename, synthetic_path) pairs or
    bare filenames (mapped to src/fixture/<name>)."""
    fe = frontend_lite.LiteFrontend()
    for fx in fixtures:
        if isinstance(fx, tuple):
            name, path = fx
        else:
            name, path = fx, f"src/fixture/{fx}"
        with open(os.path.join(TESTDATA, name), encoding="utf-8") as fh:
            fe.parse_file(path, fh.read())
    fe.model.finalize()
    return fe.model


def run(model, runner):
    """Runs a check and applies per-site suppressions, like the driver."""
    findings = runner(model)
    if isinstance(findings, tuple):  # lock-order returns (findings, graph)
        findings = findings[0]
    kept = []
    for f in findings:
        sf = model.files.get(f.file)
        if sf is not None and sf.suppressed(f.check, f.line):
            continue
        kept.append(f)
    return kept


class LockOrderTest(unittest.TestCase):
    def test_positive_abba_cycle(self):
        model = load("lock_order_bad.cc")
        findings, graph = checks_mod.run_lock_order(model)
        self.assertTrue(findings, "ABBA cycle must be reported")
        self.assertTrue(all(f.check == "lock-order" for f in findings))
        self.assertIn(("A::mu_", "B::mu_"), graph.edges)
        self.assertIn(("B::mu_", "A::mu_"), graph.edges)
        self.assertIsNone(checks_mod.topological_order(graph))

    def test_negative_consistent_order(self):
        model = load("lock_order_good.cc")
        findings, graph = checks_mod.run_lock_order(model)
        self.assertEqual(findings, [])
        self.assertIn(("A::mu_", "B::mu_"), graph.edges)
        order = checks_mod.topological_order(graph)
        self.assertIsNotNone(order)
        self.assertLess(order.index("A::mu_"), order.index("B::mu_"))

    def test_dag_rendering_is_deterministic(self):
        model = load("lock_order_good.cc")
        _, graph = checks_mod.run_lock_order(model)
        doc1 = checks_mod.render_lock_dag(graph)
        doc2 = checks_mod.render_lock_dag(graph)
        self.assertEqual(doc1, doc2)
        self.assertIn("`A::mu_` | `B::mu_`", doc1)


class RawSyncTest(unittest.TestCase):
    def test_positive_raw_mutex_outside_common(self):
        model = load(("raw_sync_bad.cc", "src/engine/raw_sync_bad.cc"))
        findings = run(model, checks_mod.run_raw_sync)
        kinds = {f.message.split(" ")[0] for f in findings}
        self.assertGreaterEqual(len(findings), 3)  # mutex, lock_guard, include
        self.assertIn("raw", kinds)
        self.assertTrue(any("#include <mutex>" in f.message
                            for f in findings))

    def test_negative_wrappers(self):
        model = load(("raw_sync_good.cc", "src/engine/raw_sync_good.cc"))
        self.assertEqual(run(model, checks_mod.run_raw_sync), [])

    def test_common_is_exempt(self):
        model = load(("raw_sync_bad.cc", "src/common/raw_sync_bad.cc"))
        self.assertEqual(run(model, checks_mod.run_raw_sync), [])


class HotAllocTest(unittest.TestCase):
    def test_positive_direct_and_transitive(self):
        model = load("hot_alloc_bad.cc")
        findings = run(model, checks_mod.run_hot_alloc)
        self.assertGreaterEqual(len(findings), 3)
        msgs = "\n".join(f.message for f in findings)
        self.assertIn("`new` allocation", msgs)
        self.assertIn("make_unique", msgs)
        self.assertIn("std::string label", msgs)
        self.assertTrue(any("Widget::Handle -> Widget::Helper" in m
                            for m in msgs.splitlines()))

    def test_negative_sanctioned_patterns(self):
        model = load("hot_alloc_good.cc")
        self.assertEqual(run(model, checks_mod.run_hot_alloc), [])


class DiscardedStatusTest(unittest.TestCase):
    def test_positive_value_ref_and_result(self):
        model = load("discarded_status_bad.cc")
        findings = run(model, checks_mod.run_discarded_status)
        self.assertEqual(len(findings), 3)
        called = sorted(f.message for f in findings)
        self.assertTrue(any("Put" in m for m in called))
        self.assertTrue(any("LastError" in m for m in called))
        self.assertTrue(any("Get" in m for m in called))

    def test_negative_consumed_and_void_cast(self):
        model = load("discarded_status_good.cc")
        self.assertEqual(run(model, checks_mod.run_discarded_status), [])


class GuardedByTest(unittest.TestCase):
    def test_positive_unannotated_mutated_fields(self):
        model = load("guarded_by_bad.cc")
        findings = run(model, checks_mod.run_guarded_by)
        named = {f.message.split("`")[1] for f in findings}
        self.assertEqual(named, {"Counter::hits_", "Counter::values_"})

    def test_negative_annotated_const_atomic(self):
        model = load("guarded_by_good.cc")
        self.assertEqual(run(model, checks_mod.run_guarded_by), [])


class DupMetricTest(unittest.TestCase):
    def test_positive_kind_conflicts(self):
        model = load("dup_metric_bad.cc")
        findings = run(model, checks_mod.run_dup_metric)
        # Two conflicting names, one finding per kind involved.
        self.assertEqual(len(findings), 4)
        named = {f.message.split("`")[1] for f in findings}
        self.assertEqual(named, {"pipeline.depth", "queue.wait_ns"})
        msgs = "\n".join(f.message for f in findings)
        self.assertIn("Counter", msgs)
        self.assertIn("Gauge", msgs)
        self.assertIn("Histogram", msgs)

    def test_negative_same_kind_and_dynamic_names(self):
        model = load("dup_metric_good.cc")
        self.assertEqual(run(model, checks_mod.run_dup_metric), [])


class SuppressionTest(unittest.TestCase):
    def test_allow_silences_line_above_and_same_line(self):
        model = load("suppression.cc")
        findings = run(model, checks_mod.run_hot_alloc)
        self.assertEqual(findings, [], "documented allows must suppress")

    def test_reasonless_allow_does_not_suppress(self):
        model = load("suppression.cc")
        findings = run(model, checks_mod.run_discarded_status)
        self.assertEqual(len(findings), 1)
        self.assertIn("Ping", findings[0].message)

    def test_bad_suppressions_are_reported(self):
        model = load("suppression.cc")
        sf = next(iter(model.files.values()))
        reasonless = [s for s in sf.suppressions.values() if not s.reason]
        unknown = [s for s in sf.suppressions.values()
                   if s.checks - set(srcmodel.ALL_CHECKS)]
        self.assertEqual(len(reasonless), 1)
        self.assertEqual(len(unknown), 1)


class RepoInvariantsTest(unittest.TestCase):
    """The real tree must stay clean and its lock graph acyclic — the
    same gate the CI job runs, kept here so plain ctest exercises it."""

    ROOT = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )

    def _model(self):
        rel = []
        for dirpath, _, files in os.walk(os.path.join(self.ROOT, "src")):
            for name in sorted(files):
                if name.endswith((".h", ".cc")):
                    rel.append(os.path.relpath(
                        os.path.join(dirpath, name), self.ROOT))
        fe = frontend_lite.LiteFrontend()
        model = fe.parse_files(self.ROOT, sorted(rel))
        model.finalize()
        return model

    def test_repo_lock_graph_is_dag(self):
        model = self._model()
        findings, graph = checks_mod.run_lock_order(model)
        self.assertEqual(findings, [])
        self.assertIsNotNone(checks_mod.topological_order(graph))
        # The pipeline's one deliberate nesting must stay visible: the
        # cloud node publishes into the server under its own lock.
        self.assertIn(("CloudNode::mu_", "CloudServer::mu_"), graph.edges)

    def test_repo_is_clean_modulo_documented_suppressions(self):
        model = self._model()
        for runner in (
            checks_mod.run_raw_sync,
            checks_mod.run_hot_alloc,
            checks_mod.run_discarded_status,
            checks_mod.run_guarded_by,
            checks_mod.run_dup_metric,
        ):
            self.assertEqual(run(model, runner), [],
                             f"{runner.__name__} must be clean")


if __name__ == "__main__":
    unittest.main(verbosity=2)
