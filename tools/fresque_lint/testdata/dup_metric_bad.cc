// Positive fixture for dup-metric: the same metric name registered as
// two (or three) different instrument kinds must be reported.

namespace fresque {

class Registry {
 public:
  int* GetCounter(const char* name);
  int* GetGauge(const char* name);
  int* GetHistogram(const char* name);
};

void RecordIngest(Registry* reg, int depth) {
  // One name, two macro kinds: conflict.
  FRESQUE_COUNTER_ADD("pipeline.depth", 1);
  FRESQUE_GAUGE_SET("pipeline.depth", depth);

  // Conflict across a macro and a registry call, with an
  // adjacent-literal splice on one side.
  FRESQUE_HISTOGRAM_RECORD("queue." "wait_ns", depth);
  reg->GetCounter("queue.wait_ns");

  // Single-kind registration: silent.
  FRESQUE_HISTOGRAM_RECORD("pipeline.e2e_ns", depth);
}

}  // namespace fresque
