// Fixture: lock-order POSITIVE — A::mu_ -> B::mu_ and B::mu_ -> A::mu_
// form a cycle (the classic ABBA deadlock), one edge direct and one
// through a call.
#include "common/mutex.h"

namespace fresque {

class B;

class A {
 public:
  void Foo();
  void Leaf();
  B* b_;
  Mutex mu_;
};

class B {
 public:
  void Bar();
  A* a_;
  Mutex mu_;
};

void A::Foo() {
  MutexLock lock(mu_);
  b_->Bar();  // holds A::mu_, Bar takes B::mu_
}

void A::Leaf() { MutexLock lock(mu_); }

void B::Bar() {
  MutexLock lock(mu_);
  a_->Leaf();  // holds B::mu_, Leaf takes A::mu_ — cycle closed
}

}  // namespace fresque
