// Fixture: hot-alloc NEGATIVE — the sanctioned zero-alloc patterns:
// member scratch buffers, default-constructed locals, move construction,
// once-ever static initializers, and allocations in functions that are
// not reachable from any FRESQUE_HOT root.
#include "common/hot.h"

namespace fresque {

class Tables {
 public:
  static const Tables& Global() {
    static const Tables* const kTables = new Tables();  // once, not per call
    return *kTables;
  }
};

class Widget {
 public:
  FRESQUE_HOT void Handle(int n);
  void ColdSetup();

 private:
  std::vector<int> scratch_;  // member buffer: amortizes to zero
};

void Widget::Handle(int n) {
  scratch_.clear();
  for (int i = 0; i < n; ++i) scratch_.push_back(i);
  std::vector<int> taken = std::move(scratch_);  // move: steals, no alloc
  Bytes empty;                                   // default-construct: free
  (void)Tables::Global();
  scratch_ = std::move(taken);
}

void Widget::ColdSetup() {
  // Allocates freely: not FRESQUE_HOT and not called from a hot root.
  std::string config = std::to_string(42);
  (void)config;
}

}  // namespace fresque
