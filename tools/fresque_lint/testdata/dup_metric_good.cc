// Negative fixture for dup-metric: everything here is legitimate and
// the check must stay silent.

#include <string>

namespace fresque {

class Registry {
 public:
  int* GetCounter(const std::string& name);
  int* GetGauge(const std::string& name);
};

void RecordIngest(Registry* reg, const std::string& node, int depth) {
  // Same name, same kind, many sites: the registry deduplicates.
  FRESQUE_COUNTER_ADD("cloud.records_in", 1);
  FRESQUE_COUNTER_ADD("cloud.records_in", depth);
  reg->GetCounter("cloud.records_in");

  // Distinct names may use distinct kinds freely.
  FRESQUE_GAUGE_SET("queue.depth", depth);
  FRESQUE_HISTOGRAM_RECORD("queue.wait_ns", depth);

  // Dynamic names are skipped (the runtime charter test covers them);
  // this must NOT collide with the literal gauge above.
  FRESQUE_COUNTER_ADD("queue." + node, 1);
  reg->GetGauge(node);
}

}  // namespace fresque
