// Fixture: guarded-by POSITIVE — a mutex-owning class with unannotated
// members mutated outside the constructor (plain assignment and a
// mutating container method).
#include "common/mutex.h"

namespace fresque {

class Counter {
 public:
  Counter() : hits_(0) {}
  void Bump();
  void Record(int v);

 private:
  Mutex mu_;
  int hits_;                 // mutated by Bump, no FRESQUE_GUARDED_BY
  std::vector<int> values_;  // mutated by Record, no FRESQUE_GUARDED_BY
};

void Counter::Bump() {
  MutexLock lock(mu_);
  ++hits_;
}

void Counter::Record(int v) {
  MutexLock lock(mu_);
  values_.push_back(v);
}

}  // namespace fresque
