// Fixture: lock-order NEGATIVE — nested acquisition in one consistent
// direction (A::mu_ before B::mu_, everywhere) is a DAG, not a cycle.
#include "common/mutex.h"

namespace fresque {

class B {
 public:
  void Bar();
  Mutex mu_;
};

class A {
 public:
  void Foo();
  void Baz();
  B* b_;
  Mutex mu_;
};

void B::Bar() { MutexLock lock(mu_); }

void A::Foo() {
  MutexLock lock(mu_);
  b_->Bar();
}

void A::Baz() {
  MutexLock lock(mu_);
  b_->Bar();  // same direction as Foo: fine
}

}  // namespace fresque
