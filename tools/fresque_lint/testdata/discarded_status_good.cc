// Fixture: discarded-status NEGATIVE — consumed, propagated, or
// explicitly (void)-discarded results; ternary continuations must not be
// mistaken for expression statements.
#include "common/status.h"

namespace fresque {

class Store {
 public:
  Status Put(int key);
  Result<int> Get(int key);
  void Use(bool flag);
  int Size();

 private:
  Status last_;
};

void Store::Use(bool flag) {
  Status st = Put(1);          // consumed
  last_ = flag ? Put(2)        // ternary arms are not statements
               : Put(3);
  (void)Put(4);                // explicit discard
  auto got = Get(5);           // consumed
  if (!got.ok() || !st.ok()) return;
  Size();                      // non-Status return: nothing to discard
}

}  // namespace fresque
