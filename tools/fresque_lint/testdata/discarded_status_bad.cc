// Fixture: discarded-status POSITIVE — Status/Result returns dropped on
// the floor, including through a reference-returning helper (which
// [[nodiscard]] on the class does NOT catch: the discarded expression is
// a reference, so the compiler stays silent and the lint must not).
#include "common/status.h"

namespace fresque {

class Store {
 public:
  Status Put(int key);
  Status& LastError();
  Result<int> Get(int key);
  void Use();

 private:
  Status last_;
};

void Store::Use() {
  Put(1);        // discarded Status (value)
  LastError();   // discarded Status& — invisible to [[nodiscard]]
  Get(2);        // discarded Result<int>
}

}  // namespace fresque
