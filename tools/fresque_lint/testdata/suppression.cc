// Fixture: suppression semantics — a finding silenced by a documented
// allow comment (same line and line-above forms), a suppression with no
// reason (invalid: the finding survives), and an allow naming an unknown
// check (reported as bad-suppression).
#include "common/hot.h"
#include "common/status.h"

namespace fresque {

class Svc {
 public:
  Status Ping();
  FRESQUE_HOT void Handle();
  void Other();
};

void Svc::Handle() {
  // fresque-lint: allow(hot-alloc) cold path exercised once at startup
  std::string banner = std::to_string(1);
  std::string tag = std::to_string(2);  // fresque-lint: allow(hot-alloc) same cold path
  (void)banner;
  (void)tag;
}

void Svc::Other() {
  // fresque-lint: allow(discarded-status)
  Ping();  // reasonless allow above does NOT suppress this
  // fresque-lint: allow(no-such-check) typo'd check name
  (void)Ping();
}

}  // namespace fresque
