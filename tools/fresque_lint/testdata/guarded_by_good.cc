// Fixture: guarded-by NEGATIVE — annotated members, const/atomic
// members, and constructor-only writes need no annotation.
#include <atomic>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fresque {

class Counter {
 public:
  explicit Counter(int seed) { hits_ = seed; }  // ctor writes are fine
  void Bump();

 private:
  Mutex mu_;
  int hits_ FRESQUE_GUARDED_BY(mu_) = 0;
  std::atomic<int> fast_hits_{0};  // atomics guard themselves
  const int limit_ = 10;           // const: never mutated
};

void Counter::Bump() {
  MutexLock lock(mu_);
  ++hits_;
  fast_hits_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fresque
