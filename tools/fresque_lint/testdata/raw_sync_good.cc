// Fixture: raw-sync NEGATIVE — the annotated wrappers from
// common/mutex.h are the sanctioned synchronization outside src/common/.
#include "common/mutex.h"

namespace fresque {

class Wrapped {
 public:
  void Touch() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ FRESQUE_GUARDED_BY(mu_) = 0;
};

}  // namespace fresque
