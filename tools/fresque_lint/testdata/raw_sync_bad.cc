// Fixture: raw-sync POSITIVE — std::mutex / std::lock_guard and the
// <mutex> include outside src/common/ must be flagged (the runner feeds
// this file in as src/engine/raw_sync_bad.cc).
#include <mutex>

namespace fresque {

class Unwrapped {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace fresque
