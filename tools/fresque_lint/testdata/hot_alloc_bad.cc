// Fixture: hot-alloc POSITIVE — a FRESQUE_HOT function allocating
// directly (new, make_unique, per-call std::string) and transitively
// through a callee.
#include "common/hot.h"

namespace fresque {

class Widget {
 public:
  FRESQUE_HOT void Handle(int n);
  void Helper();

 private:
  int* scratch_ = nullptr;
};

void Widget::Handle(int n) {
  scratch_ = new int[n];                  // direct new
  std::string label = std::to_string(n);  // per-call heap local
  Helper();                               // transitive allocation
}

void Widget::Helper() {
  auto owned = std::make_unique<int>(7);  // reached from a hot root
  (void)owned;
}

}  // namespace fresque
