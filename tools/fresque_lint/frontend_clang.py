"""libclang frontend for fresque_lint.

Produces the same srcmodel.Model as frontend_lite, but from a real AST:
receiver types, out-of-line definitions and FRESQUE_HOT tags (via the
`annotate("fresque_hot")` attribute common/hot.h emits under clang) come
from semantic information instead of token heuristics.

Availability is probed by ClangFrontend.create(): it returns None when
the python `clang` bindings or a loadable libclang are missing, and the
driver degrades to the lite frontend (or to a clean skip when the user
asked for `--frontend clang` explicitly) — the same contract as
scripts/lint.sh without clang-tidy.

File-level artifacts (token stream for raw-sync, include list,
suppression comments) still come from frontend_lite's tokenizer: those
are lexical by nature, and sharing the code keeps the two frontends'
suppression semantics identical.
"""

from __future__ import annotations

import os
from typing import List, Optional

import frontend_lite
from srcmodel import (
    Call,
    ClassInfo,
    Field,
    Function,
    LocalDecl,
    LockAcquire,
    Model,
)

_ALLOC_CALLS = frontend_lite._ALLOC_FUNCS
_ALLOC_TYPE_HEADS = {
    "std::basic_string", "std::string", "std::vector", "std::deque",
    "std::list", "std::map", "std::set", "std::multimap", "std::multiset",
    "std::unordered_map", "std::unordered_set", "std::function",
    "std::basic_stringstream", "std::basic_ostringstream",
    "std::basic_istringstream", "fresque::Bytes",
}
_MUTATING_METHODS = frontend_lite._MUTATING_METHODS


def _type_head(type_spelling: str) -> str:
    """`std::vector<int>` -> `std::vector`; strips cv/ref noise."""
    s = type_spelling.replace("const ", "").replace("&", "").strip()
    return s.split("<")[0].strip()


class ClangFrontend:
    def __init__(self, cindex) -> None:
        self._cx = cindex
        self._index = cindex.Index.create()
        self.model = Model()

    @classmethod
    def create(cls) -> Optional["ClangFrontend"]:
        try:
            from clang import cindex  # noqa: PLC0415
        except ImportError:
            return None
        try:
            cindex.Index.create()
        except Exception:  # libclang.so not loadable / version mismatch
            return None
        return cls(cindex)

    # -- driver API ---------------------------------------------------

    def parse_files(self, root: str, rel_paths: List[str]) -> Model:
        args = ["-std=c++20", "-x", "c++", f"-I{os.path.join(root, 'src')}"]
        for rel in rel_paths:
            path = os.path.join(root, rel)
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
            # Lexical layer (tokens, includes, suppressions) via the
            # shared tokenizer so suppression semantics never diverge.
            self.model.files[rel] = frontend_lite.tokenize(text, rel)
            tu = self._index.parse(
                path, args=args,
                options=self._cx.TranslationUnit
                .PARSE_DETAILED_PROCESSING_RECORD,
            )
            self._walk(tu.cursor, root, rel)
        return self.model

    # -- AST walking --------------------------------------------------

    def _rel(self, cursor, root: str) -> Optional[str]:
        loc = cursor.location
        if loc.file is None:
            return None
        return os.path.relpath(os.path.abspath(loc.file.name), root)

    def _walk(self, cursor, root: str, rel: str) -> None:
        K = self._cx.CursorKind
        for c in cursor.get_children():
            crel = self._rel(c, root)
            if crel is None or crel != rel:
                # Only record entities from the file being parsed; the
                # driver feeds us every file, so headers get their turn.
                if c.kind in (K.NAMESPACE,):
                    self._walk(c, root, rel)
                continue
            if c.kind in (K.NAMESPACE, K.LINKAGE_SPEC):
                self._walk(c, root, rel)
            elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                self._class(c, root, rel)
            elif c.kind in (
                K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                K.DESTRUCTOR, K.FUNCTION_TEMPLATE,
            ):
                self._function(c, rel)

    def _class(self, cursor, root: str, rel: str) -> None:
        K = self._cx.CursorKind
        cls = ClassInfo(
            name=cursor.spelling,
            qual_name=self._qual(cursor),
            file=rel,
            line=cursor.location.line,
        )
        for c in cursor.get_children():
            if c.kind == K.FIELD_DECL:
                cls.fields.append(self._field(c))
            elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL):
                self._class(c, root, rel)
            elif c.kind in (
                K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
                K.FUNCTION_TEMPLATE,
            ):
                self._function(c, rel, class_name=cursor.spelling)
        if cls.fields or cursor.spelling:
            self.model.classes.setdefault(cls.name, cls)

    def _field(self, cursor) -> Field:
        type_spelling = cursor.type.spelling
        head = _type_head(type_spelling)
        guarded = pt_guarded = None
        for a in cursor.get_children():
            if a.kind == self._cx.CursorKind.UNEXPOSED_ATTR:
                toks = [t.spelling for t in a.get_tokens()]
                blob = "".join(toks)
                if "guarded_by" in blob or "GUARDED_BY" in blob:
                    if "pt_guarded_by" in blob or "PT_GUARDED" in blob:
                        pt_guarded = blob
                    else:
                        guarded = blob
        simple_head = head.split("::")[-1]
        return Field(
            name=cursor.spelling,
            type_name="Mutex" if simple_head == "Mutex" else (
                "CondVar" if simple_head == "CondVar" else head
            ),
            line=cursor.location.line,
            is_const=cursor.type.is_const_qualified(),
            is_static=False,
            is_mutable=cursor.is_mutable_field(),
            is_atomic="std::atomic" in type_spelling
            or "atomic<" in type_spelling,
            is_ref_or_ptr=cursor.type.kind in (
                self._cx.TypeKind.POINTER, self._cx.TypeKind.LVALUEREFERENCE,
            ),
            guarded_by=guarded,
            pt_guarded_by=pt_guarded,
        )

    def _qual(self, cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.spelling and c.kind != \
                self._cx.CursorKind.TRANSLATION_UNIT:
            parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _function(self, cursor, rel: str, class_name: str = "") -> None:
        K = self._cx.CursorKind
        parent = cursor.semantic_parent
        if not class_name and parent is not None and parent.kind in (
            K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE,
        ):
            class_name = parent.spelling
        is_hot = any(
            a.kind == K.ANNOTATE_ATTR and a.spelling == "fresque_hot"
            for a in cursor.get_children()
        )
        ret = ""
        if cursor.kind not in (K.CONSTRUCTOR, K.DESTRUCTOR):
            ret = cursor.result_type.spelling
        fn = Function(
            qual_name=self._qual(cursor),
            simple_name=cursor.spelling,
            class_name=class_name,
            file=rel,
            line=cursor.location.line,
            return_type=ret,
            is_hot=is_hot,
            is_definition=cursor.is_definition(),
            is_ctor=cursor.kind == K.CONSTRUCTOR,
            is_dtor=cursor.kind == K.DESTRUCTOR,
        )
        for p in cursor.get_arguments():
            fn.var_types.setdefault(p.spelling, _type_head(p.type.spelling))
        if fn.is_definition:
            self._body(cursor, fn, held=[])
        self.model.functions.append(fn)

    def _body(self, cursor, fn: Function, held: List[str]) -> None:
        K = self._cx.CursorKind
        for c in cursor.get_children():
            kind = c.kind
            if kind == K.VAR_DECL:
                head = _type_head(c.type.spelling)
                simple = head.split("::")[-1]
                if simple == "MutexLock":
                    toks = [t.spelling for t in c.get_tokens()]
                    expr = ""
                    if "(" in toks:
                        expr = "".join(
                            toks[toks.index("(") + 1:-1]
                        ).rstrip(")")
                    fn.acquires.append(LockAcquire(
                        lock_id="", expr=expr, line=c.location.line,
                        held=tuple(held),
                    ))
                    # libclang gives no easy lexical scope; approximate
                    # with "held for the rest of this compound stmt",
                    # which matches the dominant RAII usage.
                    held = held + [expr]
                else:
                    init = list(c.get_children())
                    fn.locals.append(LocalDecl(
                        type_name="Bytes" if simple == "Bytes" else head,
                        var=c.spelling,
                        line=c.location.line,
                        is_static=c.storage_class ==
                        self._cx.StorageClass.STATIC,
                        is_ref_or_ptr=c.type.kind in (
                            self._cx.TypeKind.POINTER,
                            self._cx.TypeKind.LVALUEREFERENCE,
                        ),
                        has_init=bool(init),
                        is_move_init=any(
                            "move" in (ch.spelling or "") for ch in init
                        ),
                    ))
                    fn.var_types.setdefault(c.spelling, head)
                self._body(c, fn, held)
            elif kind == K.CXX_NEW_EXPR:
                fn.alloc_tokens.append(("new", c.location.line))
                self._body(c, fn, held)
            elif kind == K.CALL_EXPR:
                name = c.spelling
                ref = c.referenced
                receiver = ""
                if ref is not None and ref.semantic_parent is not None \
                        and ref.semantic_parent.kind in (
                            self._cx.CursorKind.CLASS_DECL,
                            self._cx.CursorKind.STRUCT_DECL,
                            self._cx.CursorKind.CLASS_TEMPLATE,
                        ):
                    receiver = ref.semantic_parent.spelling + "::"
                if name in _ALLOC_CALLS:
                    fn.alloc_tokens.append((name, c.location.line))
                if name:
                    fn.calls.append(Call(
                        name=name,
                        receiver=receiver,
                        line=c.location.line,
                        held=tuple(held),
                        # Statement-ness is judged lexically by the shared
                        # discarded-status pass; with a real AST we can do
                        # better: an unused return shows up as the call
                        # being a direct child of a compound statement.
                        is_statement=cursor.kind ==
                        self._cx.CursorKind.COMPOUND_STMT,
                        void_cast=False,
                    ))
                if name in _MUTATING_METHODS:
                    toks = [t.spelling for t in c.get_tokens()][:8]
                    if toks and toks[0] not in ("(", ")"):
                        base = toks[0] if toks[0] != "this" else (
                            toks[2] if len(toks) > 2 else ""
                        )
                        if base:
                            fn.mutations.append(
                                (base, c.location.line, "call:" + name)
                            )
                self._body(c, fn, held)
            elif kind in (
                self._cx.CursorKind.BINARY_OPERATOR,
                self._cx.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR,
                self._cx.CursorKind.UNARY_OPERATOR,
            ):
                toks = [t.spelling for t in c.get_tokens()]
                ops = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                       "^=", "<<=", ">>=", "++", "--"}
                if any(t in ops for t in toks):
                    base = toks[0] if toks else ""
                    if base == "this" and len(toks) > 2:
                        base = toks[2]
                    if base and base.isidentifier():
                        fn.mutations.append(
                            (base, c.location.line, "assign")
                        )
                self._body(c, fn, held)
            else:
                self._body(c, fn, held)
