#!/usr/bin/env python3
"""fresque_lint — FRESQUE-specific static checks over the C++ sources.

Checks (see DESIGN.md "Static analysis layer"):
  lock-order        lock-order DAG extraction + cycle detection
  raw-sync          no raw std:: synchronization outside src/common/
  hot-alloc         FRESQUE_HOT paths must not (transitively) allocate
  discarded-status  Status/Result results must not be silently dropped
  guarded-by        mutated members of mutex-owning classes need
                    FRESQUE_GUARDED_BY
  dup-metric        a metric name must register as exactly one
                    instrument kind (Counter xor Gauge xor Histogram)

Frontends:
  lite   dependency-free tokenizer frontend (always available; the
         reference engine the fixture tests pin down)
  clang  libclang AST frontend (higher precision; used in CI where the
         python `clang` bindings are installed)
  auto   clang if importable, else lite

With `--frontend clang` and no usable libclang, the tool prints a skip
notice and exits 0 — same contract as scripts/lint.sh when clang-tidy is
absent.

Per-site suppressions:
  // fresque-lint: allow(check-a,check-b) reason text
on the finding's line or the line above. The reason is mandatory.

Exit codes: 0 clean (or skipped), 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod
import srcmodel
from srcmodel import ALL_CHECKS, Model


def _collect_sources(root: str, paths: List[str]) -> List[str]:
    """Default file set: every .h/.cc under src/, repo-relative, sorted."""
    if paths:
        out = []
        for p in paths:
            rel = os.path.relpath(os.path.abspath(p), root)
            out.append(rel)
        return sorted(out)
    out = []
    src = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in filenames:
            if name.endswith((".h", ".cc")):
                out.append(
                    os.path.relpath(os.path.join(dirpath, name), root)
                )
    return sorted(out)


def _load_frontend(kind: str):
    """Returns (frontend, label) or (None, reason-to-skip)."""
    if kind in ("clang", "auto"):
        try:
            import frontend_clang  # noqa: PLC0415

            fe = frontend_clang.ClangFrontend.create()
            if fe is not None:
                return fe, "clang"
            if kind == "clang":
                return None, "libclang not usable on this machine"
        except ImportError:
            if kind == "clang":
                return None, "python clang bindings not installed"
    import frontend_lite  # noqa: PLC0415

    return frontend_lite.LiteFrontend(), "lite"


def _validate_suppressions(model: Model) -> List[checks_mod.Finding]:
    """A suppression naming an unknown check, or lacking a reason, is
    itself a finding — suppressions are documented contracts."""
    out: List[checks_mod.Finding] = []
    for path, sf in sorted(model.files.items()):
        for line, sup in sorted(sf.suppressions.items()):
            unknown = sorted(sup.checks - set(ALL_CHECKS))
            if unknown:
                out.append(checks_mod.Finding(
                    "bad-suppression", path, line,
                    f"suppression names unknown check(s): "
                    f"{', '.join(unknown)} (known: {', '.join(ALL_CHECKS)})",
                ))
            if not sup.reason:
                out.append(checks_mod.Finding(
                    "bad-suppression", path, line,
                    "suppression has no reason — "
                    "`// fresque-lint: allow(check) <why this is safe>`",
                ))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="fresque_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument(
        "--root", default=".",
        help="repository root (default: cwd)",
    )
    ap.add_argument(
        "--frontend", choices=("auto", "lite", "clang"), default="auto",
    )
    ap.add_argument(
        "--checks", default=",".join(ALL_CHECKS),
        help="comma-separated subset of checks to run",
    )
    ap.add_argument(
        "--emit-lock-dag", metavar="PATH",
        help="write the lock-order DAG markdown to PATH and exit",
    )
    ap.add_argument(
        "--check-lock-dag", metavar="PATH",
        help="fail if PATH differs from the freshly generated DAG doc",
    )
    ap.add_argument(
        "--stats", action="store_true",
        help="print model statistics (files/functions/classes parsed)",
    )
    ap.add_argument(
        "paths", nargs="*",
        help="files to analyze (default: src/**/*.{h,cc})",
    )
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    bad = [c for c in selected if c not in ALL_CHECKS]
    if bad:
        print(
            f"fresque_lint: unknown check(s): {', '.join(bad)} "
            f"(known: {', '.join(ALL_CHECKS)})", file=sys.stderr,
        )
        return 2

    frontend, label = _load_frontend(args.frontend)
    if frontend is None:
        print(f"fresque_lint: SKIPPED — {label}")
        return 0

    rel_paths = _collect_sources(root, args.paths)
    try:
        model = frontend.parse_files(root, rel_paths)
    except Exception as exc:  # noqa: BLE001 — degrade, don't die
        if label != "clang":
            raise
        print(
            f"fresque_lint: clang frontend failed ({exc!r}); "
            "falling back to lite", file=sys.stderr,
        )
        import frontend_lite  # noqa: PLC0415

        frontend, label = frontend_lite.LiteFrontend(), "lite"
        model = frontend.parse_files(root, rel_paths)
    model.finalize()

    if args.stats:
        ndefs = sum(1 for f in model.functions if f.is_definition)
        nhot = sum(
            1 for f in model.functions if f.is_hot and f.is_definition
        )
        nacq = sum(len(f.acquires) for f in model.functions)
        print(
            f"fresque_lint [{label}]: {len(model.files)} files, "
            f"{len(model.functions)} functions ({ndefs} definitions, "
            f"{nhot} hot), {len(model.classes)} classes, "
            f"{nacq} lock acquisitions"
        )

    findings: List[checks_mod.Finding] = []
    graph = None
    if srcmodel.CHECK_LOCK_ORDER in selected or args.emit_lock_dag \
            or args.check_lock_dag:
        lo_findings, graph = checks_mod.run_lock_order(model)
        if srcmodel.CHECK_LOCK_ORDER in selected:
            findings.extend(lo_findings)
    if srcmodel.CHECK_RAW_SYNC in selected:
        findings.extend(checks_mod.run_raw_sync(model))
    if srcmodel.CHECK_HOT_ALLOC in selected:
        findings.extend(checks_mod.run_hot_alloc(model))
    if srcmodel.CHECK_DISCARDED_STATUS in selected:
        findings.extend(checks_mod.run_discarded_status(model))
    if srcmodel.CHECK_GUARDED_BY in selected:
        findings.extend(checks_mod.run_guarded_by(model))
    if srcmodel.CHECK_DUP_METRIC in selected:
        findings.extend(checks_mod.run_dup_metric(model))

    findings.extend(_validate_suppressions(model))

    # Apply per-site suppressions.
    kept: List[checks_mod.Finding] = []
    suppressed = 0
    for f in findings:
        sf = model.files.get(f.file)
        if sf is not None and f.check != "bad-suppression" \
                and sf.suppressed(f.check, f.line):
            suppressed += 1
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.file, f.line, f.check, f.message))

    if args.emit_lock_dag:
        doc = checks_mod.render_lock_dag(graph)
        out_path = os.path.join(root, args.emit_lock_dag) \
            if not os.path.isabs(args.emit_lock_dag) else args.emit_lock_dag
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(doc)
        print(f"fresque_lint: wrote {args.emit_lock_dag} "
              f"({len(graph.nodes)} locks, {len(graph.edges)} edges)")

    if args.check_lock_dag:
        doc = checks_mod.render_lock_dag(graph)
        dag_path = os.path.join(root, args.check_lock_dag) \
            if not os.path.isabs(args.check_lock_dag) \
            else args.check_lock_dag
        try:
            with open(dag_path, "r", encoding="utf-8") as fh:
                current = fh.read()
        except OSError:
            current = ""
        if current != doc:
            kept.append(checks_mod.Finding(
                srcmodel.CHECK_LOCK_ORDER, args.check_lock_dag, 1,
                "lock-order DAG doc is stale — regenerate with "
                "`python3 tools/fresque_lint/fresque_lint.py "
                f"--emit-lock-dag {args.check_lock_dag}`",
            ))

    for f in kept:
        print(f)
    note = f" ({suppressed} suppressed)" if suppressed else ""
    if kept:
        print(
            f"fresque_lint [{label}]: {len(kept)} finding(s){note}",
            file=sys.stderr,
        )
        return 1
    print(f"fresque_lint [{label}]: clean{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
