#!/usr/bin/env bash
# Sanitizer test driver.
#
# Usage: scripts/tsan_tests.sh [thread|address|undefined|address,undefined] [build-dir]
#
#   thread (default)     — builds with TSan and runs the concurrency-
#                          sensitive suites: the publication drain/shutdown
#                          protocol, the queue/node runtime, the TCP
#                          transport, and the durability subsystem (WAL,
#                          snapshots, crash recovery).
#   address | undefined  — builds with ASan or UBSan and runs the *full*
#   address,undefined      ctest suite (these sanitizers are cheap enough
#                          to afford every test).
#
# The build dir defaults to build-<sanitizer> so instrumented trees never
# mix with the regular build/.
set -euo pipefail

cd "$(dirname "$0")/.."
SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined|address,undefined|undefined,address) ;;
  *)
    echo "usage: $0 [thread|address|undefined|address,undefined] [build-dir]" >&2
    exit 2
    ;;
esac
BUILD_DIR="${2:-build-${SAN//,/-}}"

cmake -B "$BUILD_DIR" -S . \
  -DFRESQUE_SANITIZE="$SAN" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [[ "$SAN" == thread ]]; then
  # TSan slows execution ~10x; build and run only the suites that exercise
  # cross-thread protocols.
  cmake --build "$BUILD_DIR" -j \
    --target concurrency_test tcp_test drain_shutdown_test queue_test \
      durability_test crash_recovery_test telemetry_test overload_test \
      query_engine_test query_concurrency_test obs_test obs_concurrency_test \
      shard_test shard_recovery_test
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R '^(ConcurrencyTest|TcpTest|DrainShutdownTest|CheckingNodeTest|QueueTest|WalTest|SnapshotManagerTest|RecoveryTest|CrashRecoveryTest|RegistryConcurrencyTest|TracerTest|QueueWaitHookTest|AdaptiveBatchingTest|AdmissionTest|OverloadPipelineTest|TagFilterTest|LeafCacheTest|ViewManagerTest|QueryExecutorTest|CloudServerViewTest|QueryConcurrencyTest|StreamingQuantilesTest|FlightRecorderTest|HttpServerTest|SamplerTest|ObsServerTest|ObsConcurrencyTest|ShardPlacementTest|ShardRouterTest|ShardedPipelineTest|ShardRecoveryTest)'
else
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
