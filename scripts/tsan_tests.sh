#!/usr/bin/env bash
# Runs the concurrency-sensitive test suites under ThreadSanitizer:
# the publication drain/shutdown protocol, the cross-thread query path,
# and the TCP transport. Usage: scripts/tsan_tests.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DFRESQUE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target concurrency_test tcp_test drain_shutdown_test

cd "$BUILD_DIR"
ctest --output-on-failure \
  -R '^(ConcurrencyTest|TcpTest|DrainShutdownTest|CheckingNodeTest)'
