#!/usr/bin/env bash
# Sharded scale-out smoke (DESIGN.md §17; CI job shard-smoke).
#
# Usage: scripts/shard_smoke.sh [build-dir]
#
# Drives a real 4-shard `fresque_cli ingest --shards=4` with the obs
# server attached, then proves the sharded surface end to end:
#   1. /statusz renders the per-shard table (one row per shard) and
#      /metrics carries the shard.* families while ingest runs,
#   2. ingest exits 0 and prints the conservation ledger — every line
#      routed to exactly one shard, router total == ingested total,
#   3. one snapshot per shard lands at <snapshot>.shard-<i>,
#   4. a full-domain `query --shards=4` fans out to all 4 shards with a
#      balanced per-shard ledger (exit 2 on ledger mismatch),
#   5. a narrow in-slice query probes exactly 1 shard and prunes 3.
#
# Works under ASan/UBSan builds (the CI job runs it that way).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
CLI="$BUILD/tools/fresque_cli"
[[ -x "$CLI" ]] || { echo "missing $CLI — build fresque_cli first" >&2; exit 2; }

WORK="$(mktemp -d)"
PID=""
cleanup() {
  [[ -n "$PID" ]] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

LINES=120000
"$CLI" generate nasa "$LINES" "$WORK/lines.txt" >/dev/null

"$CLI" ingest nasa "$WORK/lines.txt" "$WORK/snapshot.bin" 0.1 2 20000 \
  --shards=4 --shard-by=range \
  --data-dir="$WORK/dd" --fsync=never \
  --obs-addr=127.0.0.1:0 \
  >"$WORK/out.log" 2>"$WORK/err.log" &
PID=$!

# The CLI prints the bound ephemeral port once the obs server is up
# (before the ingest loop starts, so the scrape below cannot lose the
# race against a fast ingest).
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/^obs: listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/out.log" | head -n1)
  [[ -n "$PORT" ]] && break
  kill -0 "$PID" 2>/dev/null || { cat "$WORK/err.log" >&2; fail "ingest died before the obs server came up"; }
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "obs listen line never appeared in out.log"
BASE="http://127.0.0.1:$PORT"
echo "== 4-shard ingest up, obs on $BASE"

# 1. /statusz per-shard table: one row per shard, with the ingress and
# view-epoch fields the dashboard keys on.
STATUSZ="$(curl -fsS "$BASE/statusz")"
for needle in '"shards":[{"shard":0' '"shard":1' '"shard":2' '"shard":3' \
              '"ingress_capacity"' '"ingress_watermark"' '"view_epoch"'; do
  echo "$STATUSZ" | grep -qF "$needle" || fail "/statusz missing $needle"
done

# shard.* families on the Prometheus scrape (router counter is hot-path,
# present as soon as the first batch routes; poll for it).
METRICS=""
for _ in $(seq 100); do
  METRICS="$(curl -fsS "$BASE/metrics" || true)"
  echo "$METRICS" | grep -q "^fresque_shard_router_records " && break
  METRICS=""
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
[[ -n "$METRICS" ]] || fail "/metrics never showed fresque_shard_router_records"
echo "$METRICS" | grep -q "^fresque_shard_count 4" \
  || fail "/metrics missing fresque_shard_count 4"
echo "== /statusz shard table and shard.* metrics OK"

# 2. Ingest must finish cleanly and print the conservation ledger.
wait "$PID" || { cat "$WORK/err.log" >&2; fail "sharded ingest exited non-zero"; }
PID=""
grep -q "exactly-once placement" "$WORK/out.log" \
  || fail "ingest output missing the conservation ledger line"
grep -q "conservation: $LINES ingested == $LINES routed" "$WORK/out.log" \
  || { cat "$WORK/out.log"; fail "conservation ledger does not balance"; }

# 3. One snapshot per shard.
for i in 0 1 2 3; do
  [[ -s "$WORK/snapshot.bin.shard-$i" ]] || fail "missing snapshot.bin.shard-$i"
done
echo "== conservation ledger balanced ($LINES records), 4 shard snapshots"

# 4. Full-domain fan-out: all 4 shards probed, ledger must balance
# (the CLI exits 2 on a ledger mismatch).
"$CLI" query nasa "$WORK/snapshot.bin" 0 3503104 --shards=4 --shard-by=range \
  >"$WORK/q_full.log" 2>&1 || { cat "$WORK/q_full.log"; fail "full-domain sharded query failed"; }
grep -q "fan-out: 4 shard(s) probed, 0 pruned" "$WORK/q_full.log" \
  || { cat "$WORK/q_full.log"; fail "full-domain query did not probe all 4 shards"; }
grep -q "ledger:" "$WORK/q_full.log" || fail "query output missing the fan-out ledger"

# 5. Narrow in-slice query: placement pruning must skip 3 of 4 shards.
"$CLI" query nasa "$WORK/snapshot.bin" 1000 2000 --shards=4 --shard-by=range \
  >"$WORK/q_narrow.log" 2>&1 || { cat "$WORK/q_narrow.log"; fail "narrow sharded query failed"; }
grep -q "fan-out: 1 shard(s) probed, 3 pruned" "$WORK/q_narrow.log" \
  || { cat "$WORK/q_narrow.log"; fail "narrow query did not prune 3 shards"; }

echo "OK: 4-shard ingest conserved every record, fan-out + pruning ledgers balanced"
