#!/usr/bin/env bash
# Telemetry overhead gate (DESIGN.md §11).
#
# Usage: scripts/overhead_check.sh [max-overhead-pct] [records]
#
# Builds the pipeline twice — telemetry compiled in (the default) and
# compiled out (-DFRESQUE_TELEMETRY=OFF) — runs bench_live_throughput in
# both trees, and fails if the instrumented build's sustained ingest rate
# (fresque prototype, nasa workload) is more than <max-overhead-pct>
# slower. Dormant instrumentation must stay within this budget: counters
# are relaxed atomics and spans are a single branch when tracing is off,
# so a larger gap means someone put real work on the hot path.
#
# Since the observability plane landed (DESIGN.md §16), the ON tree also
# carries its dormant hooks — the per-record FRESQUE_OBS_E2E_SAMPLE stamp
# (three relaxed atomics, no clock read; ~2 ns in bench_obs) and the
# control-plane flight-recorder events — so this gate covers the obs
# plane with no server running, exactly the state production ships in
# when --obs-addr is unset. bench/bench_obs.cc breaks the same costs out
# per primitive if this gate ever trips.
#
# Throughput on shared CI hosts is noisy; the bench is run several times
# per tree and the *best* run is compared, which cancels most scheduler
# interference (the fastest run is the least-perturbed one).
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_PCT="${1:-5}"
RUNS="${OVERHEAD_RUNS:-3}"
ON_DIR="${ON_BUILD_DIR:-build-telemetry-on}"
OFF_DIR="${OFF_BUILD_DIR:-build-telemetry-off}"

build_tree() {
  local dir="$1" flag="$2"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
    -DFRESQUE_TELEMETRY="$flag" >/dev/null
  cmake --build "$dir" -j --target bench_live_throughput >/dev/null
}

# Prints the best (max) fresque nasa records/second over $RUNS runs.
best_rps() {
  local dir="$1" best=0 rps
  for _ in $(seq "$RUNS"); do
    (cd "$dir/bench" && ./bench_live_throughput >/dev/null)
    rps=$(awk -F, '/^fresque\(/ {print $2}' "$dir/bench/live_throughput.csv")
    if [[ -z "$rps" ]]; then
      echo "could not find fresque nasa_rps in $dir/bench/live_throughput.csv" >&2
      exit 1
    fi
    if awk -v a="$rps" -v b="$best" 'BEGIN {exit !(a > b)}'; then
      best="$rps"
    fi
  done
  echo "$best"
}

echo "== building telemetry=ON tree ($ON_DIR)"
build_tree "$ON_DIR" ON
echo "== building telemetry=OFF tree ($OFF_DIR)"
build_tree "$OFF_DIR" OFF

echo "== measuring ($RUNS runs per tree, best counts)"
ON_RPS=$(best_rps "$ON_DIR")
OFF_RPS=$(best_rps "$OFF_DIR")

OVERHEAD=$(awk -v on="$ON_RPS" -v off="$OFF_RPS" \
  'BEGIN {printf "%.2f", (off - on) * 100.0 / off}')

echo "telemetry ON : ${ON_RPS} records/s"
echo "telemetry OFF: ${OFF_RPS} records/s"
echo "overhead     : ${OVERHEAD}% (budget ${MAX_PCT}%)"

if awk -v o="$OVERHEAD" -v m="$MAX_PCT" 'BEGIN {exit !(o > m)}'; then
  echo "FAIL: telemetry overhead ${OVERHEAD}% exceeds ${MAX_PCT}% budget" >&2
  exit 1
fi
echo "OK: telemetry overhead within budget"
