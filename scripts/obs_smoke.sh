#!/usr/bin/env bash
# Live-observability endpoint smoke (DESIGN.md §16; CI job obs-smoke).
#
# Usage: scripts/obs_smoke.sh [build-dir]
#
# Starts a real `fresque_cli ingest` with --obs-addr on an ephemeral
# port, then proves the whole introspection surface while the pipeline
# is ingesting:
#   1. /healthz and /readyz answer 200,
#   2. /metrics is Prometheus text and carries the pipeline families,
#   3. /statusz is JSON with topology + view-epoch fields,
#   4. /flightz is JSON with recorded flight events,
#   5. SIGTERM flushes the flight recorder to stderr AND to
#      <data-dir>/flight.dump before the process dies.
#
# Works under ASan/UBSan builds (the CI job runs it that way); the
# SIGTERM death via the re-raised default handler is the expected exit.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
CLI="$BUILD/tools/fresque_cli"
[[ -x "$CLI" ]] || { echo "missing $CLI — build fresque_cli first" >&2; exit 2; }

WORK="$(mktemp -d)"
PID=""
cleanup() {
  [[ -n "$PID" ]] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Enough lines that ingest is still running while we scrape, even on a
# fast machine; the run is cut short by SIGTERM either way.
"$CLI" generate nasa 2000000 "$WORK/lines.txt" >/dev/null

"$CLI" ingest nasa "$WORK/lines.txt" "$WORK/snapshot.bin" 0.1 2 100000 \
  --data-dir="$WORK/dd" --fsync=never \
  --obs-addr=127.0.0.1:0 --slo-e2e-ms=50 --flight-capacity=1024 \
  >"$WORK/out.log" 2>"$WORK/err.log" &
PID=$!

# The CLI prints the bound ephemeral port once the server is up.
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/^obs: listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORK/out.log" | head -n1)
  [[ -n "$PORT" ]] && break
  kill -0 "$PID" 2>/dev/null || { cat "$WORK/err.log" >&2; fail "ingest died before the obs server came up"; }
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "obs listen line never appeared in out.log"
BASE="http://127.0.0.1:$PORT"
echo "== obs server on $BASE"

curl -fsS "$BASE/healthz" | grep -q "ok" || fail "/healthz not ok"
curl -fsS "$BASE/readyz"  | grep -q "ready" || fail "/readyz not ready"

# The pipeline families appear once records flow and the sampler has
# folded at least once, so poll rather than assert the first scrape.
METRICS=""
for _ in $(seq 100); do
  METRICS="$(curl -fsS "$BASE/metrics")"
  echo "$METRICS" | grep -q "^fresque_cloud_records_in " && break
  METRICS=""
  sleep 0.2
done
[[ -n "$METRICS" ]] || fail "/metrics never showed fresque_cloud_records_in"
echo "$METRICS" | grep -q "^# TYPE fresque_slo_e2e_target_ms gauge" \
  || fail "/metrics missing slo target TYPE line"

STATUSZ="$(curl -fsS "$BASE/statusz")"
for field in '"view_epoch"' '"nodes"' '"wal"' '"build"' '"slo"'; do
  echo "$STATUSZ" | grep -q "$field" || fail "/statusz missing $field"
done

curl -fsS "$BASE/flightz" | grep -q '"events"' || fail "/flightz has no events array"

# Exercise 404/405 handling while we are here.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/nope")
[[ "$code" == "404" ]] || fail "expected 404 for unknown path, got $code"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/metrics")
[[ "$code" == "405" ]] || fail "expected 405 for POST, got $code"

echo "== endpoints OK; sending SIGTERM"
kill -TERM "$PID"
DEAD=0
for _ in $(seq 100); do
  kill -0 "$PID" 2>/dev/null || { DEAD=1; break; }
  sleep 0.1
done
[[ "$DEAD" == 1 ]] || fail "process survived SIGTERM"
wait "$PID" 2>/dev/null || true
PID=""

grep -q "FLIGHT RECORDER DUMP" "$WORK/err.log" \
  || fail "no flight-recorder dump on stderr after SIGTERM"
[[ -s "$WORK/dd/flight.dump" ]] || fail "no flight.dump written to the data dir"
grep -q "FLIGHT RECORDER DUMP" "$WORK/dd/flight.dump" \
  || fail "flight.dump missing dump header"

echo "OK: all endpoints served and SIGTERM flushed the flight recorder"
