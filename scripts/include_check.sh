#!/usr/bin/env bash
# Include hygiene over src/** headers:
#   1. every .h must carry an include guard (#ifndef/#define pair) or
#      #pragma once;
#   2. the quoted-include graph among src/ files must be acyclic (an
#      include cycle compiles or not depending on which file the TU
#      entered through — it is always latent breakage).
#
# Wired into the fresque-lint CI job and the fresque_include_check ctest
# entry. Exits nonzero with the offending file / cycle printed.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - "$@" <<'PY'
import os
import re
import sys

failures = 0

headers = []
sources = []
for dirpath, _, files in os.walk("src"):
    for name in sorted(files):
        path = os.path.join(dirpath, name)
        if name.endswith(".h"):
            headers.append(path)
        if name.endswith((".h", ".cc")):
            sources.append(path)

# --- 1. include guards ------------------------------------------------
GUARD_RE = re.compile(
    r"^\s*#\s*ifndef\s+(\w+)\s*\n\s*#\s*define\s+\1\b", re.MULTILINE
)
for h in sorted(headers):
    text = open(h, encoding="utf-8", errors="replace").read()
    if "#pragma once" in text or GUARD_RE.search(text):
        continue
    print(f"{h}:1: missing include guard (#ifndef/#define) or #pragma once")
    failures += 1

# --- 2. include cycles ------------------------------------------------
INC_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
graph = {}
for path in sources:
    text = open(path, encoding="utf-8", errors="replace").read()
    deps = []
    for target in INC_RE.findall(text):
        resolved = os.path.join("src", target)
        if os.path.exists(resolved):
            deps.append(resolved)
    graph[path] = deps

WHITE, GRAY, BLACK = 0, 1, 2
color = {n: WHITE for n in graph}
cycles = []

def dfs(node, stack):
    color[node] = GRAY
    stack.append(node)
    for dep in graph.get(node, ()):
        if color.get(dep, WHITE) == GRAY:
            cycles.append(stack[stack.index(dep):] + [dep])
        elif color.get(dep, WHITE) == WHITE:
            dfs(dep, stack)
    stack.pop()
    color[node] = BLACK

sys.setrecursionlimit(10000)
for n in sorted(graph):
    if color[n] == WHITE:
        dfs(n, [])

for cyc in cycles:
    print("include cycle: " + " -> ".join(cyc))
    failures += len(cycles)

if failures:
    print(f"include_check: {failures} problem(s)", file=sys.stderr)
    sys.exit(1)
print(f"include_check: clean ({len(headers)} headers, "
      f"{len(graph)} files scanned)")
PY
