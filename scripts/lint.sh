#!/usr/bin/env bash
# Static-analysis gate (see DESIGN.md "Static analysis layer"):
#
#   1. fresque_lint — the FRESQUE-specific checker suite
#      (tools/fresque_lint): lock-order DAG + cycle detection, raw-sync,
#      hot-alloc, discarded-status, guarded-by, plus a freshness check on
#      the generated docs/lock_order.md. Dependency-free (python3 only).
#   2. include_check — include guards + include-cycle detection over
#      src/** (scripts/include_check.sh).
#   3. clang-tidy over src/, tools/, bench/ and tests/ using the build
#      tree's compile database. tests/ gets the narrowed check list from
#      tests/.clang-tidy (gtest macros trip checks that are high-signal
#      in production code). Skipped with a notice when clang-tidy is not
#      installed — same degrade contract as fresque_lint's clang
#      frontend.
#
# Usage: scripts/lint.sh [build-dir]
#
# The build dir must have been configured already (any compiler works —
# CMAKE_EXPORT_COMPILE_COMMANDS is always on); exits nonzero on any
# finding (WarningsAsErrors: '*'), which is what the static-analysis CI
# jobs gate on.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "lint.sh: fresque_lint (lite frontend)"
python3 tools/fresque_lint/fresque_lint.py --root . \
  --check-lock-dag docs/lock_order.md

echo "lint.sh: include_check"
scripts/include_check.sh

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

mapfile -t FILES < <(find src tools bench tests -name '*.cc' | sort)
echo "lint.sh: $TIDY over ${#FILES[@]} files (db: $BUILD_DIR)"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "lint.sh: clean"
