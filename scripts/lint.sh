#!/usr/bin/env bash
# clang-tidy gate over src/ using the build tree's compile database.
#
# Usage: scripts/lint.sh [build-dir]
#
# The build dir must have been configured already (any compiler works —
# CMAKE_EXPORT_COMPILE_COMMANDS is always on); the checks themselves come
# from the repo-root .clang-tidy. Exits nonzero on any finding
# (WarningsAsErrors: '*'), which is what the `clang-tidy` CI job gates on.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

mapfile -t FILES < <(find src -name '*.cc' | sort)
echo "lint.sh: $TIDY over ${#FILES[@]} files (db: $BUILD_DIR)"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "lint.sh: clean"
