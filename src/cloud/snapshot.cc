// CloudServer snapshot persistence: one binary file holding the whole
// multi-publication state. Format (little-endian, length-prefixed):
//   magic "FQSNAP02"
//   binning: f64 dmin, f64 dmax, f64 width
//   u64 publication count, then per publication:
//     u64 pn, u8 published
//     bytes storage snapshot
//     open state:    u64 metadata groups { u32 leaf, u64 n, n addresses }
//                    u64 tagged count { u64 tag, address }
//     published state: bytes index, bytes overflow, bytes evidence,
//                      u64 leaves { u64 n, n addresses }
// Addresses encode as u32 segment, u32 offset, u32 length.

#include <algorithm>
#include <fstream>
#include <memory>

#include "cloud/server.h"

namespace fresque {
namespace cloud {

namespace {

constexpr char kMagic[8] = {'F', 'Q', 'S', 'N', 'A', 'P', '0', '2'};

void PutAddress(BinaryWriter* w, const PhysicalAddress& a) {
  w->PutU32(a.segment);
  w->PutU32(a.offset);
  w->PutU32(a.length);
}

Result<PhysicalAddress> GetAddress(BinaryReader* r) {
  auto seg = r->GetU32();
  auto off = r->GetU32();
  auto len = r->GetU32();
  if (!seg.ok() || !off.ok() || !len.ok()) {
    return Status::Corruption("truncated address");
  }
  PhysicalAddress a;
  a.segment = *seg;
  a.offset = *off;
  a.length = *len;
  return a;
}

}  // namespace

Status CloudServer::SaveSnapshot(const std::string& path) const {
  MutexLock lock(mu_);
  BinaryWriter w;
  w.PutRaw(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic));
  w.PutF64(binning_.domain_min());
  w.PutF64(binning_.domain_max());
  w.PutF64(binning_.bin_width());
  w.PutU64(publications_.size());
  for (const auto& [pn, pub] : publications_) {
    w.PutU64(pn);
    w.PutU8(pub.published() ? 1 : 0);
    if (!pub.published()) {
      w.PutBytes(pub.storage.Serialize());
      w.PutU64(pub.metadata.size());
      for (const auto& [leaf, addrs] : pub.metadata) {
        w.PutU32(leaf);
        w.PutU64(addrs.size());
        for (const auto& a : addrs) PutAddress(&w, a);
      }
      w.PutU64(pub.tagged.size());
      for (const auto& [tag, addr] : pub.tagged) {
        w.PutU64(tag);
        PutAddress(&w, addr);
      }
    } else {
      const query::InstalledPublication& inst = *pub.installed;
      w.PutBytes(inst.storage.Serialize());
      w.PutBytes(inst.index.Serialize());
      w.PutBytes(inst.overflow.Serialize());
      w.PutBytes(inst.evidence);
      w.PutU64(inst.postings.size());
      for (const auto& posting : inst.postings) {
        w.PutU64(posting.size());
        for (const auto& a : posting) PutAddress(&w, a);
      }
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for write");
  out.write(reinterpret_cast<const char*>(w.buffer().data()),
            static_cast<std::streamsize>(w.size()));
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::unique_ptr<CloudServer>> CloudServer::LoadSnapshot(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Status::IOError("read failed for " + path);

  BinaryReader r(data);
  auto magic = r.GetRaw(sizeof(kMagic));
  if (!magic.ok() ||
      !std::equal(magic->begin(), magic->end(),
                  reinterpret_cast<const uint8_t*>(kMagic))) {
    return Status::Corruption("not a cloud snapshot: " + path);
  }
  auto dmin = r.GetF64();
  auto dmax = r.GetF64();
  auto width = r.GetF64();
  if (!dmin.ok() || !dmax.ok() || !width.ok()) {
    return Status::Corruption("truncated snapshot header");
  }
  auto binning = index::DomainBinning::Create(*dmin, *dmax, *width);
  if (!binning.ok()) return binning.status();
  auto server =
      std::make_unique<CloudServer>(std::move(binning).ValueOrDie());
  // The server is not visible to any other thread yet; the lock is
  // uncontended and exists so the thread-safety analysis can prove the
  // publications_ writes below.
  MutexLock lock(server->mu_);

  auto count = r.GetU64();
  if (!count.ok()) return Status::Corruption("truncated snapshot");
  // Every claimed element count below is cross-checked against the bytes
  // actually left in the file before it sizes an allocation, so a corrupt
  // or hostile snapshot produces a Status — never an OOM or a crash.
  if (*count > r.remaining() / 13) {  // pn + flag + storage prefix
    return Status::Corruption("snapshot publication count implausible");
  }
  for (uint64_t i = 0; i < *count; ++i) {
    auto pn = r.GetU64();
    auto published = r.GetU8();
    auto storage_bytes = r.GetBytes();
    if (!pn.ok() || !published.ok() || !storage_bytes.ok()) {
      return Status::Corruption("truncated publication header");
    }
    Publication pub;
    auto storage = SegmentStorage::Deserialize(*storage_bytes);
    if (!storage.ok()) return storage.status();

    if (*published == 0) {
      pub.storage = std::move(*storage);
      auto groups = r.GetU64();
      if (!groups.ok()) return Status::Corruption("truncated metadata");
      if (*groups > r.remaining() / 12) {  // leaf + count per group
        return Status::Corruption("snapshot metadata group count implausible");
      }
      for (uint64_t g = 0; g < *groups; ++g) {
        auto leaf = r.GetU32();
        auto n = r.GetU64();
        if (!leaf.ok() || !n.ok()) {
          return Status::Corruption("truncated metadata group");
        }
        if (*n > r.remaining() / 12) {  // 12 bytes per address
          return Status::Corruption("snapshot metadata count implausible");
        }
        auto& addrs = pub.metadata[*leaf];
        addrs.reserve(*n);
        for (uint64_t j = 0; j < *n; ++j) {
          auto a = GetAddress(&r);
          if (!a.ok()) return a.status();
          if (!pub.storage.Contains(*a)) {
            return Status::Corruption("snapshot metadata address unbacked");
          }
          addrs.push_back(*a);
        }
      }
      auto tagged = r.GetU64();
      if (!tagged.ok()) return Status::Corruption("truncated tagged list");
      if (*tagged > r.remaining() / 20) {  // tag + address per entry
        return Status::Corruption("snapshot tagged count implausible");
      }
      for (uint64_t j = 0; j < *tagged; ++j) {
        auto tag = r.GetU64();
        auto a = GetAddress(&r);
        if (!tag.ok() || !a.ok()) {
          return Status::Corruption("truncated tagged entry");
        }
        if (!pub.storage.Contains(*a)) {
          return Status::Corruption("snapshot tagged address unbacked");
        }
        pub.tagged.emplace_back(*tag, *a);
      }
    } else {
      auto index_bytes = r.GetBytes();
      auto overflow_bytes = r.GetBytes();
      auto evidence = r.GetBytes();
      auto leaves = r.GetU64();
      if (!index_bytes.ok() || !overflow_bytes.ok() || !evidence.ok() ||
          !leaves.ok()) {
        return Status::Corruption("truncated published state");
      }
      auto idx = index::HistogramIndex::Deserialize(*index_bytes);
      if (!idx.ok()) return idx.status();
      auto ovf = index::OverflowArrays::Deserialize(*overflow_bytes);
      if (!ovf.ok()) return ovf.status();
      if (*leaves > r.remaining() / 8) {  // one count per leaf
        return Status::Corruption("snapshot leaf count implausible");
      }
      std::vector<std::vector<PhysicalAddress>> postings(*leaves);
      for (uint64_t leaf = 0; leaf < *leaves; ++leaf) {
        auto n = r.GetU64();
        if (!n.ok()) return Status::Corruption("truncated postings");
        if (*n > r.remaining() / 12) {
          return Status::Corruption("snapshot posting count implausible");
        }
        postings[leaf].reserve(*n);
        for (uint64_t j = 0; j < *n; ++j) {
          auto a = GetAddress(&r);
          if (!a.ok()) return a.status();
          if (!storage->Contains(*a)) {
            return Status::Corruption("snapshot posting address unbacked");
          }
          postings[leaf].push_back(*a);
        }
      }
      // Re-freeze the publication and publish the view, so a restored
      // store serves lock-free queries exactly like a live one. The tag
      // filter is an install-time join accelerator and is not persisted;
      // a default (pass-everything) filter is correct here.
      pub.installed = std::make_shared<const query::InstalledPublication>(
          *pn, std::move(*storage), std::move(*idx), std::move(*ovf),
          std::move(postings), std::move(*evidence), query::TagFilter());
      server->views_.Install(pub.installed);
    }
    server->publications_.emplace(*pn, std::move(pub));
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes in snapshot");
  }
  return server;
}

}  // namespace cloud
}  // namespace fresque
