#ifndef FRESQUE_CLOUD_SERVER_H_
#define FRESQUE_CLOUD_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/storage.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "index/binning.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/payloads.h"
#include "query/context.h"
#include "query/leaf_cache.h"
#include "query/result.h"
#include "query/view.h"

namespace fresque {
namespace cloud {

/// Result types live in query/result.h so the scan/executor layers can
/// produce them without a server dependency; aliased here for the many
/// existing cloud::QueryResult call sites.
using ResultRecord = query::ResultRecord;
using QueryResult = query::QueryResult;

/// Per-publication matching cost, reported for Fig. 13/15.
struct MatchingStats {
  uint64_t pn = 0;
  size_t records_matched = 0;
  double matching_millis = 0;
  /// Tag-filter outcomes of the PINED-RQ++ join (zero in FRESQUE mode):
  /// probes answered "definitely absent" skip the hash-table lookup.
  size_t filter_negatives = 0;
};

/// The untrusted cloud server (paper §5.3 "Cloud").
///
/// Streaming ingestion writes each e-record to segment storage and caches
/// `<leaf offset, physical location>` metadata in memory; publication then
/// only reshuffles addresses (FRESQUE), or — in PINED-RQ++ mode — re-reads
/// every record and joins it against the matching table, which is the
/// expensive path Fig. 15 contrasts.
///
/// Query serving is snapshot-consistent and concurrent (DESIGN.md §15):
/// installing a publication freezes it into an immutable
/// query::InstalledPublication and publishes a new epoch of the
/// query::QueryView RCU-style. ExecuteQuery pins one view and scans it
/// with *no server lock held*; mu_ is only taken briefly to copy out the
/// open publication's cached pairs, so ingest and publication install
/// proceed while arbitrarily large range scans run.
class CloudServer {
 public:
  /// `binning` describes how leaf offsets map to value intervals (public
  /// configuration shared by collector and cloud). `leaf_cache_capacity`
  /// bounds the hot-leaf descriptor cache (DESIGN.md §15).
  explicit CloudServer(index::DomainBinning binning,
                       const Clock* clock = SystemClock::Global(),
                       size_t leaf_cache_capacity = 4096);

  /// Opens a new publication (kPublicationStart).
  Status StartPublication(uint64_t pn) FRESQUE_EXCLUDES(mu_);

  /// Streams one `<leaf offset, e-record>` pair (FRESQUE / PINED-RQ++).
  Status IngestRecord(uint64_t pn, uint32_t leaf, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);

  /// Streams one `<random tag, e-record>` pair (PINED-RQ++ with matching
  /// table; the leaf is unknown until the table arrives).
  Status IngestTagged(uint64_t pn, uint64_t tag, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);

  /// FRESQUE publication: associates cached metadata with the index
  /// leaves, installs index + overflow arrays, destroys the metadata.
  /// `raw_payload`, when provided, is retained verbatim as integrity
  /// evidence for client-side verification.
  Result<MatchingStats> PublishIndexed(uint64_t pn,
                                       net::IndexPublication publication,
                                       Bytes raw_payload = {})
      FRESQUE_EXCLUDES(mu_);

  /// PINED-RQ++ publication: re-reads every stored record of the
  /// publication from storage and joins its tag against the matching
  /// table to rebuild leaf pointers.
  Result<MatchingStats> PublishWithMatchingTable(
      uint64_t pn, net::IndexPublication publication,
      const index::MatchingTable& table, Bytes raw_payload = {})
      FRESQUE_EXCLUDES(mu_);

  /// The verbatim publication payload as received from the collector
  /// (index + overflow + tag); what an auditor would fetch to verify the
  /// publication was not tampered with. NotFound if `pn` was never
  /// published or carried no payload.
  Result<Bytes> PublicationEvidence(uint64_t pn) const FRESQUE_EXCLUDES(mu_);

  /// Visits every stored e-record of publication `pn` in ingest order
  /// without the per-record copy Read performs; used by merger-side
  /// verification and recovery equivalence checks. `fn` sees a pointer
  /// into live segment memory that is invalid once it returns. For open
  /// publications the server's mutex is held for the whole iteration —
  /// `fn` must not call back into this server; installed publications are
  /// iterated against their immutable snapshot.
  Status ForEachStoredRecord(
      uint64_t pn,
      const std::function<Status(const PhysicalAddress&, const uint8_t* data,
                                 size_t size)>& fn) const
      FRESQUE_EXCLUDES(mu_);

  /// Batch publication (PINED-RQ): stores `records` as `<leaf, e-record>`
  /// pairs and installs the index in one shot.
  Result<MatchingStats> PublishBatch(
      uint64_t pn, net::IndexPublication publication,
      const std::vector<std::pair<uint32_t, Bytes>>& records)
      FRESQUE_EXCLUDES(mu_);

  /// Evaluates a range query over every publication (published indexes +
  /// open metadata).
  Result<QueryResult> ExecuteQuery(const index::RangeQuery& q) const
      FRESQUE_EXCLUDES(mu_);

  /// Deadline/cancellation-aware evaluation: pins the current QueryView,
  /// copies the open publications' overlapping pairs under a short lock,
  /// then scans the view lock-free in batches, honoring `ctx` between
  /// batches. This is the entry point query::QueryExecutor workers bind.
  Result<QueryResult> ExecuteQuery(const index::RangeQuery& q,
                                   const query::QueryContext& ctx) const
      FRESQUE_EXCLUDES(mu_);

  /// Differentially-private approximate COUNT(*) for `q`, answered from
  /// the published indexes alone — no records touched, no keys needed
  /// (the noisy counts are public by design). Served entirely from the
  /// current view, lock-free. Open publications are not included: they
  /// have no DP index yet, and counting their cached pairs would leak
  /// un-noised cardinalities.
  int64_t ApproximateCount(const index::RangeQuery& q) const
      FRESQUE_EXCLUDES(mu_);

  /// The current immutable publication snapshot (never null). Pinning it
  /// keeps every contained publication's storage alive regardless of
  /// later installs or retirement.
  std::shared_ptr<const query::QueryView> CurrentView() const;

  /// Epoch of the current view (increments per install/retire).
  uint64_t view_epoch() const;

  /// Hot-leaf descriptor cache shared by every query (DESIGN.md §15).
  const query::LeafCache& leaf_cache() const { return leaf_cache_; }

  /// Persists the whole server state (every publication: ciphertext
  /// segments, postings, indexes, overflow arrays, metadata of open
  /// publications) to one snapshot file, so the cloud survives restarts.
  Status SaveSnapshot(const std::string& path) const FRESQUE_EXCLUDES(mu_);

  /// Restores a server from SaveSnapshot output. (Heap-allocated: the
  /// server holds a mutex and is not movable.) The query view is rebuilt,
  /// so restored stores serve lock-free queries immediately.
  static Result<std::unique_ptr<CloudServer>> LoadSnapshot(
      const std::string& path);

  /// Number of publications the server knows about.
  size_t num_publications() const FRESQUE_EXCLUDES(mu_);
  /// Stored record count across all publications.
  size_t total_records() const FRESQUE_EXCLUDES(mu_);
  /// Stored bytes across all publications (ciphertext + index + overflow).
  size_t total_bytes() const FRESQUE_EXCLUDES(mu_);

  const index::DomainBinning& binning() const { return binning_; }

 private:
  struct Publication {
    /// Open-phase storage; moved into `installed` at publish time.
    SegmentStorage storage;
    // Streaming metadata: leaf -> addresses (FRESQUE mode).
    std::unordered_map<uint32_t, std::vector<PhysicalAddress>> metadata;
    // Streaming metadata: tag -> address (PINED-RQ++ mode).
    std::vector<std::pair<uint64_t, PhysicalAddress>> tagged;
    /// Set exactly once, at install; immutable afterwards. Shared with
    /// every QueryView epoch that contains this publication.
    std::shared_ptr<const query::InstalledPublication> installed;

    bool published() const { return installed != nullptr; }
  };

  Result<Publication*> Find(uint64_t pn) FRESQUE_REQUIRES(mu_);

  Result<MatchingStats> InstallPublication(
      uint64_t pn, Publication* pub, net::IndexPublication publication,
      const index::MatchingTable* table, Bytes raw_payload)
      FRESQUE_REQUIRES(mu_);

  index::DomainBinning binning_;
  const Clock* clock_;
  mutable Mutex mu_;
  std::map<uint64_t, Publication> publications_ FRESQUE_GUARDED_BY(mu_);
  /// Internally synchronized; written under mu_ (install path), read
  /// lock-free by queries.
  query::ViewManager views_;
  mutable query::LeafCache leaf_cache_;
};

}  // namespace cloud
}  // namespace fresque

#endif  // FRESQUE_CLOUD_SERVER_H_
