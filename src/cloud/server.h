#ifndef FRESQUE_CLOUD_SERVER_H_
#define FRESQUE_CLOUD_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/storage.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "index/binning.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"
#include "net/payloads.h"

namespace fresque {
namespace cloud {

/// One ciphertext in a query result, tagged with the publication it
/// belongs to so the client can derive the right decryption key.
struct ResultRecord {
  uint64_t pn = 0;
  Bytes e_record;
};

/// Everything a range query returns from the cloud: ciphertexts only.
struct QueryResult {
  /// Records reachable through published secure indexes.
  std::vector<ResultRecord> indexed_records;
  /// Overflow-array slots of the leaves the query touched.
  std::vector<ResultRecord> overflow_records;
  /// Records of still-open publications whose leaf interval overlaps the
  /// query (the paper's "unindexed data, processed one by one").
  std::vector<ResultRecord> unindexed_records;

  size_t TotalRecords() const {
    return indexed_records.size() + overflow_records.size() +
           unindexed_records.size();
  }
};

/// Per-publication matching cost, reported for Fig. 13/15.
struct MatchingStats {
  uint64_t pn = 0;
  size_t records_matched = 0;
  double matching_millis = 0;
};

/// The untrusted cloud server (paper §5.3 "Cloud").
///
/// Streaming ingestion writes each e-record to segment storage and caches
/// `<leaf offset, physical location>` metadata in memory; publication then
/// only reshuffles addresses (FRESQUE), or — in PINED-RQ++ mode — re-reads
/// every record and joins it against the matching table, which is the
/// expensive path Fig. 15 contrasts.
class CloudServer {
 public:
  /// `binning` describes how leaf offsets map to value intervals (public
  /// configuration shared by collector and cloud).
  explicit CloudServer(index::DomainBinning binning,
                       const Clock* clock = SystemClock::Global());

  /// Opens a new publication (kPublicationStart).
  Status StartPublication(uint64_t pn) FRESQUE_EXCLUDES(mu_);

  /// Streams one `<leaf offset, e-record>` pair (FRESQUE / PINED-RQ++).
  Status IngestRecord(uint64_t pn, uint32_t leaf, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);

  /// Streams one `<random tag, e-record>` pair (PINED-RQ++ with matching
  /// table; the leaf is unknown until the table arrives).
  Status IngestTagged(uint64_t pn, uint64_t tag, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);

  /// FRESQUE publication: associates cached metadata with the index
  /// leaves, installs index + overflow arrays, destroys the metadata.
  /// `raw_payload`, when provided, is retained verbatim as integrity
  /// evidence for client-side verification.
  Result<MatchingStats> PublishIndexed(uint64_t pn,
                                       net::IndexPublication publication,
                                       Bytes raw_payload = {})
      FRESQUE_EXCLUDES(mu_);

  /// PINED-RQ++ publication: re-reads every stored record of the
  /// publication from storage and joins its tag against the matching
  /// table to rebuild leaf pointers.
  Result<MatchingStats> PublishWithMatchingTable(
      uint64_t pn, net::IndexPublication publication,
      const index::MatchingTable& table, Bytes raw_payload = {})
      FRESQUE_EXCLUDES(mu_);

  /// The verbatim publication payload as received from the collector
  /// (index + overflow + tag); what an auditor would fetch to verify the
  /// publication was not tampered with. NotFound if `pn` was never
  /// published or carried no payload.
  Result<Bytes> PublicationEvidence(uint64_t pn) const FRESQUE_EXCLUDES(mu_);

  /// Visits every stored e-record of publication `pn` in ingest order
  /// without the per-record copy Read performs; used by merger-side
  /// verification and recovery equivalence checks. `fn` sees a pointer
  /// into live segment memory that is invalid once it returns. The
  /// server's mutex is held for the whole iteration — `fn` must not call
  /// back into this server.
  Status ForEachStoredRecord(
      uint64_t pn,
      const std::function<Status(const PhysicalAddress&, const uint8_t* data,
                                 size_t size)>& fn) const
      FRESQUE_EXCLUDES(mu_);

  /// Batch publication (PINED-RQ): stores `records` as `<leaf, e-record>`
  /// pairs and installs the index in one shot.
  Result<MatchingStats> PublishBatch(
      uint64_t pn, net::IndexPublication publication,
      const std::vector<std::pair<uint32_t, Bytes>>& records)
      FRESQUE_EXCLUDES(mu_);

  /// Evaluates a range query over every publication (published indexes +
  /// open metadata).
  Result<QueryResult> ExecuteQuery(const index::RangeQuery& q) const
      FRESQUE_EXCLUDES(mu_);

  /// Differentially-private approximate COUNT(*) for `q`, answered from
  /// the published indexes alone — no records touched, no keys needed
  /// (the noisy counts are public by design). Open publications are not
  /// included: they have no DP index yet, and counting their cached
  /// pairs would leak un-noised cardinalities.
  int64_t ApproximateCount(const index::RangeQuery& q) const
      FRESQUE_EXCLUDES(mu_);

  /// Persists the whole server state (every publication: ciphertext
  /// segments, postings, indexes, overflow arrays, metadata of open
  /// publications) to one snapshot file, so the cloud survives restarts.
  Status SaveSnapshot(const std::string& path) const FRESQUE_EXCLUDES(mu_);

  /// Restores a server from SaveSnapshot output. (Heap-allocated: the
  /// server holds a mutex and is not movable.)
  static Result<std::unique_ptr<CloudServer>> LoadSnapshot(
      const std::string& path);

  /// Number of publications the server knows about.
  size_t num_publications() const FRESQUE_EXCLUDES(mu_);
  /// Stored record count across all publications.
  size_t total_records() const FRESQUE_EXCLUDES(mu_);
  /// Stored bytes across all publications (ciphertext + index + overflow).
  size_t total_bytes() const FRESQUE_EXCLUDES(mu_);

  const index::DomainBinning& binning() const { return binning_; }

 private:
  struct Publication {
    SegmentStorage storage;
    // Streaming metadata: leaf -> addresses (FRESQUE mode).
    std::unordered_map<uint32_t, std::vector<PhysicalAddress>> metadata;
    // Streaming metadata: tag -> address (PINED-RQ++ mode).
    std::vector<std::pair<uint64_t, PhysicalAddress>> tagged;
    // Set once published.
    std::optional<index::HistogramIndex> index;
    std::optional<index::OverflowArrays> overflow;
    std::vector<std::vector<PhysicalAddress>> postings;  // per leaf
    Bytes evidence;  // verbatim publication payload, for integrity checks
    bool published = false;
  };

  Result<Publication*> Find(uint64_t pn) FRESQUE_REQUIRES(mu_);

  Result<MatchingStats> InstallPublication(
      uint64_t pn, Publication* pub, net::IndexPublication publication,
      const index::MatchingTable* table, Bytes raw_payload)
      FRESQUE_REQUIRES(mu_);

  index::DomainBinning binning_;
  const Clock* clock_;
  mutable Mutex mu_;
  std::map<uint64_t, Publication> publications_ FRESQUE_GUARDED_BY(mu_);
};

}  // namespace cloud
}  // namespace fresque

#endif  // FRESQUE_CLOUD_SERVER_H_
