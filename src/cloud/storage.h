#ifndef FRESQUE_CLOUD_STORAGE_H_
#define FRESQUE_CLOUD_STORAGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace fresque {
namespace cloud {

/// Physical location of one stored e-record.
struct PhysicalAddress {
  uint32_t segment = 0;
  uint32_t offset = 0;
  uint32_t length = 0;

  bool operator==(const PhysicalAddress& o) const {
    return segment == o.segment && offset == o.offset && length == o.length;
  }
};

/// Append-only segmented record store — the cloud's on-disk file for one
/// publication. Records append to the tail segment and are addressed by
/// (segment, offset, length), mirroring how the paper's cloud writes
/// e-records to disk and keeps their physical addresses in metadata.
class SegmentStorage {
 public:
  /// `segment_capacity` bytes per segment (default 4 MiB).
  explicit SegmentStorage(size_t segment_capacity = 4 << 20);

  /// Appends one e-record; returns its address.
  PhysicalAddress Append(const Bytes& e_record);

  /// Reads the record at `addr`. This performs a copy — the "disk read" —
  /// so read-back-based matching (PINED-RQ++) pays a real per-record cost.
  Result<Bytes> Read(const PhysicalAddress& addr) const;

  /// Visits every stored record in append order without copying: `fn`
  /// receives the record's address plus a pointer/length into the live
  /// segment. The pointer is valid only for the duration of the call —
  /// callers must not retain it past `fn` returning (a later Append may
  /// reallocate the segment). Stops and propagates the first non-OK
  /// status `fn` returns.
  Status ForEachRecord(
      const std::function<Status(const PhysicalAddress&, const uint8_t* data,
                                 size_t size)>& fn) const;

  /// Zero-copy batch visitation of `addrs[0..n)`: `fn` receives each
  /// address plus a pointer/length into live segment memory, valid only
  /// for the duration of the call. One bounds check per address and no
  /// Status/Bytes machinery per record — this is the vectorized read path
  /// the query engine's leaf scan batches over (kScanBatch addresses per
  /// call). Fails on the first out-of-bounds address without visiting it.
  template <typename Fn>
  Status VisitAddresses(const PhysicalAddress* addrs, size_t n,
                        Fn&& fn) const {
    for (size_t i = 0; i < n; ++i) {
      const PhysicalAddress& a = addrs[i];
      if (!Contains(a)) {
        return Status::InvalidArgument("address outside stored segments");
      }
      fn(a, segments_[a.segment].data() + a.offset,
         static_cast<size_t>(a.length));
    }
    return Status::OK();
  }

  /// True when `addr` lies fully inside a stored segment.
  bool Contains(const PhysicalAddress& addr) const {
    return addr.segment < segments_.size() &&
           static_cast<size_t>(addr.offset) + addr.length <=
               segments_[addr.segment].size();
  }

  size_t num_segments() const { return segments_.size(); }
  size_t num_records() const { return num_records_; }
  size_t total_bytes() const { return total_bytes_; }

  /// Snapshot encoding (for cloud persistence).
  Bytes Serialize() const;
  static Result<SegmentStorage> Deserialize(const Bytes& data);

 private:
  size_t segment_capacity_;
  std::vector<Bytes> segments_;
  /// Append-order index of every record; lets iteration and integrity
  /// checks walk segment memory directly instead of copying via Read.
  std::vector<PhysicalAddress> directory_;
  size_t num_records_ = 0;
  size_t total_bytes_ = 0;
};

}  // namespace cloud
}  // namespace fresque

#endif  // FRESQUE_CLOUD_STORAGE_H_
