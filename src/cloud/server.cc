#include "cloud/server.h"

#include "obs/flight.h"
#include "query/scan.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace cloud {

CloudServer::CloudServer(index::DomainBinning binning, const Clock* clock,
                         size_t leaf_cache_capacity)
    : binning_(std::move(binning)),
      clock_(clock),
      leaf_cache_(leaf_cache_capacity) {}

Status CloudServer::StartPublication(uint64_t pn) {
  MutexLock lock(mu_);
  auto [it, inserted] = publications_.try_emplace(pn);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("publication " + std::to_string(pn) +
                                 " already open");
  }
  return Status::OK();
}

Result<CloudServer::Publication*> CloudServer::Find(uint64_t pn) {
  auto it = publications_.find(pn);
  if (it == publications_.end()) {
    return Status::NotFound("unknown publication " + std::to_string(pn));
  }
  return &it->second;
}

Status CloudServer::IngestRecord(uint64_t pn, uint32_t leaf,
                                 const Bytes& e_record) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published()) {
    return Status::FailedPrecondition("publication already published");
  }
  PhysicalAddress addr = (*pub)->storage.Append(e_record);
  (*pub)->metadata[leaf].push_back(addr);
  return Status::OK();
}

Status CloudServer::IngestTagged(uint64_t pn, uint64_t tag,
                                 const Bytes& e_record) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published()) {
    return Status::FailedPrecondition("publication already published");
  }
  PhysicalAddress addr = (*pub)->storage.Append(e_record);
  (*pub)->tagged.emplace_back(tag, addr);
  return Status::OK();
}

Result<MatchingStats> CloudServer::InstallPublication(
    uint64_t pn, Publication* pub, net::IndexPublication publication,
    const index::MatchingTable* table, Bytes raw_payload) {
  Stopwatch watch(clock_);
  const size_t num_leaves = publication.index.layout().num_leaves();
  // fresque-lint: allow(hot-alloc) install runs once per publication epoch, not per record
  std::vector<std::vector<PhysicalAddress>> postings(num_leaves);

  MatchingStats stats;
  stats.pn = pn;
  query::TagFilter filter;

  if (table == nullptr) {
    // FRESQUE matching: the metadata cache already groups addresses by
    // leaf; matching is a move per leaf.
    for (auto& [leaf, addrs] : pub->metadata) {
      if (leaf < num_leaves) {
        stats.records_matched += addrs.size();
        auto& posting = postings[leaf];
        posting.insert(posting.end(), addrs.begin(), addrs.end());
      }
    }
  } else {
    // PINED-RQ++ matching: re-read every record from storage ("disk") and
    // join its tag against the matching table. A tag with no table entry
    // (template loss, checker failure) simply joins to nothing — the
    // record stays stored but unreachable, like any dropped join row.
    // The tag filter, one cache line per probe, answers "definitely
    // absent" before the hash-table lookup; false negatives are
    // impossible, so the join result is identical with or without it.
    filter = query::TagFilter::Build(*table);
    for (const auto& [tag, addr] : pub->tagged) {
      auto bytes = pub->storage.Read(addr);
      if (!bytes.ok()) return bytes.status();
      if (!filter.MayContain(tag)) {
        ++stats.filter_negatives;
        continue;
      }
      auto leaf = table->Lookup(tag);
      if (!leaf.ok()) continue;  // filter false positive: truly absent
      if (*leaf < num_leaves) {
        postings[*leaf].push_back(addr);
        ++stats.records_matched;
      }
    }
    FRESQUE_COUNTER_ADD("query.tag_filter.negatives", stats.filter_negatives);
  }

  // Freeze the publication. From here on its storage, index, overflow and
  // postings are immutable and shared with every QueryView epoch that
  // includes it; the open-phase metadata is destroyed (paper §5.3).
  // fresque-lint: allow(hot-alloc) one allocation per publication install, not per record
  pub->installed = std::make_shared<const query::InstalledPublication>(
      pn, std::move(pub->storage), std::move(publication.index),
      std::move(publication.overflow), std::move(postings),
      std::move(raw_payload), std::move(filter));
  pub->metadata.clear();
  pub->tagged.clear();
  views_.Install(pub->installed);
  FRESQUE_FLIGHT_EVENT(kPublication, "view epoch installed", pn,
                       views_.epoch(), stats.records_matched);

  stats.matching_millis = watch.ElapsedMillis();
  return stats;
}

Result<MatchingStats> CloudServer::PublishIndexed(
    uint64_t pn, net::IndexPublication publication, Bytes raw_payload) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published()) {
    return Status::FailedPrecondition("publication already published");
  }
  return InstallPublication(pn, *pub, std::move(publication), nullptr,
                            std::move(raw_payload));
}

Result<MatchingStats> CloudServer::PublishWithMatchingTable(
    uint64_t pn, net::IndexPublication publication,
    const index::MatchingTable& table, Bytes raw_payload) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published()) {
    return Status::FailedPrecondition("publication already published");
  }
  return InstallPublication(pn, *pub, std::move(publication), &table,
                            std::move(raw_payload));
}

Result<MatchingStats> CloudServer::PublishBatch(
    uint64_t pn, net::IndexPublication publication,
    const std::vector<std::pair<uint32_t, Bytes>>& records) {
  {
    MutexLock lock(mu_);
    if (publications_.count(pn)) {
      return Status::AlreadyExists("publication exists");
    }
  }
  FRESQUE_RETURN_NOT_OK(StartPublication(pn));
  for (const auto& [leaf, bytes] : records) {
    FRESQUE_RETURN_NOT_OK(IngestRecord(pn, leaf, bytes));
  }
  return PublishIndexed(pn, std::move(publication));
}

Result<QueryResult> CloudServer::ExecuteQuery(
    const index::RangeQuery& q) const {
  return ExecuteQuery(q, query::QueryContext{});
}

Result<QueryResult> CloudServer::ExecuteQuery(
    const index::RangeQuery& q, const query::QueryContext& ctx) const {
  QueryResult result;
  std::shared_ptr<const query::QueryView> view;
  {
    // Snapshot point. Installs publish the view under this same mutex, so
    // inside the critical section every publication is in exactly one of
    // two states: open (its pairs copied out here) or installed (present
    // in `view`). No publication can be missed or seen twice, and no
    // half-installed state is observable.
    MutexLock lock(mu_);
    view = views_.Current();
    for (const auto& [pn, pub] : publications_) {
      if (pub.published()) continue;
      // Open publication: no index yet; filter the cached pairs one by
      // one on the (public) leaf interval.
      for (const auto& [leaf, addrs] : pub.metadata) {
        double lo = binning_.LeafLow(leaf);
        double hi = binning_.LeafHigh(leaf);
        if (hi <= q.lo || lo > q.hi) continue;
        for (const auto& addr : addrs) {
          auto bytes = pub.storage.Read(addr);
          if (!bytes.ok()) return bytes.status();
          result.unindexed_records.push_back({pn, std::move(*bytes)});
        }
      }
    }
  }
  // Installed publications: scanned against the pinned immutable view
  // with no server lock held — ingest and installs proceed concurrently.
  FRESQUE_RETURN_NOT_OK(
      query::ScanView(*view, q, ctx, &leaf_cache_, &result));
  return result;
}

int64_t CloudServer::ApproximateCount(const index::RangeQuery& q) const {
  // Served purely from the immutable view: no lock, no record access.
  auto view = views_.Current();
  int64_t total = 0;
  for (const auto& pub : view->publications()) {
    total += pub->index.NoisyRangeCount(q);
  }
  return total;
}

std::shared_ptr<const query::QueryView> CloudServer::CurrentView() const {
  return views_.Current();
}

uint64_t CloudServer::view_epoch() const { return views_.epoch(); }

Result<Bytes> CloudServer::PublicationEvidence(uint64_t pn) const {
  auto pub = views_.Current()->Find(pn);
  if (pub == nullptr || pub->evidence.empty()) {
    return Status::NotFound("no publication evidence for " +
                            std::to_string(pn));
  }
  return pub->evidence;
}

Status CloudServer::ForEachStoredRecord(
    uint64_t pn,
    const std::function<Status(const PhysicalAddress&, const uint8_t*,
                               size_t)>& fn) const {
  std::shared_ptr<const query::InstalledPublication> installed;
  {
    MutexLock lock(mu_);
    auto it = publications_.find(pn);
    if (it == publications_.end()) {
      return Status::NotFound("unknown publication " + std::to_string(pn));
    }
    if (!it->second.published()) {
      // Open publication: storage still mutates under mu_, so iterate
      // inside the critical section.
      return it->second.storage.ForEachRecord(fn);
    }
    installed = it->second.installed;
  }
  // Installed storage is immutable; iterate without the lock.
  return installed->storage.ForEachRecord(fn);
}

size_t CloudServer::num_publications() const {
  MutexLock lock(mu_);
  return publications_.size();
}

size_t CloudServer::total_records() const {
  MutexLock lock(mu_);
  size_t t = 0;
  for (const auto& [pn, pub] : publications_) {
    (void)pn;
    t += pub.published() ? pub.installed->storage.num_records()
                         : pub.storage.num_records();
  }
  return t;
}

size_t CloudServer::total_bytes() const {
  MutexLock lock(mu_);
  size_t t = 0;
  for (const auto& [pn, pub] : publications_) {
    (void)pn;
    if (pub.published()) {
      t += pub.installed->storage.total_bytes();
      t += pub.installed->index.CountBytes();
      t += pub.installed->overflow.PayloadBytes();
    } else {
      t += pub.storage.total_bytes();
    }
  }
  return t;
}

}  // namespace cloud
}  // namespace fresque
