#include "cloud/server.h"

namespace fresque {
namespace cloud {

CloudServer::CloudServer(index::DomainBinning binning, const Clock* clock)
    : binning_(std::move(binning)), clock_(clock) {}

Status CloudServer::StartPublication(uint64_t pn) {
  MutexLock lock(mu_);
  auto [it, inserted] = publications_.try_emplace(pn);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("publication " + std::to_string(pn) +
                                 " already open");
  }
  return Status::OK();
}

Result<CloudServer::Publication*> CloudServer::Find(uint64_t pn) {
  auto it = publications_.find(pn);
  if (it == publications_.end()) {
    return Status::NotFound("unknown publication " + std::to_string(pn));
  }
  return &it->second;
}

Status CloudServer::IngestRecord(uint64_t pn, uint32_t leaf,
                                 const Bytes& e_record) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published) {
    return Status::FailedPrecondition("publication already published");
  }
  PhysicalAddress addr = (*pub)->storage.Append(e_record);
  (*pub)->metadata[leaf].push_back(addr);
  return Status::OK();
}

Status CloudServer::IngestTagged(uint64_t pn, uint64_t tag,
                                 const Bytes& e_record) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published) {
    return Status::FailedPrecondition("publication already published");
  }
  PhysicalAddress addr = (*pub)->storage.Append(e_record);
  (*pub)->tagged.emplace_back(tag, addr);
  return Status::OK();
}

Result<MatchingStats> CloudServer::InstallPublication(
    uint64_t pn, Publication* pub, net::IndexPublication publication,
    const index::MatchingTable* table, Bytes raw_payload) {
  Stopwatch watch(clock_);
  const size_t num_leaves = publication.index.layout().num_leaves();
  pub->postings.assign(num_leaves, {});

  MatchingStats stats;
  stats.pn = pn;

  if (table == nullptr) {
    // FRESQUE matching: the metadata cache already groups addresses by
    // leaf; matching is a move per leaf.
    for (auto& [leaf, addrs] : pub->metadata) {
      if (leaf < num_leaves) {
        stats.records_matched += addrs.size();
        auto& posting = pub->postings[leaf];
        posting.insert(posting.end(), addrs.begin(), addrs.end());
      }
    }
  } else {
    // PINED-RQ++ matching: re-read every record from storage ("disk") and
    // join its tag against the matching table.
    for (const auto& [tag, addr] : pub->tagged) {
      auto bytes = pub->storage.Read(addr);
      if (!bytes.ok()) return bytes.status();
      auto leaf = table->Lookup(tag);
      if (!leaf.ok()) return leaf.status();
      if (*leaf < num_leaves) {
        pub->postings[*leaf].push_back(addr);
        ++stats.records_matched;
      }
    }
  }

  pub->index.emplace(std::move(publication.index));
  pub->overflow.emplace(std::move(publication.overflow));
  pub->evidence = std::move(raw_payload);
  pub->metadata.clear();  // metadata destroyed after matching (paper §5.3)
  pub->tagged.clear();
  pub->published = true;

  stats.matching_millis = watch.ElapsedMillis();
  return stats;
}

Result<MatchingStats> CloudServer::PublishIndexed(
    uint64_t pn, net::IndexPublication publication, Bytes raw_payload) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published) {
    return Status::FailedPrecondition("publication already published");
  }
  return InstallPublication(pn, *pub, std::move(publication), nullptr,
                            std::move(raw_payload));
}

Result<MatchingStats> CloudServer::PublishWithMatchingTable(
    uint64_t pn, net::IndexPublication publication,
    const index::MatchingTable& table, Bytes raw_payload) {
  MutexLock lock(mu_);
  auto pub = Find(pn);
  if (!pub.ok()) return pub.status();
  if ((*pub)->published) {
    return Status::FailedPrecondition("publication already published");
  }
  return InstallPublication(pn, *pub, std::move(publication), &table,
                            std::move(raw_payload));
}

Result<MatchingStats> CloudServer::PublishBatch(
    uint64_t pn, net::IndexPublication publication,
    const std::vector<std::pair<uint32_t, Bytes>>& records) {
  {
    MutexLock lock(mu_);
    if (publications_.count(pn)) {
      return Status::AlreadyExists("publication exists");
    }
  }
  FRESQUE_RETURN_NOT_OK(StartPublication(pn));
  for (const auto& [leaf, bytes] : records) {
    FRESQUE_RETURN_NOT_OK(IngestRecord(pn, leaf, bytes));
  }
  return PublishIndexed(pn, std::move(publication));
}

Result<QueryResult> CloudServer::ExecuteQuery(
    const index::RangeQuery& q) const {
  MutexLock lock(mu_);
  QueryResult result;
  for (const auto& [pn, pub] : publications_) {
    if (pub.published) {
      std::vector<size_t> leaves = pub.index->Traverse(q);
      for (size_t leaf : leaves) {
        for (const auto& addr : pub.postings[leaf]) {
          auto bytes = pub.storage.Read(addr);
          if (!bytes.ok()) return bytes.status();
          result.indexed_records.push_back({pn, std::move(*bytes)});
        }
        if (pub.overflow && leaf < pub.overflow->num_leaves()) {
          for (const auto& slot : pub.overflow->leaf(leaf)) {
            if (!slot.empty()) result.overflow_records.push_back({pn, slot});
          }
        }
      }
    } else {
      // Open publication: no index yet; filter the cached pairs one by
      // one on the (public) leaf interval.
      for (const auto& [leaf, addrs] : pub.metadata) {
        double lo = binning_.LeafLow(leaf);
        double hi = binning_.LeafHigh(leaf);
        if (hi <= q.lo || lo > q.hi) continue;
        for (const auto& addr : addrs) {
          auto bytes = pub.storage.Read(addr);
          if (!bytes.ok()) return bytes.status();
          result.unindexed_records.push_back({pn, std::move(*bytes)});
        }
      }
    }
  }
  return result;
}

int64_t CloudServer::ApproximateCount(const index::RangeQuery& q) const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& [pn, pub] : publications_) {
    (void)pn;
    if (pub.published) total += pub.index->NoisyRangeCount(q);
  }
  return total;
}

Result<Bytes> CloudServer::PublicationEvidence(uint64_t pn) const {
  MutexLock lock(mu_);
  auto it = publications_.find(pn);
  if (it == publications_.end() || !it->second.published ||
      it->second.evidence.empty()) {
    return Status::NotFound("no publication evidence for " +
                            std::to_string(pn));
  }
  return it->second.evidence;
}

Status CloudServer::ForEachStoredRecord(
    uint64_t pn,
    const std::function<Status(const PhysicalAddress&, const uint8_t*,
                               size_t)>& fn) const {
  MutexLock lock(mu_);
  auto it = publications_.find(pn);
  if (it == publications_.end()) {
    return Status::NotFound("unknown publication " + std::to_string(pn));
  }
  return it->second.storage.ForEachRecord(fn);
}

size_t CloudServer::num_publications() const {
  MutexLock lock(mu_);
  return publications_.size();
}

size_t CloudServer::total_records() const {
  MutexLock lock(mu_);
  size_t t = 0;
  for (const auto& [pn, pub] : publications_) {
    (void)pn;
    t += pub.storage.num_records();
  }
  return t;
}

size_t CloudServer::total_bytes() const {
  MutexLock lock(mu_);
  size_t t = 0;
  for (const auto& [pn, pub] : publications_) {
    (void)pn;
    t += pub.storage.total_bytes();
    if (pub.index) t += pub.index->CountBytes();
    if (pub.overflow) t += pub.overflow->PayloadBytes();
  }
  return t;
}

}  // namespace cloud
}  // namespace fresque
