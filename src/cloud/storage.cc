#include "cloud/storage.h"

#include <cstring>

namespace fresque {
namespace cloud {

SegmentStorage::SegmentStorage(size_t segment_capacity)
    : segment_capacity_(segment_capacity) {
  segments_.emplace_back();
  segments_.back().reserve(segment_capacity_);
}

PhysicalAddress SegmentStorage::Append(const Bytes& e_record) {
  if (segments_.back().size() + e_record.size() > segment_capacity_ &&
      !segments_.back().empty()) {
    segments_.emplace_back();
    segments_.back().reserve(segment_capacity_);
  }
  Bytes& seg = segments_.back();
  PhysicalAddress addr;
  addr.segment = static_cast<uint32_t>(segments_.size() - 1);
  addr.offset = static_cast<uint32_t>(seg.size());
  addr.length = static_cast<uint32_t>(e_record.size());
  seg.insert(seg.end(), e_record.begin(), e_record.end());
  directory_.push_back(addr);
  ++num_records_;
  total_bytes_ += e_record.size();
  return addr;
}

Status SegmentStorage::ForEachRecord(
    const std::function<Status(const PhysicalAddress&, const uint8_t*, size_t)>&
        fn) const {
  for (const PhysicalAddress& addr : directory_) {
    const Bytes& seg = segments_[addr.segment];
    FRESQUE_RETURN_NOT_OK(fn(addr, seg.data() + addr.offset, addr.length));
  }
  return Status::OK();
}

Result<Bytes> SegmentStorage::Read(const PhysicalAddress& addr) const {
  if (addr.segment >= segments_.size()) {
    return Status::OutOfRange("segment out of range");
  }
  const Bytes& seg = segments_[addr.segment];
  if (static_cast<size_t>(addr.offset) + addr.length > seg.size()) {
    return Status::OutOfRange("record range outside segment");
  }
  Bytes out(addr.length);
  if (addr.length > 0) {
    std::memcpy(out.data(), seg.data() + addr.offset, addr.length);
  }
  return out;
}

Bytes SegmentStorage::Serialize() const {
  BinaryWriter w;
  w.PutU64(segment_capacity_);
  w.PutU64(num_records_);
  w.PutU64(total_bytes_);
  w.PutU64(segments_.size());
  for (const auto& seg : segments_) w.PutBytes(seg);
  w.PutU64(directory_.size());
  for (const PhysicalAddress& addr : directory_) {
    w.PutU32(addr.segment);
    w.PutU32(addr.offset);
    w.PutU32(addr.length);
  }
  return w.Release();
}

Result<SegmentStorage> SegmentStorage::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  auto capacity = r.GetU64();
  auto records = r.GetU64();
  auto total = r.GetU64();
  auto count = r.GetU64();
  if (!capacity.ok() || !records.ok() || !total.ok() || !count.ok()) {
    return Status::Corruption("truncated storage snapshot");
  }
  // Each serialized segment carries at least a 4-byte length prefix, so a
  // claimed count larger than the bytes left is corrupt — reject before
  // looping rather than trusting an attacker-controlled allocation count.
  if (*count > r.remaining() / 4 + 1) {
    return Status::Corruption("storage snapshot segment count implausible");
  }
  // Physical addresses index segments with u32 offset/length, so a capacity
  // beyond u32 range can never have been written by Serialize — and the
  // constructor reserves `capacity` bytes, so it must be validated before
  // it drives an allocation.
  if (*capacity == 0 || *capacity > UINT32_MAX) {
    return Status::Corruption("storage snapshot capacity implausible");
  }
  SegmentStorage out(*capacity);
  out.segments_.clear();
  size_t segment_bytes = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto seg = r.GetBytes();
    if (!seg.ok()) return Status::Corruption("truncated storage segment");
    segment_bytes += seg->size();
    out.segments_.push_back(std::move(*seg));
  }
  if (segment_bytes != *total) {
    return Status::Corruption("storage snapshot byte total mismatch");
  }
  auto dir_count = r.GetU64();
  if (!dir_count.ok()) {
    return Status::Corruption("truncated storage directory");
  }
  if (*dir_count != *records || *dir_count > r.remaining() / 12) {
    return Status::Corruption("storage snapshot directory count mismatch");
  }
  out.directory_.reserve(*dir_count);
  for (uint64_t i = 0; i < *dir_count; ++i) {
    auto seg_idx = r.GetU32();
    auto offset = r.GetU32();
    auto length = r.GetU32();
    if (!seg_idx.ok() || !offset.ok() || !length.ok()) {
      return Status::Corruption("truncated storage directory entry");
    }
    if (*seg_idx >= out.segments_.size() ||
        static_cast<size_t>(*offset) + *length >
            out.segments_[*seg_idx].size()) {
      return Status::Corruption("storage directory entry out of bounds");
    }
    out.directory_.push_back({*seg_idx, *offset, *length});
  }
  if (out.segments_.empty()) out.segments_.emplace_back();
  out.num_records_ = *records;
  out.total_bytes_ = *total;
  return out;
}

}  // namespace cloud
}  // namespace fresque
