#include "cloud/storage.h"

#include <cstring>

namespace fresque {
namespace cloud {

SegmentStorage::SegmentStorage(size_t segment_capacity)
    : segment_capacity_(segment_capacity) {
  segments_.emplace_back();
  segments_.back().reserve(segment_capacity_);
}

PhysicalAddress SegmentStorage::Append(const Bytes& e_record) {
  if (segments_.back().size() + e_record.size() > segment_capacity_ &&
      !segments_.back().empty()) {
    segments_.emplace_back();
    segments_.back().reserve(segment_capacity_);
  }
  Bytes& seg = segments_.back();
  PhysicalAddress addr;
  addr.segment = static_cast<uint32_t>(segments_.size() - 1);
  addr.offset = static_cast<uint32_t>(seg.size());
  addr.length = static_cast<uint32_t>(e_record.size());
  seg.insert(seg.end(), e_record.begin(), e_record.end());
  ++num_records_;
  total_bytes_ += e_record.size();
  return addr;
}

Result<Bytes> SegmentStorage::Read(const PhysicalAddress& addr) const {
  if (addr.segment >= segments_.size()) {
    return Status::OutOfRange("segment out of range");
  }
  const Bytes& seg = segments_[addr.segment];
  if (static_cast<size_t>(addr.offset) + addr.length > seg.size()) {
    return Status::OutOfRange("record range outside segment");
  }
  Bytes out(addr.length);
  std::memcpy(out.data(), seg.data() + addr.offset, addr.length);
  return out;
}

Bytes SegmentStorage::Serialize() const {
  BinaryWriter w;
  w.PutU64(segment_capacity_);
  w.PutU64(num_records_);
  w.PutU64(total_bytes_);
  w.PutU64(segments_.size());
  for (const auto& seg : segments_) w.PutBytes(seg);
  return w.Release();
}

Result<SegmentStorage> SegmentStorage::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  auto capacity = r.GetU64();
  auto records = r.GetU64();
  auto total = r.GetU64();
  auto count = r.GetU64();
  if (!capacity.ok() || !records.ok() || !total.ok() || !count.ok()) {
    return Status::Corruption("truncated storage snapshot");
  }
  SegmentStorage out(*capacity);
  out.segments_.clear();
  for (uint64_t i = 0; i < *count; ++i) {
    auto seg = r.GetBytes();
    if (!seg.ok()) return Status::Corruption("truncated storage segment");
    out.segments_.push_back(std::move(*seg));
  }
  if (out.segments_.empty()) out.segments_.emplace_back();
  out.num_records_ = *records;
  out.total_bytes_ = *total;
  return out;
}

}  // namespace cloud
}  // namespace fresque
