#ifndef FRESQUE_RECORD_DATASET_H_
#define FRESQUE_RECORD_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "record/parser.h"

namespace fresque {
namespace record {

/// Everything the collector must know about one workload: how to parse its
/// raw lines and how its indexed attribute's domain is binned into the
/// PINED-RQ histogram.
struct DatasetSpec {
  std::string name;
  std::shared_ptr<const LineParser> parser;
  /// Indexed-attribute domain [domain_min, domain_max).
  double domain_min = 0;
  double domain_max = 0;
  /// Histogram bin (leaf) width Ib.
  double bin_width = 0;
  /// Record count of the real dataset the paper evaluates (for --paper-scale
  /// runs); generators can produce any count.
  size_t paper_record_count = 0;

  size_t num_bins() const {
    return static_cast<size_t>((domain_max - domain_min) / bin_width);
  }
};

/// NASA-HTTP-like workload: Apache common-log lines, 5 attributes, the
/// reply-byte attribute indexed over 3421 bins of 1 KB (paper §7.1).
Result<DatasetSpec> NasaDataset();

/// Gowalla-like workload: CSV check-ins, 3 attributes, the check-in time
/// indexed over 626 bins of one hour (paper §7.1).
Result<DatasetSpec> GowallaDataset();

/// Produces raw text lines for a workload. Deterministic given a seed, so
/// experiments are reproducible and ground truth can be recomputed.
class LineGenerator {
 public:
  virtual ~LineGenerator() = default;
  virtual std::string NextLine() = 0;
};

/// Synthesizes Apache common-log lines whose reply sizes follow a clipped
/// log-normal (heavy-tailed, like real web traffic) over the NASA domain.
class NasaLogGenerator : public LineGenerator {
 public:
  explicit NasaLogGenerator(uint64_t seed);

  std::string NextLine() override;

 private:
  Xoshiro256 rng_;
  int64_t clock_seconds_;
};

/// Synthesizes check-in CSV lines with times uniform over the 626-hour
/// Gowalla window.
class GowallaGenerator : public LineGenerator {
 public:
  explicit GowallaGenerator(uint64_t seed);

  std::string NextLine() override;

 private:
  Xoshiro256 rng_;
};

/// Constructs the generator matching a dataset spec by name.
Result<std::unique_ptr<LineGenerator>> MakeGenerator(const DatasetSpec& spec,
                                                     uint64_t seed);

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_DATASET_H_
