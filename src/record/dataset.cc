#include "record/dataset.h"

#include <cmath>
#include <cstdio>

namespace fresque {
namespace record {

namespace {

// NASA domain: 3421 bins x 1 KB (paper §7.1).
constexpr double kNasaDomainMax = 3421.0 * 1024.0;
// Gowalla domain: 626 bins x 1 hour, measured in epoch seconds from t0.
constexpr double kGowallaT0 = 1230768000.0;  // 2009-01-01, arbitrary anchor
constexpr double kGowallaDomainMax = kGowallaT0 + 626.0 * 3600.0;

constexpr const char* kHosts[] = {
    "piweba3y.prodigy.com", "alyssa.prodigy.com", "www-d1.proxy.aol.com",
    "burger.letters.com",   "in24.inetnebr.com",  "ix-esc-ca2-07.ix.net",
    "uplherc.upl.com",      "slppp6.intermind.net", "133.43.96.45",
    "kgtyk4.kj.yamagata-u.ac.jp", "d0ucr6.fnal.gov", "ix-sac6-20.ix.net",
};

constexpr const char* kPaths[] = {
    "/history/apollo/",
    "/shuttle/countdown/",
    "/shuttle/missions/sts-73/mission-sts-73.html",
    "/shuttle/countdown/liftoff.html",
    "/images/NASA-logosmall.gif",
    "/images/KSC-logosmall.gif",
    "/shuttle/missions/sts-73/sts-73-patch-small.gif",
    "/images/ksclogo-medium.gif",
    "/history/apollo/images/apollo-logo1.gif",
    "/facilities/lc39a.html",
    "/shuttle/resources/orbiters/columbia.html",
    "/cgi-bin/imagemap/countdown?99,176",
};

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

Result<DatasetSpec> NasaDataset() {
  auto parser = ApacheLogParser::Create();
  if (!parser.ok()) return parser.status();
  DatasetSpec spec;
  spec.name = "nasa";
  spec.parser = std::shared_ptr<const LineParser>(
      std::move(parser).ValueOrDie().release());
  spec.domain_min = 0.0;
  spec.domain_max = kNasaDomainMax;
  spec.bin_width = 1024.0;
  spec.paper_record_count = 1569898;
  return spec;
}

Result<DatasetSpec> GowallaDataset() {
  auto schema = Schema::Create(
      {
          {"user", ValueType::kInt64},
          {"checkin_time", ValueType::kInt64},
          {"location", ValueType::kInt64},
      },
      "checkin_time");
  if (!schema.ok()) return schema.status();
  DatasetSpec spec;
  spec.name = "gowalla";
  spec.parser = std::make_shared<CsvParser>(std::move(schema).ValueOrDie());
  spec.domain_min = kGowallaT0;
  spec.domain_max = kGowallaDomainMax;
  spec.bin_width = 3600.0;
  spec.paper_record_count = 6442892;
  return spec;
}

NasaLogGenerator::NasaLogGenerator(uint64_t seed)
    : rng_(seed), clock_seconds_(0) {}

std::string NasaLogGenerator::NextLine() {
  // Reply size: clipped log-normal — heavy-tailed like real web replies.
  // exp(N(8.3, 1.9)) has median ~4 KB and a long tail into the MB range.
  double u1 = rng_.NextDoubleOpenLow();
  double u2 = rng_.NextDouble();
  double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double size = std::exp(8.3 + 1.9 * normal);
  int64_t bytes = static_cast<int64_t>(size);
  if (bytes >= static_cast<int64_t>(kNasaDomainMax)) {
    bytes = static_cast<int64_t>(kNasaDomainMax) - 1;
  }
  if (bytes < 0) bytes = 0;

  const char* host = kHosts[rng_.NextBounded(std::size(kHosts))];
  const char* path = kPaths[rng_.NextBounded(std::size(kPaths))];

  // Advance a synthetic July-1995 wall clock ~3 requests/second.
  clock_seconds_ += static_cast<int64_t>(rng_.NextBounded(2));
  int64_t t = clock_seconds_;
  int day = 1 + static_cast<int>((t / 86400) % 28);
  int hh = static_cast<int>((t / 3600) % 24);
  int mm = static_cast<int>((t / 60) % 60);
  int ss = static_cast<int>(t % 60);

  int status;
  uint64_t roll = rng_.NextBounded(100);
  if (roll < 88) {
    status = 200;
  } else if (roll < 96) {
    status = 304;
    bytes = 0;
  } else {
    status = 404;
    bytes = 0;
  }

  // Method mix approximates the real trace: GETs dominate, with
  // occasional HEADs (no body).
  const char* method = "GET";
  if (rng_.NextBounded(50) == 0) {
    method = "HEAD";
    bytes = 0;
  }

  char buf[320];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%s - - [%02d/%s/1995:%02d:%02d:%02d -0400] \"%s %s HTTP/1.0\" %d %lld",
      host, day, kMonths[6], hh, mm, ss, method, path, status,
      static_cast<long long>(bytes));
  return std::string(buf, static_cast<size_t>(n));
}

GowallaGenerator::GowallaGenerator(uint64_t seed) : rng_(seed) {}

std::string GowallaGenerator::NextLine() {
  int64_t user = static_cast<int64_t>(rng_.NextBounded(200000));

  // Check-in times follow a diurnal cycle like the real Gowalla trace:
  // day picked uniformly, hour-of-day biased toward afternoon/evening
  // (accept-reject against a raised-cosine profile peaking at 18:00).
  uint64_t day = rng_.NextBounded(626 / 24);
  uint64_t hour;
  for (;;) {
    hour = rng_.NextBounded(24);
    double phase =
        (static_cast<double>(hour) - 18.0) * (3.14159265358979 / 12.0);
    double accept = 0.55 + 0.45 * std::cos(phase);
    if (rng_.NextDouble() < accept) break;
  }
  uint64_t second = rng_.NextBounded(3600);
  int64_t t = static_cast<int64_t>(kGowallaT0) +
              static_cast<int64_t>((day * 24 + hour) * 3600 + second);

  // Location popularity is heavy-tailed: a few hot venues absorb most
  // check-ins (approximate Zipf via an inverse-power transform).
  double u = rng_.NextDoubleOpenLow();
  int64_t loc = static_cast<int64_t>(1300000.0 * std::pow(u, 2.2));

  char buf[96];
  int n = std::snprintf(buf, sizeof(buf), "%lld,%lld,%lld",
                        static_cast<long long>(user),
                        static_cast<long long>(t),
                        static_cast<long long>(loc));
  return std::string(buf, static_cast<size_t>(n));
}

Result<std::unique_ptr<LineGenerator>> MakeGenerator(const DatasetSpec& spec,
                                                     uint64_t seed) {
  if (spec.name == "nasa") {
    return std::unique_ptr<LineGenerator>(new NasaLogGenerator(seed));
  }
  if (spec.name == "gowalla") {
    return std::unique_ptr<LineGenerator>(new GowallaGenerator(seed));
  }
  return Status::NotFound("no generator for dataset " + spec.name);
}

}  // namespace record
}  // namespace fresque
