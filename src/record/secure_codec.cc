#include "record/secure_codec.h"

namespace fresque {
namespace record {

Result<SecureRecordCodec> SecureRecordCodec::Create(
    const Bytes& key, const Schema* schema, crypto::SecureRandom* rng) {
  auto cbc = crypto::AesCbc::Create(key);
  if (!cbc.ok()) return cbc.status();
  return SecureRecordCodec(std::move(cbc).ValueOrDie(), schema, rng);
}

Result<Bytes> SecureRecordCodec::EncryptRecord(const Record& rec) {
  auto body = codec_.Serialize(rec);
  if (!body.ok()) return body.status();
  return EncryptSerializedRecord(*body);
}

Result<Bytes> SecureRecordCodec::EncryptSerializedRecord(const Bytes& body) {
  Bytes plain;
  plain.reserve(body.size() + 1);
  plain.push_back(kKindReal);
  plain.insert(plain.end(), body.begin(), body.end());
  return cbc_.Encrypt(plain,
                      [this](uint8_t* out, size_t n) { rng_->Fill(out, n); });
}

Result<Bytes> SecureRecordCodec::EncryptDummy(size_t padding_len) {
  Bytes plain(padding_len + 1);
  plain[0] = kKindDummy;
  rng_->Fill(plain.data() + 1, padding_len);
  return cbc_.Encrypt(plain,
                      [this](uint8_t* out, size_t n) { rng_->Fill(out, n); });
}

Result<SecureRecordCodec::Opened> SecureRecordCodec::Decrypt(
    const Bytes& e_record) const {
  auto plain = cbc_.Decrypt(e_record);
  if (!plain.ok()) return plain.status();
  if (plain->empty()) {
    return Status::Corruption("empty e-record plaintext");
  }
  Opened out;
  uint8_t kind = (*plain)[0];
  if (kind == kKindDummy) {
    out.is_dummy = true;
    return out;
  }
  if (kind != kKindReal) {
    return Status::Corruption("unknown e-record kind byte");
  }
  Bytes body(plain->begin() + 1, plain->end());
  auto rec = codec_.Deserialize(body);
  if (!rec.ok()) return rec.status();
  out.rec = std::move(*rec);
  return out;
}

}  // namespace record
}  // namespace fresque
