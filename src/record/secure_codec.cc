#include "record/secure_codec.h"

namespace fresque {
namespace record {

Result<SecureRecordCodec> SecureRecordCodec::Create(
    const Bytes& key, const Schema* schema, crypto::SecureRandom* rng) {
  auto cbc = crypto::AesCbc::Create(key);
  if (!cbc.ok()) return cbc.status();
  return SecureRecordCodec(std::move(cbc).ValueOrDie(), schema, rng);
}

Result<Bytes> SecureRecordCodec::EncryptRecord(const Record& rec) {
  auto body = codec_.Serialize(rec);
  if (!body.ok()) return body.status();
  return EncryptSerializedRecord(*body);
}

Result<Bytes> SecureRecordCodec::EncryptSerializedRecord(const Bytes& body) {
  Bytes plain;
  plain.reserve(body.size() + 1);
  plain.push_back(kKindReal);
  plain.insert(plain.end(), body.begin(), body.end());
  return cbc_.Encrypt(plain,
                      [this](uint8_t* out, size_t n) { rng_->Fill(out, n); });
}

Result<Bytes> SecureRecordCodec::EncryptDummy(size_t padding_len) {
  Bytes plain(padding_len + 1);
  plain[0] = kKindDummy;
  rng_->Fill(plain.data() + 1, padding_len);
  return cbc_.Encrypt(plain,
                      [this](uint8_t* out, size_t n) { rng_->Fill(out, n); });
}

Status SecureRecordCodec::BatchEncryptor::StageRecord(const Record& rec,
                                                      Bytes* out) {
  const size_t start = arena_.size();
  arena_.push_back(kKindReal);
  Status st = codec_->codec_.SerializeAppend(rec, &arena_);
  if (!st.ok()) {
    arena_.resize(start);
    return st;
  }
  offsets_.push_back(start);
  outs_.push_back(out);
  return Status::OK();
}

void SecureRecordCodec::BatchEncryptor::StageSerializedRecord(const Bytes& body,
                                                              Bytes* out) {
  offsets_.push_back(arena_.size());
  arena_.push_back(kKindReal);
  arena_.insert(arena_.end(), body.begin(), body.end());
  outs_.push_back(out);
}

void SecureRecordCodec::BatchEncryptor::StageDummy(size_t padding_len,
                                                   Bytes* out) {
  const size_t start = arena_.size();
  arena_.resize(start + 1 + padding_len);
  arena_[start] = kKindDummy;
  codec_->rng_->Fill(arena_.data() + start + 1, padding_len);
  offsets_.push_back(start);
  outs_.push_back(out);
}

Status SecureRecordCodec::BatchEncryptor::Flush() {
  const size_t n = outs_.size();
  if (n == 0) return Status::OK();
  // Item pointers are resolved only now: the arena cannot reallocate
  // under them anymore.
  items_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t end = (i + 1 < n) ? offsets_[i + 1] : arena_.size();
    items_[i] = crypto::CbcBatchItem{arena_.data() + offsets_[i],
                                     end - offsets_[i], outs_[i]};
  }
  crypto::SecureRandom* rng = codec_->rng_;
  Status st = codec_->cbc_.EncryptBatch(
      items_.data(), n, [rng](uint8_t* p, size_t len) { rng->Fill(p, len); },
      &scratch_);
  arena_.clear();
  offsets_.clear();
  outs_.clear();
  return st;
}

Result<SecureRecordCodec::Opened> SecureRecordCodec::Decrypt(
    const Bytes& e_record) const {
  auto plain = cbc_.Decrypt(e_record);
  if (!plain.ok()) return plain.status();
  if (plain->empty()) {
    return Status::Corruption("empty e-record plaintext");
  }
  Opened out;
  uint8_t kind = (*plain)[0];
  if (kind == kKindDummy) {
    out.is_dummy = true;
    return out;
  }
  if (kind != kKindReal) {
    return Status::Corruption("unknown e-record kind byte");
  }
  Bytes body(plain->begin() + 1, plain->end());
  auto rec = codec_.Deserialize(body);
  if (!rec.ok()) return rec.status();
  out.rec = std::move(*rec);
  return out;
}

}  // namespace record
}  // namespace fresque
