#ifndef FRESQUE_RECORD_VALUE_H_
#define FRESQUE_RECORD_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace fresque {
namespace record {

/// Attribute types supported by dataset schemas.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeToString(ValueType t);

/// One attribute value. Range queries index int64/double attributes;
/// string attributes travel as payload only.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// In-place mutators for hot-path reuse: a Record's values can be
  /// overwritten without destroying them, and SetString reuses the
  /// existing string's capacity when the value already holds one —
  /// steady-state parsing then allocates nothing (see
  /// LineParser::ParseInto).
  void SetInt64(int64_t v) { repr_ = v; }
  void SetDouble(double v) { repr_ = v; }
  void SetString(std::string_view s) {
    if (auto* existing = std::get_if<std::string>(&repr_)) {
      existing->assign(s.data(), s.size());
    } else {
      repr_.emplace<std::string>(s);
    }
  }

  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view used for range-query evaluation: int64 and double both
  /// convert; strings fail.
  Result<double> AsNumeric() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> repr_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_VALUE_H_
