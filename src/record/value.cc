#include "record/value.h"

namespace fresque {
namespace record {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      return Status::InvalidArgument("string value is not numeric");
  }
  return Status::Internal("unknown value type");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace record
}  // namespace fresque
