#ifndef FRESQUE_RECORD_RECORD_H_
#define FRESQUE_RECORD_RECORD_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "record/schema.h"
#include "record/value.h"

namespace fresque {
namespace record {

/// One parsed tuple of a relation. Values are positional and must match
/// the schema the record was parsed against.
class Record {
 public:
  Record() = default;
  explicit Record(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  std::vector<Value>& values() { return values_; }
  const std::vector<Value>& values() const { return values_; }

  /// Numeric value of the schema's indexed attribute.
  Result<double> IndexedValue(const Schema& schema) const;

  bool operator==(const Record& other) const {
    return values_ == other.values_;
  }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Serializes a record to bytes and back, validating against a schema.
/// This is the plaintext layout that AES-CBC encrypts before records leave
/// the collector.
class RecordCodec {
 public:
  explicit RecordCodec(const Schema* schema) : schema_(schema) {}

  /// Fails if the record shape does not match the schema.
  Result<Bytes> Serialize(const Record& rec) const;

  /// Appends the serialized record to `*out` without clearing it. With a
  /// reused buffer the retained capacity makes repeated calls
  /// allocation-free, which is what the computing nodes' batch path
  /// relies on. On error `*out` is left unchanged.
  Status SerializeAppend(const Record& rec, Bytes* out) const;

  Result<Record> Deserialize(const Bytes& data) const;

  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_RECORD_H_
