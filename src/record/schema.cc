#include "record/schema.h"

#include <sstream>

namespace fresque {
namespace record {

Result<Schema> Schema::Create(std::vector<Field> fields,
                              const std::string& indexed_field) {
  if (fields.empty()) {
    return Status::InvalidArgument("schema needs at least one field");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == indexed_field) {
      if (fields[i].type == ValueType::kString) {
        return Status::InvalidArgument(
            "indexed attribute must be numeric: " + indexed_field);
      }
      return Schema(std::move(fields), i);
    }
  }
  return Status::NotFound("indexed field not in schema: " + indexed_field);
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named " + name);
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "schema(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << ValueTypeToString(fields_[i].type);
    if (i == indexed_index_) os << "*";
  }
  os << ")";
  return os.str();
}

}  // namespace record
}  // namespace fresque
