#ifndef FRESQUE_RECORD_SECURE_CODEC_H_
#define FRESQUE_RECORD_SECURE_CODEC_H_

#include <memory>

#include "common/bytes.h"
#include "common/hot.h"
#include "common/result.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"
#include "record/record.h"

namespace fresque {
namespace record {

/// Produces and opens e-records: AES-CBC ciphertexts of
///   u8 kind || body
/// where kind 0 marks a real record (body = RecordCodec bytes) and kind 1
/// marks a dummy (body = random padding). The kind byte is *inside* the
/// ciphertext: the cloud cannot tell dummies from real records
/// (semantic security), while the trusted client discards them after
/// decryption.
class SecureRecordCodec {
 public:
  static constexpr uint8_t kKindReal = 0;
  static constexpr uint8_t kKindDummy = 1;

  /// `key` is an AES key (16/24/32 bytes); `schema` must outlive the
  /// codec; `rng` supplies IVs and dummy padding.
  static Result<SecureRecordCodec> Create(const Bytes& key,
                                          const Schema* schema,
                                          crypto::SecureRandom* rng);

  /// Encrypts a real record.
  Result<Bytes> EncryptRecord(const Record& rec);

  /// Encrypts a record already serialized with RecordCodec (the form a
  /// parsed record travels in between collector components).
  Result<Bytes> EncryptSerializedRecord(const Bytes& body);

  /// Encrypts a dummy of `padding_len` random bytes. Choosing padding_len
  /// near the typical record size keeps dummy ciphertext lengths in the
  /// same distribution as real ones.
  Result<Bytes> EncryptDummy(size_t padding_len);

  /// Stages many records and encrypts them in one AES batch call, letting
  /// hardware backends interleave the CBC chains across the instruction
  /// pipeline. All plaintexts accumulate in one reusable arena, so the
  /// steady-state stage/flush cycle performs zero heap allocations (the
  /// arena, item lists and every `out` buffer retain their capacity).
  ///
  /// Usage: Stage* each record with the Bytes* that should receive its
  /// ciphertext, then Flush() once per batch. The out pointers must stay
  /// valid until Flush returns; a failed Flush leaves the out buffers
  /// unspecified and clears the batch.
  class BatchEncryptor {
   public:
    explicit BatchEncryptor(SecureRecordCodec* codec) : codec_(codec) {}

    /// Serializes and stages a real record. Serialization errors surface
    /// here (the record is not staged); crypto errors surface at Flush.
    FRESQUE_HOT Status StageRecord(const Record& rec, Bytes* out);

    /// Stages an already-serialized real record body.
    FRESQUE_HOT void StageSerializedRecord(const Bytes& body, Bytes* out);

    /// Stages a dummy of `padding_len` random bytes.
    FRESQUE_HOT void StageDummy(size_t padding_len, Bytes* out);

    /// Records currently staged and not yet flushed.
    size_t staged() const { return outs_.size(); }

    /// Encrypts everything staged (no-op when empty) and resets.
    FRESQUE_HOT Status Flush();

   private:
    SecureRecordCodec* codec_;
    Bytes arena_;                  ///< kind||body plaintexts, back to back
    std::vector<size_t> offsets_;  ///< start of each plaintext in arena_
    std::vector<Bytes*> outs_;
    std::vector<crypto::CbcBatchItem> items_;
    crypto::CbcBatchScratch scratch_;
  };

  /// Decryption outcome: a real record or a recognized dummy.
  struct Opened {
    bool is_dummy = false;
    Record rec;
  };

  /// Decrypts and classifies an e-record.
  Result<Opened> Decrypt(const Bytes& e_record) const;

  const Schema& schema() const { return codec_.schema(); }

  /// AES backend the codec's cipher dispatches to.
  const char* crypto_backend_name() const { return cbc_.backend_name(); }

 private:
  SecureRecordCodec(crypto::AesCbc cbc, const Schema* schema,
                    crypto::SecureRandom* rng)
      : cbc_(std::move(cbc)), codec_(schema), rng_(rng) {}

  crypto::AesCbc cbc_;
  RecordCodec codec_;
  crypto::SecureRandom* rng_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_SECURE_CODEC_H_
