#ifndef FRESQUE_RECORD_SECURE_CODEC_H_
#define FRESQUE_RECORD_SECURE_CODEC_H_

#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/cbc.h"
#include "crypto/chacha20.h"
#include "record/record.h"

namespace fresque {
namespace record {

/// Produces and opens e-records: AES-CBC ciphertexts of
///   u8 kind || body
/// where kind 0 marks a real record (body = RecordCodec bytes) and kind 1
/// marks a dummy (body = random padding). The kind byte is *inside* the
/// ciphertext: the cloud cannot tell dummies from real records
/// (semantic security), while the trusted client discards them after
/// decryption.
class SecureRecordCodec {
 public:
  static constexpr uint8_t kKindReal = 0;
  static constexpr uint8_t kKindDummy = 1;

  /// `key` is an AES key (16/24/32 bytes); `schema` must outlive the
  /// codec; `rng` supplies IVs and dummy padding.
  static Result<SecureRecordCodec> Create(const Bytes& key,
                                          const Schema* schema,
                                          crypto::SecureRandom* rng);

  /// Encrypts a real record.
  Result<Bytes> EncryptRecord(const Record& rec);

  /// Encrypts a record already serialized with RecordCodec (the form a
  /// parsed record travels in between collector components).
  Result<Bytes> EncryptSerializedRecord(const Bytes& body);

  /// Encrypts a dummy of `padding_len` random bytes. Choosing padding_len
  /// near the typical record size keeps dummy ciphertext lengths in the
  /// same distribution as real ones.
  Result<Bytes> EncryptDummy(size_t padding_len);

  /// Decryption outcome: a real record or a recognized dummy.
  struct Opened {
    bool is_dummy = false;
    Record rec;
  };

  /// Decrypts and classifies an e-record.
  Result<Opened> Decrypt(const Bytes& e_record) const;

  const Schema& schema() const { return codec_.schema(); }

 private:
  SecureRecordCodec(crypto::AesCbc cbc, const Schema* schema,
                    crypto::SecureRandom* rng)
      : cbc_(std::move(cbc)), codec_(schema), rng_(rng) {}

  crypto::AesCbc cbc_;
  RecordCodec codec_;
  crypto::SecureRandom* rng_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_SECURE_CODEC_H_
