#include "record/parser.h"

#include <charconv>
#include <cstring>

namespace fresque {
namespace record {

namespace {

Status ParseError(const char* what, std::string_view line) {
  std::string msg = "parse error (";
  msg += what;
  msg += "): ";
  msg += std::string(line.substr(0, 80));
  return Status::InvalidArgument(std::move(msg));
}

Result<int64_t> ParseInt(std::string_view s) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: " + std::string(s));
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  double v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not a double: " + std::string(s));
  }
  return v;
}

// Month abbreviation -> 0-based month, or -1.
int MonthIndex(std::string_view mon) {
  static constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr",
                                            "May", "Jun", "Jul", "Aug",
                                            "Sep", "Oct", "Nov", "Dec"};
  for (int i = 0; i < 12; ++i) {
    if (mon == kMonths[i]) return i;
  }
  return -1;
}

}  // namespace

Result<std::unique_ptr<ApacheLogParser>> ApacheLogParser::Create() {
  auto schema = Schema::Create(
      {
          {"host", ValueType::kString},
          {"timestamp", ValueType::kInt64},
          {"request", ValueType::kString},
          {"status", ValueType::kInt64},
          {"bytes", ValueType::kInt64},
      },
      "bytes");
  if (!schema.ok()) return schema.status();
  return std::unique_ptr<ApacheLogParser>(
      new ApacheLogParser(std::move(schema).ValueOrDie()));
}

Result<Record> ApacheLogParser::Parse(std::string_view line) const {
  Record rec;
  Status st = ParseInto(line, &rec);
  if (!st.ok()) return st;
  return rec;
}

Status ApacheLogParser::ParseInto(std::string_view line, Record* out) const {
  // host - - [dd/Mon/yyyy:HH:MM:SS -0400] "request" status bytes
  size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return ParseError("host", line);
  std::string_view host = line.substr(0, sp);

  size_t lb = line.find('[', sp);
  size_t rb = (lb == std::string_view::npos) ? std::string_view::npos
                                             : line.find(']', lb);
  if (rb == std::string_view::npos) return ParseError("timestamp", line);
  std::string_view ts = line.substr(lb + 1, rb - lb - 1);

  // dd/Mon/yyyy:HH:MM:SS <tz>
  if (ts.size() < 20) return ParseError("timestamp shape", line);
  auto day = ParseInt(ts.substr(0, 2));
  int mon = MonthIndex(ts.substr(3, 3));
  auto year = ParseInt(ts.substr(7, 4));
  auto hh = ParseInt(ts.substr(12, 2));
  auto mm = ParseInt(ts.substr(15, 2));
  auto ss = ParseInt(ts.substr(18, 2));
  if (!day.ok() || mon < 0 || !year.ok() || !hh.ok() || !mm.ok() ||
      !ss.ok()) {
    return ParseError("timestamp fields", line);
  }
  // Days-since-epoch approximation (months as 31-day; adequate for an
  // ingestion timestamp attribute that is never the indexed one).
  int64_t days = (*year - 1970) * 372 + mon * 31 + (*day - 1);
  int64_t epoch = ((days * 24 + *hh) * 60 + *mm) * 60 + *ss;

  size_t q1 = line.find('"', rb);
  size_t q2 = (q1 == std::string_view::npos) ? std::string_view::npos
                                             : line.find('"', q1 + 1);
  if (q2 == std::string_view::npos) return ParseError("request", line);
  std::string_view request = line.substr(q1 + 1, q2 - q1 - 1);

  std::string_view tail = line.substr(q2 + 1);
  while (!tail.empty() && tail.front() == ' ') tail.remove_prefix(1);
  size_t sp2 = tail.find(' ');
  if (sp2 == std::string_view::npos) return ParseError("status", line);
  auto status = ParseInt(tail.substr(0, sp2));
  std::string_view bytes_sv = tail.substr(sp2 + 1);
  while (!bytes_sv.empty() && bytes_sv.back() == ' ') bytes_sv.remove_suffix(1);
  // "-" means no reply body in CLF.
  int64_t bytes_val = 0;
  if (bytes_sv != "-") {
    auto b = ParseInt(bytes_sv);
    if (!b.ok()) return ParseError("bytes", line);
    bytes_val = *b;
  }
  if (!status.ok()) return ParseError("status value", line);

  // Overwrite in place: SetString reuses the previous call's string
  // capacity, so a recycled Record parses without allocating.
  auto& values = out->values();
  values.resize(5);
  values[0].SetString(host);
  values[1].SetInt64(epoch);
  values[2].SetString(request);
  values[3].SetInt64(*status);
  values[4].SetInt64(bytes_val);
  return Status::OK();
}

Result<double> ApacheLogParser::IndexedValue(std::string_view line) const {
  // bytes is the last space-delimited token; "-" (no reply body) is 0.
  while (!line.empty() && line.back() == ' ') line.remove_suffix(1);
  size_t sp = line.rfind(' ');
  if (sp == std::string_view::npos || sp + 1 >= line.size()) {
    return ParseError("bytes token", line);
  }
  std::string_view tok = line.substr(sp + 1);
  if (tok == "-") return 0.0;
  auto v = ParseInt(tok);
  if (!v.ok()) return ParseError("bytes token", line);
  return static_cast<double>(*v);
}

Result<Record> CsvParser::Parse(std::string_view line) const {
  Record rec;
  Status st = ParseInto(line, &rec);
  if (!st.ok()) return st;
  return rec;
}

Status CsvParser::ParseInto(std::string_view line, Record* out) const {
  auto& values = out->values();
  values.resize(schema_.num_fields());
  size_t start = 0;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    size_t comma = line.find(',', start);
    bool last = (i + 1 == schema_.num_fields());
    if (last && comma != std::string_view::npos) {
      return ParseError("too many cells", line);
    }
    if (!last && comma == std::string_view::npos) {
      return ParseError("too few cells", line);
    }
    std::string_view cell = last ? line.substr(start)
                                 : line.substr(start, comma - start);
    switch (schema_.field(i).type) {
      case ValueType::kInt64: {
        auto v = ParseInt(cell);
        if (!v.ok()) return v.status();
        values[i].SetInt64(*v);
        break;
      }
      case ValueType::kDouble: {
        auto v = ParseDouble(cell);
        if (!v.ok()) return v.status();
        values[i].SetDouble(*v);
        break;
      }
      case ValueType::kString:
        values[i].SetString(cell);
        break;
    }
    start = comma + 1;
  }
  return Status::OK();
}

Result<double> CsvParser::IndexedValue(std::string_view line) const {
  const size_t target = schema_.indexed_field_index();
  size_t start = 0;
  for (size_t i = 0; i < target; ++i) {
    size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      return ParseError("too few cells", line);
    }
    start = comma + 1;
  }
  size_t comma = line.find(',', start);
  std::string_view cell = (comma == std::string_view::npos)
                              ? line.substr(start)
                              : line.substr(start, comma - start);
  switch (schema_.field(target).type) {
    case ValueType::kInt64: {
      auto v = ParseInt(cell);
      if (!v.ok()) return v.status();
      return static_cast<double>(*v);
    }
    case ValueType::kDouble:
      return ParseDouble(cell);
    case ValueType::kString:
      break;
  }
  return ParseError("indexed cell type", line);
}

}  // namespace record
}  // namespace fresque
