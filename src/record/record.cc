#include "record/record.h"

#include <sstream>

namespace fresque {
namespace record {

Result<double> Record::IndexedValue(const Schema& schema) const {
  size_t idx = schema.indexed_field_index();
  if (idx >= values_.size()) {
    return Status::InvalidArgument("record shorter than schema");
  }
  return values_[idx].AsNumeric();
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

Result<Bytes> RecordCodec::Serialize(const Record& rec) const {
  if (rec.num_values() != schema_->num_fields()) {
    return Status::InvalidArgument(
        "record arity does not match schema: " +
        std::to_string(rec.num_values()) + " vs " +
        std::to_string(schema_->num_fields()));
  }
  BinaryWriter w;
  for (size_t i = 0; i < rec.num_values(); ++i) {
    const Value& v = rec.value(i);
    if (v.type() != schema_->field(i).type) {
      return Status::InvalidArgument("value type mismatch at field " +
                                     schema_->field(i).name);
    }
    switch (v.type()) {
      case ValueType::kInt64:
        w.PutI64(v.AsInt64());
        break;
      case ValueType::kDouble:
        w.PutF64(v.AsDouble());
        break;
      case ValueType::kString:
        w.PutString(v.AsString());
        break;
    }
  }
  return w.Release();
}

Result<Record> RecordCodec::Deserialize(const Bytes& data) const {
  BinaryReader r(data);
  std::vector<Value> values;
  values.reserve(schema_->num_fields());
  for (size_t i = 0; i < schema_->num_fields(); ++i) {
    switch (schema_->field(i).type) {
      case ValueType::kInt64: {
        auto v = r.GetI64();
        if (!v.ok()) return v.status();
        values.emplace_back(*v);
        break;
      }
      case ValueType::kDouble: {
        auto v = r.GetF64();
        if (!v.ok()) return v.status();
        values.emplace_back(*v);
        break;
      }
      case ValueType::kString: {
        auto v = r.GetString();
        if (!v.ok()) return v.status();
        values.emplace_back(std::move(*v));
        break;
      }
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after record payload");
  }
  return Record(std::move(values));
}

}  // namespace record
}  // namespace fresque
