#include "record/record.h"

#include <cstring>
#include <sstream>

namespace fresque {
namespace record {

Result<double> Record::IndexedValue(const Schema& schema) const {
  size_t idx = schema.indexed_field_index();
  if (idx >= values_.size()) {
    return Status::InvalidArgument("record shorter than schema");
  }
  return values_[idx].AsNumeric();
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

namespace {

// Little-endian appends matching BinaryWriter's wire format, writing
// straight into a caller-owned buffer so the hot path can reuse capacity.
inline void AppendU64Le(uint64_t v, Bytes* out) {
  for (size_t i = 0; i < sizeof(v); ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void AppendU32Le(uint32_t v, Bytes* out) {
  for (size_t i = 0; i < sizeof(v); ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

Result<Bytes> RecordCodec::Serialize(const Record& rec) const {
  Bytes out;
  Status st = SerializeAppend(rec, &out);
  if (!st.ok()) return st;
  return out;
}

Status RecordCodec::SerializeAppend(const Record& rec, Bytes* out) const {
  if (rec.num_values() != schema_->num_fields()) {
    return Status::InvalidArgument(
        "record arity does not match schema: " +
        std::to_string(rec.num_values()) + " vs " +
        std::to_string(schema_->num_fields()));
  }
  const size_t rollback = out->size();
  for (size_t i = 0; i < rec.num_values(); ++i) {
    const Value& v = rec.value(i);
    if (v.type() != schema_->field(i).type) {
      out->resize(rollback);
      return Status::InvalidArgument("value type mismatch at field " +
                                     schema_->field(i).name);
    }
    switch (v.type()) {
      case ValueType::kInt64:
        AppendU64Le(static_cast<uint64_t>(v.AsInt64()), out);
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        AppendU64Le(bits, out);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        AppendU32Le(static_cast<uint32_t>(s.size()), out);
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
  return Status::OK();
}

Result<Record> RecordCodec::Deserialize(const Bytes& data) const {
  BinaryReader r(data);
  std::vector<Value> values;
  values.reserve(schema_->num_fields());
  for (size_t i = 0; i < schema_->num_fields(); ++i) {
    switch (schema_->field(i).type) {
      case ValueType::kInt64: {
        auto v = r.GetI64();
        if (!v.ok()) return v.status();
        values.emplace_back(*v);
        break;
      }
      case ValueType::kDouble: {
        auto v = r.GetF64();
        if (!v.ok()) return v.status();
        values.emplace_back(*v);
        break;
      }
      case ValueType::kString: {
        auto v = r.GetString();
        if (!v.ok()) return v.status();
        values.emplace_back(std::move(*v));
        break;
      }
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after record payload");
  }
  return Record(std::move(values));
}

}  // namespace record
}  // namespace fresque
