#ifndef FRESQUE_RECORD_PARSER_H_
#define FRESQUE_RECORD_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "record/record.h"
#include "record/schema.h"

namespace fresque {
namespace record {

/// Turns one raw text line from a data source into a typed Record.
///
/// Parsing is deliberately part of the ingestion hot path: the paper
/// measures that this step alone halves collector throughput on NASA, and
/// FRESQUE's key move is pushing it onto the computing nodes.
class LineParser {
 public:
  virtual ~LineParser() = default;

  virtual Result<Record> Parse(std::string_view line) const = 0;

  /// Schema of the records this parser produces.
  virtual const Schema& schema() const = 0;
};

/// Apache Common Log Format parser for the NASA-like workload:
///   host - - [dd/Mon/yyyy:HH:MM:SS -0400] "METHOD /path HTTP/1.0" status bytes
/// Produces (host:string, timestamp:int64, request:string, status:int64,
/// bytes:int64); `bytes` is the indexed reply-size attribute.
class ApacheLogParser : public LineParser {
 public:
  static Result<std::unique_ptr<ApacheLogParser>> Create();

  Result<Record> Parse(std::string_view line) const override;
  const Schema& schema() const override { return schema_; }

 private:
  explicit ApacheLogParser(Schema schema) : schema_(std::move(schema)) {}

  Schema schema_;
};

/// Comma-separated parser driven by an arbitrary schema; used for the
/// Gowalla-like check-in workload (user:int64, checkin_time:int64,
/// location:int64 with checkin_time indexed).
class CsvParser : public LineParser {
 public:
  /// `schema` is copied; fields parse positionally from comma-split cells.
  explicit CsvParser(Schema schema) : schema_(std::move(schema)) {}

  Result<Record> Parse(std::string_view line) const override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_PARSER_H_
