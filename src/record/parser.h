#ifndef FRESQUE_RECORD_PARSER_H_
#define FRESQUE_RECORD_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "record/record.h"
#include "record/schema.h"

namespace fresque {
namespace record {

/// Turns one raw text line from a data source into a typed Record.
///
/// Parsing is deliberately part of the ingestion hot path: the paper
/// measures that this step alone halves collector throughput on NASA, and
/// FRESQUE's key move is pushing it onto the computing nodes.
class LineParser {
 public:
  virtual ~LineParser() = default;

  virtual Result<Record> Parse(std::string_view line) const = 0;

  /// Parses into an existing Record, reusing its values' storage: string
  /// fields keep their capacity across calls, so a per-thread scratch
  /// Record makes steady-state parsing allocation-free. On error `*out`
  /// may hold a partial mix of old and new values — treat it as garbage
  /// until the next successful call. The default forwards to Parse;
  /// concrete parsers on the ingest hot path override it.
  virtual Status ParseInto(std::string_view line, Record* out) const {
    auto rec = Parse(line);
    if (!rec.ok()) return rec.status();
    *out = std::move(*rec);
    return Status::OK();
  }

  /// Extracts only the indexed attribute Aq from a raw line, without
  /// materializing a Record. The shard router calls this on its ingress
  /// path to place a line before any shard's computing nodes parse it, so
  /// overrides must stay far cheaper than ParseInto (a substring scan, not
  /// a full parse). The default does a full Parse and reads the indexed
  /// field; a fast override may accept lines the full parser would later
  /// reject — routing only needs a best-effort value, the owning shard's
  /// pipeline still applies the authoritative parse.
  virtual Result<double> IndexedValue(std::string_view line) const {
    auto rec = Parse(line);
    if (!rec.ok()) return rec.status();
    return rec->IndexedValue(schema());
  }

  /// Schema of the records this parser produces.
  virtual const Schema& schema() const = 0;
};

/// Apache Common Log Format parser for the NASA-like workload:
///   host - - [dd/Mon/yyyy:HH:MM:SS -0400] "METHOD /path HTTP/1.0" status bytes
/// Produces (host:string, timestamp:int64, request:string, status:int64,
/// bytes:int64); `bytes` is the indexed reply-size attribute.
class ApacheLogParser : public LineParser {
 public:
  static Result<std::unique_ptr<ApacheLogParser>> Create();

  Result<Record> Parse(std::string_view line) const override;
  Status ParseInto(std::string_view line, Record* out) const override;
  /// Fast path: the indexed `bytes` attribute is the final space-delimited
  /// token, so routing never touches the rest of the line.
  Result<double> IndexedValue(std::string_view line) const override;
  const Schema& schema() const override { return schema_; }

 private:
  explicit ApacheLogParser(Schema schema) : schema_(std::move(schema)) {}

  Schema schema_;
};

/// Comma-separated parser driven by an arbitrary schema; used for the
/// Gowalla-like check-in workload (user:int64, checkin_time:int64,
/// location:int64 with checkin_time indexed).
class CsvParser : public LineParser {
 public:
  /// `schema` is copied; fields parse positionally from comma-split cells.
  explicit CsvParser(Schema schema) : schema_(std::move(schema)) {}

  Result<Record> Parse(std::string_view line) const override;
  Status ParseInto(std::string_view line, Record* out) const override;
  /// Fast path: scans commas up to the indexed column only.
  Result<double> IndexedValue(std::string_view line) const override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_PARSER_H_
