#ifndef FRESQUE_RECORD_SCHEMA_H_
#define FRESQUE_RECORD_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "record/value.h"

namespace fresque {
namespace record {

/// One attribute of a relation D(A1, ..., An).
struct Field {
  std::string name;
  ValueType type;
};

/// Relation schema: ordered attributes plus the designation of the one
/// numeric attribute Aq that range queries index.
class Schema {
 public:
  /// `indexed_field` must name a numeric (int64/double) field in `fields`.
  static Result<Schema> Create(std::vector<Field> fields,
                               const std::string& indexed_field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the attribute range queries evaluate over.
  size_t indexed_field_index() const { return indexed_index_; }
  const Field& indexed_field() const { return fields_[indexed_index_]; }

  /// Index of the named field, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  Schema(std::vector<Field> fields, size_t indexed_index)
      : fields_(std::move(fields)), indexed_index_(indexed_index) {}

  std::vector<Field> fields_;
  size_t indexed_index_;
};

}  // namespace record
}  // namespace fresque

#endif  // FRESQUE_RECORD_SCHEMA_H_
