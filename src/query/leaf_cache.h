#ifndef FRESQUE_QUERY_LEAF_CACHE_H_
#define FRESQUE_QUERY_LEAF_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fresque {
namespace query {

/// What a scan needs to know about one index leaf before touching any
/// record bytes: its value interval, its noisy count, and how much real
/// work (postings, used overflow slots) the leaf holds. Building one
/// walks the publication's index and posting directory; serving one from
/// cache is a hash probe.
struct LeafDescriptor {
  double lo = 0;
  double hi = 0;
  int64_t noisy_count = 0;
  uint32_t postings = 0;        ///< records reachable through the leaf
  uint32_t overflow_used = 0;   ///< non-empty overflow slots
};

/// Bounded LRU cache of leaf descriptors keyed by (publication, leaf).
///
/// Range queries are Zipf-skewed in practice — the same hot leaves are
/// traversed by most queries — so the descriptors that size result
/// buffers and prune empty leaves are worth keeping hot. The cache is a
/// single mutex-protected LRU: it sits on the per-*leaf* path (a few
/// entries per query), not the per-record path, so a probe's critical
/// section is a hash lookup and a list splice. Hits, misses, and
/// evictions are counted here and exported as `query.leaf_cache.*` by
/// the executor layer.
class LeafCache {
 public:
  explicit LeafCache(size_t capacity = 4096);

  /// Returns the descriptor for (pn, leaf), invoking `build` and caching
  /// its result on miss. `build` runs outside the cache lock.
  LeafDescriptor GetOrBuild(uint64_t pn, uint32_t leaf,
                            const std::function<LeafDescriptor()>& build)
      FRESQUE_EXCLUDES(mu_);

  /// Drops every cached descriptor of publication `pn` (used when a
  /// publication is retired from the view).
  void Invalidate(uint64_t pn) FRESQUE_EXCLUDES(mu_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;

    double HitRatio() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const FRESQUE_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }

 private:
  using Key = std::pair<uint64_t, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.first * 0x9e3779b97f4a7c15ULL + k.second;
      h ^= h >> 29;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    LeafDescriptor descriptor;
    std::list<Key>::iterator lru_pos;
  };

  size_t capacity_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_ FRESQUE_GUARDED_BY(mu_);
  std::list<Key> lru_ FRESQUE_GUARDED_BY(mu_);  ///< front = most recent
  uint64_t hits_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t misses_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ FRESQUE_GUARDED_BY(mu_) = 0;
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_LEAF_CACHE_H_
