#include "query/scan.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace fresque {
namespace query {

LeafDescriptor BuildLeafDescriptor(const InstalledPublication& pub,
                                   uint32_t leaf) {
  LeafDescriptor d;
  const index::DomainBinning& binning = pub.index.binning();
  d.lo = binning.LeafLow(leaf);
  d.hi = binning.LeafHigh(leaf);
  d.noisy_count = pub.index.leaf_count(leaf);
  if (leaf < pub.postings.size()) {
    d.postings = static_cast<uint32_t>(pub.postings[leaf].size());
  }
  if (leaf < pub.overflow.num_leaves()) {
    uint32_t used = 0;
    for (const auto& slot : pub.overflow.leaf(leaf)) {
      if (!slot.empty()) ++used;
    }
    d.overflow_used = used;
  }
  return d;
}

Status ScanPublication(const InstalledPublication& pub,
                       const index::RangeQuery& q, const QueryContext& ctx,
                       LeafCache* cache, QueryResult* out) {
  std::vector<size_t> leaves = pub.index.Traverse(q);
  if (leaves.empty()) return Status::OK();

  // Descriptor pass: size the result append once and drop leaves with no
  // reachable records before the record walk.
  size_t expect_postings = 0;
  size_t expect_overflow = 0;
  std::vector<size_t> live;
  live.reserve(leaves.size());
  for (size_t leaf : leaves) {
    LeafDescriptor d;
    uint32_t leaf32 = static_cast<uint32_t>(leaf);
    if (cache != nullptr) {
      d = cache->GetOrBuild(pub.pn, leaf32,
                            [&] { return BuildLeafDescriptor(pub, leaf32); });
    } else {
      d = BuildLeafDescriptor(pub, leaf32);
    }
    if (d.postings == 0 && d.overflow_used == 0) continue;
    expect_postings += d.postings;
    expect_overflow += d.overflow_used;
    live.push_back(leaf);
  }
  out->indexed_records.reserve(out->indexed_records.size() + expect_postings);
  out->overflow_records.reserve(out->overflow_records.size() +
                                expect_overflow);

  for (size_t leaf : live) {
    if (leaf < pub.postings.size()) {
      const auto& posting = pub.postings[leaf];
      for (size_t i = 0; i < posting.size(); i += kScanBatch) {
        FRESQUE_RETURN_NOT_OK(ctx.Check());
        size_t n = std::min(kScanBatch, posting.size() - i);
        FRESQUE_COUNTER_ADD("query.scan.records", n);
        FRESQUE_RETURN_NOT_OK(pub.storage.VisitAddresses(
            posting.data() + i, n,
            [&](const cloud::PhysicalAddress& addr, const uint8_t* data,
                size_t size) {
              (void)addr;
              out->indexed_records.push_back(
                  {pub.pn, Bytes(data, data + size)});
            }));
      }
    }
    if (leaf < pub.overflow.num_leaves()) {
      FRESQUE_RETURN_NOT_OK(ctx.Check());
      for (const auto& slot : pub.overflow.leaf(leaf)) {
        if (!slot.empty()) out->overflow_records.push_back({pub.pn, slot});
      }
    }
  }
  return Status::OK();
}

Status ScanView(const QueryView& view, const index::RangeQuery& q,
                const QueryContext& ctx, LeafCache* cache, QueryResult* out) {
  for (const auto& pub : view.publications()) {
    FRESQUE_RETURN_NOT_OK(ctx.Check());
    FRESQUE_RETURN_NOT_OK(ScanPublication(*pub, q, ctx, cache, out));
  }
  return Status::OK();
}

}  // namespace query
}  // namespace fresque
