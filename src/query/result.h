#ifndef FRESQUE_QUERY_RESULT_H_
#define FRESQUE_QUERY_RESULT_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace fresque {
namespace query {

/// One ciphertext in a query result, tagged with the publication it
/// belongs to so the client can derive the right decryption key.
struct ResultRecord {
  uint64_t pn = 0;
  Bytes e_record;
};

/// Everything a range query returns from the cloud: ciphertexts only.
///
/// Lives in query/ (not cloud/) so the scan and executor layers can fill
/// and transport results without depending on the CloudServer headers;
/// cloud::QueryResult is an alias of this type.
struct QueryResult {
  /// Records reachable through published secure indexes.
  std::vector<ResultRecord> indexed_records;
  /// Overflow-array slots of the leaves the query touched.
  std::vector<ResultRecord> overflow_records;
  /// Records of still-open publications whose leaf interval overlaps the
  /// query (the paper's "unindexed data, processed one by one").
  std::vector<ResultRecord> unindexed_records;

  size_t TotalRecords() const {
    return indexed_records.size() + overflow_records.size() +
           unindexed_records.size();
  }
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_RESULT_H_
