#include "query/leaf_cache.h"

#include "telemetry/telemetry.h"

namespace fresque {
namespace query {

LeafCache::LeafCache(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

LeafDescriptor LeafCache::GetOrBuild(
    uint64_t pn, uint32_t leaf, const std::function<LeafDescriptor()>& build) {
  Key key{pn, leaf};
  {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      FRESQUE_COUNTER_ADD("query.leaf_cache.hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.descriptor;
    }
    ++misses_;
    FRESQUE_COUNTER_ADD("query.leaf_cache.misses", 1);
  }

  // Build outside the lock: descriptors are deterministic functions of
  // immutable publication state, so two racing builders agree and the
  // second insert is a harmless overwrite.
  LeafDescriptor d = build();

  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.descriptor = d;
    return d;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    FRESQUE_COUNTER_ADD("query.leaf_cache.evictions", 1);
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{d, lru_.begin()});
  return d;
}

void LeafCache::Invalidate(uint64_t pn) {
  MutexLock lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.first == pn) {
      lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

LeafCache::Stats LeafCache::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace query
}  // namespace fresque
