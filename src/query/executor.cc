#include "query/executor.h"

#include "telemetry/telemetry.h"

namespace fresque {
namespace query {

Result<QueryResult> QueryTicket::Wait() {
  MutexLock lock(mu_);
  while (!result_.has_value()) cv_.Wait(mu_);
  return *result_;
}

bool QueryTicket::done() const {
  MutexLock lock(mu_);
  return result_.has_value();
}

void QueryTicket::Resolve(Result<QueryResult> r) {
  {
    MutexLock lock(mu_);
    if (result_.has_value()) return;  // first resolution wins
    result_.emplace(std::move(r));
  }
  cv_.NotifyAll();
}

QueryExecutor::QueryExecutor(Handler handler, ExecutorOptions options)
    : handler_(std::move(handler)),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_threads == 0) options_.num_threads = 1;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(); }

Result<std::shared_ptr<QueryTicket>> QueryExecutor::Submit(
    const index::RangeQuery& q, QueryOptions options) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("query executor is shut down");
  }
  int64_t now = SystemClock::Global()->NowNanos();
  std::chrono::nanoseconds rel =
      options.deadline.count() > 0 ? options.deadline
                                   : options_.default_deadline;
  int64_t deadline_ns = rel.count() > 0 ? now + rel.count() : 0;
  // shared_ptr: the submitter and a worker both outlive-race the ticket.
  auto ticket = std::shared_ptr<QueryTicket>(
      new QueryTicket(q, deadline_ns, now));
  if (!queue_.TryPush(ticket)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    FRESQUE_COUNTER_ADD("query.shed", 1);
    return Status::Overloaded("query admission: queue full (depth " +
                              std::to_string(options_.queue_capacity) + ")");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  FRESQUE_COUNTER_ADD("query.submitted", 1);
  return ticket;
}

Result<QueryResult> QueryExecutor::Execute(const index::RangeQuery& q,
                                           QueryOptions options) {
  auto ticket = Submit(q, options);
  if (!ticket.ok()) return ticket.status();
  return (*ticket)->Wait();
}

void QueryExecutor::Finish(const std::shared_ptr<QueryTicket>& ticket,
                           Result<QueryResult> r) {
  if (r.ok()) {
    executed_.fetch_add(1, std::memory_order_relaxed);
    FRESQUE_COUNTER_ADD("query.executed", 1);
    FRESQUE_HISTOGRAM_RECORD(
        "query.e2e_ns", SystemClock::Global()->NowNanos() - ticket->submit_ns_);
  } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    FRESQUE_COUNTER_ADD("query.deadline_exceeded", 1);
  } else if (r.status().code() == StatusCode::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    FRESQUE_COUNTER_ADD("query.cancelled", 1);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    FRESQUE_COUNTER_ADD("query.failed", 1);
  }
  ticket->Resolve(std::move(r));
}

void QueryExecutor::WorkerLoop() {
  while (auto item = queue_.Pop()) {
    std::shared_ptr<QueryTicket> ticket = std::move(*item);
    if (stopping_.load(std::memory_order_acquire)) {
      Finish(ticket, Status::Cancelled("executor shutting down"));
      continue;
    }
    if (ticket->cancel_.cancelled()) {
      Finish(ticket, Status::Cancelled("query cancelled before execution"));
      continue;
    }
    int64_t now = SystemClock::Global()->NowNanos();
    if (ticket->deadline_ns_ != 0 && now >= ticket->deadline_ns_) {
      // Expired in the queue: never pay for the scan.
      Finish(ticket,
             Status::DeadlineExceeded("query deadline expired in queue"));
      continue;
    }
    QueryContext ctx;
    ctx.deadline_ns = ticket->deadline_ns_;
    ctx.cancel = &ticket->cancel_;
    int64_t inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    FRESQUE_GAUGE_SET("query.inflight", inflight);
    Result<QueryResult> r = handler_(ticket->query_, ctx);
    inflight = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    FRESQUE_GAUGE_SET("query.inflight", inflight);
    Finish(ticket, std::move(r));
  }
}

void QueryExecutor::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Already shutting down; just make join idempotent.
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    return;
  }
  queue_.Close();  // workers drain the backlog as cancelled, then exit
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ExecutorMetrics QueryExecutor::metrics() const {
  ExecutorMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.executed = executed_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  m.inflight = inflight_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace query
}  // namespace fresque
