#ifndef FRESQUE_QUERY_EXECUTOR_H_
#define FRESQUE_QUERY_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "index/index.h"
#include "query/context.h"
#include "query/result.h"

namespace fresque {
namespace query {

/// Per-query knobs.
struct QueryOptions {
  /// Relative deadline; zero falls back to the executor default (which
  /// may itself be zero = unbounded).
  std::chrono::nanoseconds deadline{0};
};

/// Executor-wide configuration.
struct ExecutorOptions {
  size_t num_threads = 2;
  /// Admission bound: submissions beyond this many queued queries are
  /// shed with kOverloaded instead of building an unbounded backlog.
  size_t queue_capacity = 64;
  std::chrono::nanoseconds default_deadline{0};  ///< 0 = unbounded
};

/// Counters snapshot (relaxed reads; same convention as telemetry).
struct ExecutorMetrics {
  uint64_t submitted = 0;
  uint64_t executed = 0;           ///< completed OK
  uint64_t shed = 0;               ///< rejected at admission
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;             ///< handler returned a non-deadline error
  int64_t inflight = 0;            ///< currently executing
};

/// Handle to one submitted query: wait for the result, or cancel it.
/// Cancellation is cooperative — a queued query resolves without running,
/// a running one aborts at its next batch boundary.
class QueryTicket {
 public:
  /// Blocks until the query resolves. Idempotent.
  Result<QueryResult> Wait() FRESQUE_EXCLUDES(mu_);

  /// Requests cancellation. Safe from any thread, any time.
  void Cancel() { cancel_.Cancel(); }

  bool done() const FRESQUE_EXCLUDES(mu_);

 private:
  friend class QueryExecutor;
  QueryTicket(index::RangeQuery q, int64_t deadline_ns, int64_t submit_ns)
      : query_(q), deadline_ns_(deadline_ns), submit_ns_(submit_ns) {}

  void Resolve(Result<QueryResult> r) FRESQUE_EXCLUDES(mu_);

  const index::RangeQuery query_;
  const int64_t deadline_ns_;  ///< absolute; 0 = none
  const int64_t submit_ns_;
  CancelToken cancel_;
  mutable Mutex mu_;
  CondVar cv_;
  std::optional<Result<QueryResult>> result_ FRESQUE_GUARDED_BY(mu_);
};

/// Fixed-size worker pool serving range queries against a handler
/// (typically CloudServer::ExecuteQuery over the current QueryView).
///
/// Admission is by queue depth: when `queue_capacity` queries are already
/// waiting, Submit fails fast with kOverloaded — the same shed-don't-block
/// discipline the ingest path uses. Each query carries an absolute
/// deadline; a query that expires in the queue is never executed, and one
/// that expires mid-scan aborts at the next batch boundary. Metrics are
/// mirrored into the telemetry registry under `query.*`.
class QueryExecutor {
 public:
  using Handler = std::function<Result<QueryResult>(
      const index::RangeQuery&, const QueryContext&)>;

  /// Workers start immediately. `handler` must be thread-safe: it runs
  /// concurrently from `num_threads` workers.
  QueryExecutor(Handler handler, ExecutorOptions options = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues a query. Fails with kOverloaded when the queue is full and
  /// with kFailedPrecondition after Shutdown().
  Result<std::shared_ptr<QueryTicket>> Submit(const index::RangeQuery& q,
                                              QueryOptions options = {});

  /// Submit + Wait.
  Result<QueryResult> Execute(const index::RangeQuery& q,
                              QueryOptions options = {});

  /// Stops admission, resolves still-queued queries as cancelled, asks
  /// running queries to cancel, and joins the workers. Idempotent.
  void Shutdown();

  ExecutorMetrics metrics() const;
  size_t queue_depth() const { return queue_.size(); }
  const ExecutorOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  /// Resolves `ticket` and classifies the outcome into counters.
  void Finish(const std::shared_ptr<QueryTicket>& ticket,
              Result<QueryResult> r);

  Handler handler_;
  ExecutorOptions options_;
  BoundedQueue<std::shared_ptr<QueryTicket>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<int64_t> inflight_{0};
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_EXECUTOR_H_
