#ifndef FRESQUE_QUERY_TAG_FILTER_H_
#define FRESQUE_QUERY_TAG_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hot.h"
#include "index/matching.h"

namespace fresque {
namespace query {

/// Register-blocked Bloom filter over the random tags of one PINED-RQ++
/// matching table, built once at install time.
///
/// The per-record join the cloud performs at publication (Fig. 15) pays a
/// hash-table probe per stored record; under template loss or checker
/// failure some streamed tags have no table entry, and every one of those
/// still costs a full probe. The filter answers "definitely absent" from
/// one cache line: each key maps to a single 64-bit word and four bits
/// inside it, so a negative is one load + compare. False positives only
/// cost the probe that would have happened anyway; false negatives are
/// impossible, so the join result is unchanged.
class TagFilter {
 public:
  /// Empty filter: MayContain() returns true for everything (no-op), so
  /// FRESQUE-mode publications, which have no matching table, can carry a
  /// default-constructed filter.
  TagFilter() = default;

  /// Sizes the filter at ~`bits_per_key` bits per table entry (rounded up
  /// to a power-of-two word count) and inserts every tag.
  static TagFilter Build(const index::MatchingTable& table,
                         size_t bits_per_key = 12);

  /// False-negative-free membership probe.
  FRESQUE_HOT bool MayContain(uint64_t tag) const;

  bool empty() const { return words_.empty(); }
  size_t bits() const { return words_.size() * 64; }
  size_t keys() const { return keys_; }

 private:
  void Insert(uint64_t tag);

  std::vector<uint64_t> words_;
  uint64_t word_mask_ = 0;  ///< words_.size() - 1 (power of two)
  size_t keys_ = 0;
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_TAG_FILTER_H_
