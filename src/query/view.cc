#include "query/view.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace fresque {
namespace query {

std::shared_ptr<const InstalledPublication> QueryView::Find(
    uint64_t pn) const {
  auto it = std::lower_bound(
      pubs_.begin(), pubs_.end(), pn,
      [](const std::shared_ptr<const InstalledPublication>& p, uint64_t v) {
        return p->pn < v;
      });
  if (it == pubs_.end() || (*it)->pn != pn) return nullptr;
  return *it;
}

ViewManager::ViewManager() {
  MutexLock lock(mu_);
  current_ = std::make_shared<const QueryView>();
}

std::shared_ptr<const QueryView> ViewManager::Current() const {
  MutexLock lock(mu_);
  return current_;
}

void ViewManager::Publish(std::shared_ptr<QueryView> next) {
  next->epoch_ = next_epoch_++;
  FRESQUE_GAUGE_SET("query.view.epoch", next->epoch_);
  FRESQUE_GAUGE_SET("query.view.publications", next->pubs_.size());
  current_ = std::move(next);
}

uint64_t ViewManager::Install(std::shared_ptr<const InstalledPublication> pub) {
  MutexLock lock(mu_);
  // fresque-lint: allow(hot-alloc) copy-on-write view swap runs once per publication install
  auto next = std::make_shared<QueryView>();
  next->pubs_.reserve(current_->pubs_.size() + 1);
  bool placed = false;
  for (const auto& p : current_->pubs_) {
    if (!placed && pub->pn <= p->pn) {
      next->pubs_.push_back(pub);
      placed = true;
      if (p->pn == pub->pn) continue;  // replace
    }
    next->pubs_.push_back(p);
  }
  if (!placed) next->pubs_.push_back(std::move(pub));
  FRESQUE_COUNTER_ADD("query.view.installs", 1);
  Publish(next);
  return current_->epoch();
}

bool ViewManager::Retire(uint64_t pn) {
  MutexLock lock(mu_);
  if (!current_->Find(pn)) return false;
  auto next = std::make_shared<QueryView>();
  next->pubs_.reserve(current_->pubs_.size() - 1);
  for (const auto& p : current_->pubs_) {
    if (p->pn != pn) next->pubs_.push_back(p);
  }
  FRESQUE_COUNTER_ADD("query.view.retires", 1);
  Publish(next);
  return true;
}

uint64_t ViewManager::epoch() const {
  MutexLock lock(mu_);
  return current_->epoch();
}

}  // namespace query
}  // namespace fresque
