#ifndef FRESQUE_QUERY_SCAN_H_
#define FRESQUE_QUERY_SCAN_H_

#include "common/status.h"
#include "index/index.h"
#include "query/context.h"
#include "query/leaf_cache.h"
#include "query/result.h"
#include "query/view.h"

namespace fresque {
namespace query {

/// Number of postings materialized per deadline/cancellation check. One
/// batch bounds both the cancellation latency and the cost of an expired
/// query discovered mid-scan.
inline constexpr size_t kScanBatch = 256;

/// Scans one installed publication for `q`, appending ciphertexts to
/// `out`. The walk is batched: leaf postings are visited through the
/// storage's zero-copy batch path (`SegmentStorage::VisitAddresses`) in
/// kScanBatch chunks instead of one bounds-checked copying Read per
/// record, and `ctx` is consulted between chunks. `cache` (optional)
/// serves leaf descriptors — value bounds, posting and overflow counts —
/// so result vectors are sized once and empty leaves are skipped without
/// touching the posting directory.
Status ScanPublication(const InstalledPublication& pub,
                       const index::RangeQuery& q, const QueryContext& ctx,
                       LeafCache* cache, QueryResult* out);

/// Scans every publication of an immutable view. Runs with no server
/// lock held — the view pins all storage it touches.
Status ScanView(const QueryView& view, const index::RangeQuery& q,
                const QueryContext& ctx, LeafCache* cache, QueryResult* out);

/// Builds the descriptor for `leaf` of `pub` (also the LeafCache miss
/// path; exposed for tests).
LeafDescriptor BuildLeafDescriptor(const InstalledPublication& pub,
                                   uint32_t leaf);

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_SCAN_H_
