#include "query/tag_filter.h"

namespace fresque {
namespace query {

namespace {

/// splitmix64 finalizer: tags are drawn uniformly at random already, but
/// the mix keeps the filter safe against adversarial or structured tags.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Four probe bits derived from disjoint 6-bit slices of the mixed hash,
/// all inside one 64-bit word (one cache line touched per probe).
inline uint64_t ProbeMask(uint64_t h) {
  return (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63)) |
         (uint64_t{1} << ((h >> 12) & 63)) |
         (uint64_t{1} << ((h >> 18) & 63));
}

}  // namespace

TagFilter TagFilter::Build(const index::MatchingTable& table,
                           size_t bits_per_key) {
  TagFilter f;
  if (table.size() == 0) return f;
  size_t want_words = (table.size() * bits_per_key + 63) / 64;
  size_t words = 1;
  while (words < want_words) words <<= 1;
  f.words_.assign(words, 0);
  f.word_mask_ = words - 1;
  for (const auto& [tag, leaf] : table.entries()) {
    (void)leaf;
    f.Insert(tag);
  }
  return f;
}

void TagFilter::Insert(uint64_t tag) {
  uint64_t h = Mix(tag);
  words_[(h >> 24) & word_mask_] |= ProbeMask(h);
  ++keys_;
}

bool TagFilter::MayContain(uint64_t tag) const {
  if (words_.empty()) return true;  // no filter: never exclude
  uint64_t h = Mix(tag);
  uint64_t mask = ProbeMask(h);
  return (words_[(h >> 24) & word_mask_] & mask) == mask;
}

}  // namespace query
}  // namespace fresque
