#ifndef FRESQUE_QUERY_VIEW_H_
#define FRESQUE_QUERY_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/storage.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "index/index.h"
#include "index/overflow.h"
#include "query/tag_filter.h"

namespace fresque {
namespace query {

/// The immutable, fully-installed state of one publication: everything a
/// range query needs, frozen at install time. Construction happens once
/// inside CloudServer's install critical section; afterwards the object
/// is shared read-only between the server, every live QueryView, and any
/// in-flight scans — shared_ptr refcounts are its GC.
struct InstalledPublication {
  InstalledPublication(uint64_t pn_in, cloud::SegmentStorage storage_in,
                       index::HistogramIndex index_in,
                       index::OverflowArrays overflow_in,
                       std::vector<std::vector<cloud::PhysicalAddress>>
                           postings_in,
                       Bytes evidence_in, TagFilter tag_filter_in)
      : pn(pn_in),
        storage(std::move(storage_in)),
        index(std::move(index_in)),
        overflow(std::move(overflow_in)),
        postings(std::move(postings_in)),
        evidence(std::move(evidence_in)),
        tag_filter(std::move(tag_filter_in)) {}

  const uint64_t pn;
  const cloud::SegmentStorage storage;
  const index::HistogramIndex index;
  const index::OverflowArrays overflow;
  /// Per-leaf physical addresses into `storage`.
  const std::vector<std::vector<cloud::PhysicalAddress>> postings;
  /// Verbatim publication payload (integrity evidence).
  const Bytes evidence;
  /// Bloom filter over the matching-table tags (empty in FRESQUE mode).
  const TagFilter tag_filter;
};

/// An immutable snapshot of the installed publications, identified by a
/// monotonically increasing epoch. Queries pin one view for their whole
/// scan: publications installed after the pin are invisible, retired ones
/// stay readable until the last pinned view drops its reference. A view
/// never contains a half-installed publication by construction — entries
/// are added only from a completed install.
class QueryView {
 public:
  uint64_t epoch() const { return epoch_; }

  /// Sorted by publication number, ascending.
  const std::vector<std::shared_ptr<const InstalledPublication>>&
  publications() const {
    return pubs_;
  }

  /// Binary search by pn; null when absent.
  std::shared_ptr<const InstalledPublication> Find(uint64_t pn) const;

  size_t num_publications() const { return pubs_.size(); }

 private:
  friend class ViewManager;
  uint64_t epoch_ = 0;
  std::vector<std::shared_ptr<const InstalledPublication>> pubs_;
};

/// RCU-style publication handoff between the install path and readers.
///
/// Writers (install / retire) build a fresh QueryView — copy-on-write of
/// the publication pointer vector — and swap it in under a short mutex;
/// readers copy the current shared_ptr under the same mutex (pointer copy
/// only) and then scan with no lock held. Replaced views are garbage
/// collected by refcount as soon as the last reader unpins them; nothing
/// ever blocks on a long scan.
class ViewManager {
 public:
  ViewManager();

  /// The current snapshot. Never null (an empty view has epoch 0).
  std::shared_ptr<const QueryView> Current() const FRESQUE_EXCLUDES(mu_);

  /// Publishes a new view containing `pub` (replacing any previous entry
  /// with the same pn). Returns the new epoch.
  uint64_t Install(std::shared_ptr<const InstalledPublication> pub)
      FRESQUE_EXCLUDES(mu_);

  /// Publishes a new view without `pn`. Readers holding older views keep
  /// the publication alive until they finish. Returns true if it was
  /// present.
  bool Retire(uint64_t pn) FRESQUE_EXCLUDES(mu_);

  uint64_t epoch() const FRESQUE_EXCLUDES(mu_);

 private:
  void Publish(std::shared_ptr<QueryView> next) FRESQUE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::shared_ptr<const QueryView> current_ FRESQUE_GUARDED_BY(mu_);
  uint64_t next_epoch_ FRESQUE_GUARDED_BY(mu_) = 1;
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_VIEW_H_
