#ifndef FRESQUE_QUERY_CONTEXT_H_
#define FRESQUE_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/status.h"

namespace fresque {
namespace query {

/// Cooperative cancellation flag shared between a query's submitter and
/// the worker scanning on its behalf. Cancel() is sticky and lock-free;
/// the scan polls cancelled() once per batch, so cancellation latency is
/// one batch of work, never a full store scan.
class CancelToken {
 public:
  void Cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Per-query execution context threaded through the scan: an absolute
/// deadline (steady-clock nanoseconds, 0 = none) and an optional cancel
/// token. Scans call Check() between batches and abort with the matching
/// status, so a stuck or oversized query cannot pin a worker thread.
struct QueryContext {
  int64_t deadline_ns = 0;             ///< absolute, SystemClock epoch; 0 = none
  const CancelToken* cancel = nullptr; ///< not owned; may be null

  bool Expired(int64_t now_ns) const {
    return deadline_ns != 0 && now_ns >= deadline_ns;
  }

  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (Expired(SystemClock::Global()->NowNanos())) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace query
}  // namespace fresque

#endif  // FRESQUE_QUERY_CONTEXT_H_
