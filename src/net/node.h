#ifndef FRESQUE_NET_NODE_H_
#define FRESQUE_NET_NODE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/message.h"

namespace fresque {
namespace net {

/// One shared-nothing logical machine: a thread draining an inbox into a
/// handler. Components (dispatcher, computing node, checking node, merger,
/// cloud front-end) are handlers; wiring their mailboxes together forms
/// the cluster of Figure 6.
///
/// The loop stops when the handler returns false or the inbox is closed
/// and drained; components decide themselves how to react to kShutdown
/// (e.g. the checking node waits for one per computing node).
///
/// Thread-safety contract: the inbox (BoundedQueue) is the only
/// cross-thread channel — any thread may Push into it. The handler runs
/// exclusively on the node's own thread, so handler-owned state needs no
/// locking; `frames_` / `running_` are atomics readable from any thread.
/// Start() must be called exactly once, before any concurrent use of
/// Join()/Stop() (`started_` is intentionally unsynchronized: it is part
/// of the single-threaded setup phase).
class Node {
 public:
  /// Handler invoked with each batch the loop pops (size in
  /// [1, batch_size]); returns false to stop the loop. The vector is
  /// owned by the loop and reused across iterations, so steady state
  /// costs no allocation; the handler may consume/move its elements
  /// freely (the loop clears it).
  using BatchHandler = std::function<bool(std::vector<Message>&)>;

  /// `handler` is invoked on the node's own thread for every frame and
  /// returns false to stop. It must be callable until Join() returns.
  Node(std::string name, MailboxPtr inbox,
       std::function<bool(Message&&)> handler);

  /// Batched variant: the loop pops up to `batch_size` messages per lock
  /// acquisition (PopBatch) and hands them to the handler together. Under
  /// load, batches form from natural queue depth; `linger` additionally
  /// lets a partially-filled pop wait that long for stragglers (bounded
  /// latency cost, 0 = never wait — see BoundedQueue::PopBatch).
  Node(std::string name, MailboxPtr inbox, BatchHandler handler,
       size_t batch_size,
       std::chrono::nanoseconds linger = std::chrono::nanoseconds(0));

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  ~Node();

  /// Spawns the node thread. Call once.
  void Start();

  /// Blocks until the node loop exits. Idempotent.
  void Join();

  /// Closes the inbox, letting the loop drain and exit.
  void Stop();

  const std::string& name() const { return name_; }
  const MailboxPtr& inbox() const { return inbox_; }
  uint64_t frames_processed() const {
    return frames_.load(std::memory_order_relaxed);
  }

  /// True between Start() and the loop's exit — i.e. the node is still
  /// draining its inbox. False once the handler stopped the loop or the
  /// closed inbox drained dry.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Current inbox depth; a persistently full inbox means this node is
  /// the pipeline's bottleneck.
  size_t queue_depth() const { return inbox_->size(); }

 private:
  void Loop();
  void BatchLoop();
  void AttachWaitHook();

  std::string name_;
  MailboxPtr inbox_;
  std::function<bool(Message&&)> handler_;
  BatchHandler batch_handler_;
  size_t batch_size_ = 1;
  std::chrono::nanoseconds linger_{0};
  std::thread thread_;
  std::atomic<uint64_t> frames_{0};
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_NODE_H_
