#ifndef FRESQUE_NET_NODE_H_
#define FRESQUE_NET_NODE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/message.h"

namespace fresque {
namespace net {

/// How a batched Node forms its pop batches.
///
/// `max_batch` / `max_linger` are ceilings — with `adaptive` off they are
/// applied verbatim (the pre-adaptive static knobs). With `adaptive` on,
/// the node runs a small controller on its own thread that picks the
/// *effective* batch size and linger each iteration from two signals it
/// gets for free:
///
///  - the backlog the pop left behind (same lock acquisition, see
///    BoundedQueue::PopBatch): its EWMA is the congestion estimate. The
///    effective batch size follows it multiplicatively — down to 1 when
///    the queue runs short (a lone frame is handled the moment it
///    arrives, batching costs zero added latency), up to `max_batch`
///    under pressure (amortizing the lock/wakeup and feeding the
///    interleaved-AES batch encrypt full batches).
///  - the sampled time-in-queue telemetry (`queue.<node>.wait_ns` wait
///    hook): linger is engaged only while the observed queue wait already
///    dwarfs it (overload), where waiting for a fuller batch raises
///    capacity without moving the tail; at or below saturation it stays
///    0 so batching never adds scheduling delay to p99.
struct BatchOptions {
  size_t max_batch = 1;
  std::chrono::nanoseconds max_linger{0};
  bool adaptive = false;

  static BatchOptions Static(size_t batch, std::chrono::nanoseconds linger) {
    return BatchOptions{batch, linger, false};
  }
  static BatchOptions Adaptive(size_t max_batch,
                               std::chrono::nanoseconds max_linger) {
    return BatchOptions{max_batch, max_linger, true};
  }
};

/// One shared-nothing logical machine: a thread draining an inbox into a
/// handler. Components (dispatcher, computing node, checking node, merger,
/// cloud front-end) are handlers; wiring their mailboxes together forms
/// the cluster of Figure 6.
///
/// The loop stops when the handler returns false or the inbox is closed
/// and drained; components decide themselves how to react to kShutdown
/// (e.g. the checking node waits for one per computing node).
///
/// Thread-safety contract: the inbox (BoundedQueue) is the only
/// cross-thread channel — any thread may Push into it. The handler runs
/// exclusively on the node's own thread, so handler-owned state needs no
/// locking; `frames_` / `running_` are atomics readable from any thread.
/// Start() must be called exactly once, before any concurrent use of
/// Join()/Stop() (`started_` is intentionally unsynchronized: it is part
/// of the single-threaded setup phase).
class Node {
 public:
  /// Handler invoked with each batch the loop pops (size in
  /// [1, batch_size]); returns false to stop the loop. The vector is
  /// owned by the loop and reused across iterations, so steady state
  /// costs no allocation; the handler may consume/move its elements
  /// freely (the loop clears it).
  using BatchHandler = std::function<bool(std::vector<Message>&)>;

  /// `handler` is invoked on the node's own thread for every frame and
  /// returns false to stop. It must be callable until Join() returns.
  Node(std::string name, MailboxPtr inbox,
       std::function<bool(Message&&)> handler);

  /// Batched variant: the loop pops up to `batch_size` messages per lock
  /// acquisition (PopBatch) and hands them to the handler together. Under
  /// load, batches form from natural queue depth; `linger` additionally
  /// lets a partially-filled pop wait that long for stragglers (bounded
  /// latency cost, 0 = never wait — see BoundedQueue::PopBatch).
  /// Equivalent to the BatchOptions overload with `adaptive` off.
  Node(std::string name, MailboxPtr inbox, BatchHandler handler,
       size_t batch_size,
       std::chrono::nanoseconds linger = std::chrono::nanoseconds(0));

  /// Batched variant with an explicit batching policy; see BatchOptions.
  Node(std::string name, MailboxPtr inbox, BatchHandler handler,
       BatchOptions options);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  ~Node();

  /// Spawns the node thread. Call once.
  void Start();

  /// Blocks until the node loop exits. Idempotent.
  void Join();

  /// Closes the inbox, letting the loop drain and exit.
  void Stop();

  const std::string& name() const { return name_; }
  const MailboxPtr& inbox() const { return inbox_; }
  uint64_t frames_processed() const {
    return frames_.load(std::memory_order_relaxed);
  }

  /// True between Start() and the loop's exit — i.e. the node is still
  /// draining its inbox. False once the handler stopped the loop or the
  /// closed inbox drained dry.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Current inbox depth; a persistently full inbox means this node is
  /// the pipeline's bottleneck.
  size_t queue_depth() const { return inbox_->size(); }

  /// Batch size the controller is currently targeting (== the configured
  /// batch size for static nodes). Readable from any thread.
  size_t effective_batch() const {
    return effective_batch_.load(std::memory_order_relaxed);
  }

  /// Linger the controller is currently applying, in nanoseconds (== the
  /// configured linger for static nodes). Readable from any thread.
  int64_t effective_linger_ns() const {
    return effective_linger_ns_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void BatchLoop();
  void AttachWaitHook();
  /// One controller step after a pop of `popped` frames that left
  /// `backlog` behind. Runs on the node thread only.
  void AdaptBatching(size_t popped, size_t backlog);

  std::string name_;
  MailboxPtr inbox_;
  std::function<bool(Message&&)> handler_;
  BatchHandler batch_handler_;
  BatchOptions batching_;
  std::thread thread_;
  std::atomic<uint64_t> frames_{0};
  std::atomic<bool> running_{false};
  bool started_ = false;

  // Controller state. The EWMAs live on the node thread; the effective
  // knobs and the last sampled queue wait are atomics because tests,
  // metrics exporters and the queue's wait hook read/write them from
  // other threads.
  double pressure_ewma_ = 0;
  double wait_ewma_ns_ = 0;
  std::atomic<size_t> effective_batch_{1};
  std::atomic<int64_t> effective_linger_ns_{0};
  std::atomic<int64_t> last_wait_ns_{0};
};

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_NODE_H_
