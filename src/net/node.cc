#include "net/node.h"

#include "telemetry/telemetry.h"

#if FRESQUE_TELEMETRY_ENABLED
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#endif

namespace fresque {
namespace net {

Node::Node(std::string name, MailboxPtr inbox,
           std::function<bool(Message&&)> handler)
    : name_(std::move(name)),
      inbox_(std::move(inbox)),
      handler_(std::move(handler)) {
  AttachWaitHook();
}

Node::Node(std::string name, MailboxPtr inbox, BatchHandler handler,
           size_t batch_size, std::chrono::nanoseconds linger)
    : name_(std::move(name)),
      inbox_(std::move(inbox)),
      batch_handler_(std::move(handler)),
      batch_size_(batch_size < 1 ? 1 : batch_size),
      linger_(linger) {
  AttachWaitHook();
}

void Node::AttachWaitHook() {
#if FRESQUE_TELEMETRY_ENABLED
  // Per-node time-in-queue histogram: "queue.cn0.wait_ns" etc. The hook
  // only records a relaxed-atomic sample, as the queue contract requires.
  telemetry::Histogram* wait =
      telemetry::Registry::Global()->GetHistogram("queue." + name_ +
                                                  ".wait_ns");
  inbox_->SetWaitHook([wait](int64_t ns) { wait->RecordNanos(ns); });
#endif
}

Node::~Node() {
  Stop();
  Join();
}

void Node::Start() {
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    if (batch_handler_) {
      BatchLoop();
    } else {
      Loop();
    }
  });
}

void Node::Loop() {
#if FRESQUE_TELEMETRY_ENABLED
  telemetry::Tracer::Global()->SetCurrentThreadName(name_);
#endif
  for (;;) {
    auto msg = inbox_->Pop();
    if (!msg.has_value()) break;  // closed and drained
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (!handler_(std::move(*msg))) break;
  }
  running_.store(false, std::memory_order_release);
}

void Node::BatchLoop() {
#if FRESQUE_TELEMETRY_ENABLED
  telemetry::Tracer::Global()->SetCurrentThreadName(name_);
#endif
  std::vector<Message> batch;
  batch.reserve(batch_size_);
  for (;;) {
    batch.clear();
    const size_t n = inbox_->PopBatch(&batch, batch_size_, linger_);
    if (n == 0) break;  // closed and drained
    frames_.fetch_add(n, std::memory_order_relaxed);
    if (!batch_handler_(batch)) break;
  }
  running_.store(false, std::memory_order_release);
}

void Node::Join() {
  if (thread_.joinable()) thread_.join();
}

void Node::Stop() { inbox_->Close(); }

}  // namespace net
}  // namespace fresque
