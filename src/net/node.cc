#include "net/node.h"

#include "telemetry/telemetry.h"

#if FRESQUE_TELEMETRY_ENABLED
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#endif

namespace fresque {
namespace net {

Node::Node(std::string name, MailboxPtr inbox,
           std::function<bool(Message&&)> handler)
    : name_(std::move(name)),
      inbox_(std::move(inbox)),
      handler_(std::move(handler)) {
#if FRESQUE_TELEMETRY_ENABLED
  // Per-node time-in-queue histogram: "queue.cn0.wait_ns" etc. The hook
  // only records a relaxed-atomic sample, as the queue contract requires.
  telemetry::Histogram* wait =
      telemetry::Registry::Global()->GetHistogram("queue." + name_ +
                                                  ".wait_ns");
  inbox_->SetWaitHook([wait](int64_t ns) { wait->RecordNanos(ns); });
#endif
}

Node::~Node() {
  Stop();
  Join();
}

void Node::Start() {
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Node::Loop() {
#if FRESQUE_TELEMETRY_ENABLED
  telemetry::Tracer::Global()->SetCurrentThreadName(name_);
#endif
  for (;;) {
    auto msg = inbox_->Pop();
    if (!msg.has_value()) break;  // closed and drained
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (!handler_(std::move(*msg))) break;
  }
  running_.store(false, std::memory_order_release);
}

void Node::Join() {
  if (thread_.joinable()) thread_.join();
}

void Node::Stop() { inbox_->Close(); }

}  // namespace net
}  // namespace fresque
