#include "net/node.h"

#include <algorithm>

#include "telemetry/telemetry.h"

#if FRESQUE_TELEMETRY_ENABLED
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#endif

namespace fresque {
namespace net {

Node::Node(std::string name, MailboxPtr inbox,
           std::function<bool(Message&&)> handler)
    : name_(std::move(name)),
      inbox_(std::move(inbox)),
      handler_(std::move(handler)) {
  AttachWaitHook();
}

Node::Node(std::string name, MailboxPtr inbox, BatchHandler handler,
           size_t batch_size, std::chrono::nanoseconds linger)
    : Node(std::move(name), std::move(inbox), std::move(handler),
           BatchOptions::Static(batch_size, linger)) {}

Node::Node(std::string name, MailboxPtr inbox, BatchHandler handler,
           BatchOptions options)
    : name_(std::move(name)),
      inbox_(std::move(inbox)),
      batch_handler_(std::move(handler)),
      batching_(options) {
  if (batching_.max_batch < 1) batching_.max_batch = 1;
  if (batching_.max_linger.count() < 0) {
    batching_.max_linger = std::chrono::nanoseconds(0);
  }
  // Adaptive nodes start latency-first (singletons, no linger) and let
  // pressure grow the knobs; static nodes apply the ceilings verbatim.
  if (batching_.adaptive) {
    effective_batch_.store(1, std::memory_order_relaxed);
    effective_linger_ns_.store(0, std::memory_order_relaxed);
  } else {
    effective_batch_.store(batching_.max_batch, std::memory_order_relaxed);
    effective_linger_ns_.store(batching_.max_linger.count(),
                               std::memory_order_relaxed);
  }
  AttachWaitHook();
}

void Node::AttachWaitHook() {
  // The adaptive controller consumes the sampled time-in-queue signal even
  // in telemetry-off builds; the histogram rides along when compiled in.
  // The hook only does relaxed-atomic stores, as the queue contract
  // requires.
  const bool adaptive = batching_.adaptive;
#if FRESQUE_TELEMETRY_ENABLED
  // Per-node time-in-queue histogram: "queue.cn0.wait_ns" etc.
  telemetry::Histogram* wait =
      telemetry::Registry::Global()->GetHistogram("queue." + name_ +
                                                  ".wait_ns");
  inbox_->SetWaitHook([wait, adaptive, this](int64_t ns) {
    wait->RecordNanos(ns);
    if (adaptive) last_wait_ns_.store(ns, std::memory_order_relaxed);
  });
#else
  if (adaptive) {
    inbox_->SetWaitHook([this](int64_t ns) {
      last_wait_ns_.store(ns, std::memory_order_relaxed);
    });
  }
#endif
}

Node::~Node() {
  Stop();
  Join();
}

void Node::Start() {
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    if (batch_handler_) {
      BatchLoop();
    } else {
      Loop();
    }
  });
}

void Node::Loop() {
#if FRESQUE_TELEMETRY_ENABLED
  telemetry::Tracer::Global()->SetCurrentThreadName(name_);
#endif
  for (;;) {
    auto msg = inbox_->Pop();
    if (!msg.has_value()) break;  // closed and drained
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (!handler_(std::move(*msg))) break;
  }
  running_.store(false, std::memory_order_release);
}

void Node::BatchLoop() {
#if FRESQUE_TELEMETRY_ENABLED
  telemetry::Tracer::Global()->SetCurrentThreadName(name_);
#endif
  std::vector<Message> batch;
  batch.reserve(batching_.max_batch);
  for (;;) {
    batch.clear();
    const size_t want = effective_batch_.load(std::memory_order_relaxed);
    const std::chrono::nanoseconds linger(
        effective_linger_ns_.load(std::memory_order_relaxed));
    size_t backlog = 0;
    const size_t n = inbox_->PopBatch(&batch, want, linger, &backlog);
    if (n == 0) break;  // closed and drained
    frames_.fetch_add(n, std::memory_order_relaxed);
    if (!batch_handler_(batch)) break;
    if (batching_.adaptive) AdaptBatching(n, backlog);
  }
  running_.store(false, std::memory_order_release);
}

void Node::AdaptBatching(size_t popped, size_t backlog) {
  // Congestion estimate: frames that were available this turn. Quarter-
  // weight EWMA — fast enough to track a burst within a few pops, damped
  // enough not to flap on a single straggler.
  const double pressure = static_cast<double>(popped + backlog);
  pressure_ewma_ += (pressure - pressure_ewma_) / 4.0;

  size_t batch = effective_batch_.load(std::memory_order_relaxed);
  if (pressure_ewma_ >= static_cast<double>(batch) &&
      batch < batching_.max_batch) {
    // Batches are filling and work is queueing behind them: double toward
    // the ceiling so the lock/wakeup and downstream batch costs amortize.
    batch = std::min(batching_.max_batch, batch * 2);
    effective_batch_.store(batch, std::memory_order_relaxed);
  } else if (pressure_ewma_ < static_cast<double>(batch) / 2.0 && batch > 1) {
    // The queue runs short of the target: halve toward singletons so an
    // idle-period arrival is handled the moment it lands.
    batch = std::max<size_t>(1, batch / 2);
    effective_batch_.store(batch, std::memory_order_relaxed);
  }

  // Linger is pure added latency whenever the pipeline keeps up, so it is
  // gated on the *sampled time-in-queue* telemetry, not on batch fill:
  // only once the observed queue wait dwarfs the linger ceiling (genuine
  // overload — the tail is queueing delay, not scheduling delay) does
  // waiting for a fuller batch raise capacity for free. Hysteresis (8x to
  // engage, 4x to release) keeps the knob from flapping at the boundary.
  if (batching_.max_linger.count() > 0) {
    const double wait =
        static_cast<double>(last_wait_ns_.load(std::memory_order_relaxed));
    wait_ewma_ns_ += (wait - wait_ewma_ns_) / 4.0;
    const double ceiling = static_cast<double>(batching_.max_linger.count());
    const int64_t current =
        effective_linger_ns_.load(std::memory_order_relaxed);
    if (current == 0 && wait_ewma_ns_ > 8.0 * ceiling) {
      effective_linger_ns_.store(batching_.max_linger.count(),
                                 std::memory_order_relaxed);
    } else if (current > 0 && wait_ewma_ns_ < 4.0 * ceiling) {
      effective_linger_ns_.store(0, std::memory_order_relaxed);
    }
  }
}

void Node::Join() {
  if (thread_.joinable()) thread_.join();
}

void Node::Stop() { inbox_->Close(); }

}  // namespace net
}  // namespace fresque
