#ifndef FRESQUE_NET_TCP_H_
#define FRESQUE_NET_TCP_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/message.h"

namespace fresque {
namespace net {

/// A connected TCP stream carrying length-framed Message frames — the
/// paper's collector components talk over exactly such sockets. Used for
/// network-cost calibration (MeasureTcpHopNanos) and available as a real
/// transport for single-machine multi-process deployments.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes one frame: u32 length || Message bytes.
  Status Send(const Message& m);

  /// Writes `n` frames with one writev-style gathered flush instead of a
  /// send syscall (or two) per frame. The wire format is identical to n
  /// consecutive Send calls; only the syscall count changes, which is
  /// what makes batched egress cheap. Serialization scratch is retained
  /// across calls, so steady-state batches do not allocate.
  Status SendBatch(const Message* msgs, size_t n);

  /// Reads one frame; blocks. Returns kCancelled on orderly peer close.
  Result<Message> Receive();

  /// Disables Nagle's algorithm (TCP_NODELAY) — per-message latency mode.
  Status SetNoDelay(bool on);

  /// Bounds how long a raw read may block (SO_RCVTIMEO); 0 restores
  /// blocking mode. The obs HTTP server uses this so a silent client
  /// cannot wedge the accept loop.
  Status SetRecvTimeout(int timeout_ms);

  /// Raw byte-stream access for protocols that are not Message-framed
  /// (the obs plane speaks HTTP/1.1 over these). ReadSome returns the
  /// bytes read — 0 on orderly peer close — and fails with
  /// kDeadlineExceeded on a receive timeout; WriteRaw writes the whole
  /// buffer.
  Result<size_t> ReadSome(uint8_t* data, size_t len);
  Status WriteRaw(const uint8_t* data, size_t len);

  void Close();

 private:
  Status WriteAll(const uint8_t* data, size_t len);
  Status ReadAll(uint8_t* data, size_t len);

  int fd_ = -1;
  /// Reusable SendBatch scratch: all headers+frames of a batch, back to
  /// back, written with one gathered flush.
  Bytes send_buf_;
};

/// Listening socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds an ephemeral localhost port.
  static Result<TcpListener> Bind();

  /// Binds an explicit address. `host` must be a dotted-quad IPv4 address
  /// (or "localhost"); `port` 0 picks an ephemeral port. The obs HTTP
  /// endpoint binds through this so `--obs-addr=0.0.0.0:9464` works.
  static Result<TcpListener> Bind(const std::string& host, uint16_t port);

  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  Result<TcpConnection> Accept();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to a local listener.
Result<TcpConnection> TcpConnect(uint16_t port);

/// Measures the real per-message cost of one collector-style TCP hop on
/// this host: a sink thread drains a loopback socket while the caller
/// sends `messages` frames of `payload_bytes` each; returns mean ns per
/// message. `nodelay` disables coalescing (per-message latency mode);
/// with it enabled, kernel batching amortizes syscalls like the paper's
/// high-rate streams did.
Result<double> MeasureTcpHopNanos(size_t messages, size_t payload_bytes,
                                  bool nodelay);

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_TCP_H_
