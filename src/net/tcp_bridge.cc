#include "net/tcp_bridge.h"

#include <vector>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace net {

TcpEgress::TcpEgress(TcpConnection conn, size_t mailbox_capacity)
    : conn_(std::move(conn)), mailbox_(MakeMailbox(mailbox_capacity)) {}

Result<std::unique_ptr<TcpEgress>> TcpEgress::Connect(
    uint16_t port, size_t mailbox_capacity) {
  auto conn = TcpConnect(port);
  if (!conn.ok()) return conn.status();
  auto egress = std::unique_ptr<TcpEgress>(
      new TcpEgress(std::move(*conn), mailbox_capacity));
  egress->thread_ = std::thread([raw = egress.get()] { raw->Pump(); });
  return egress;
}

TcpEgress::~TcpEgress() { Shutdown(); }

void TcpEgress::Pump() {
  // Drain the mailbox in batches and flush each as one gathered write:
  // under load one syscall covers dozens of frames. PopBatch with no
  // linger returns the moment a single frame is available, so sparse
  // traffic still goes out immediately.
  constexpr size_t kBatch = 64;
  std::vector<Message> batch;
  batch.reserve(kBatch);
  for (;;) {
    batch.clear();
    if (mailbox_->PopBatch(&batch, kBatch) == 0) {
      return;  // mailbox closed and drained
    }
    // Nothing after a kShutdown frame may reach the peer (the receiving
    // pump stops at it anyway): truncate the batch there.
    size_t n = batch.size();
    bool is_shutdown = false;
    for (size_t i = 0; i < n; ++i) {
      if (batch[i].type == MessageType::kShutdown) {
        is_shutdown = true;
        n = i + 1;
        break;
      }
    }
    Status st = conn_.SendBatch(batch.data(), n);
    if (!st.ok()) {
      MutexLock lock(mu_);
      if (first_error_.ok()) {
        first_error_ = st;
        FRESQUE_LOG(Warn) << "tcp egress: " << st.ToString();
      }
    }
    if (is_shutdown) {
      // Frames behind the kShutdown — the batch remainder plus whatever
      // is still in the mailbox — can never be delivered. Count them
      // instead of discarding silently: a nonzero count means someone
      // pushed after initiating shutdown.
      uint64_t dropped = batch.size() - n;
      while (mailbox_->TryPop().has_value()) ++dropped;
      if (dropped > 0) {
        dropped_after_shutdown_.fetch_add(dropped, std::memory_order_relaxed);
        FRESQUE_COUNTER_ADD("net.egress.dropped_after_shutdown",
                            static_cast<int64_t>(dropped));
        FRESQUE_LOG(Warn) << "tcp egress: dropped " << dropped
                          << " frame(s) queued after kShutdown";
      }
      return;
    }
  }
}

Status TcpEgress::first_error() const {
  MutexLock lock(mu_);
  return first_error_;
}

void TcpEgress::Shutdown() {
  mailbox_->Close();
  if (thread_.joinable()) thread_.join();
  conn_.Close();
}

TcpIngress::TcpIngress(TcpListener listener, MailboxPtr sink)
    : listener_(std::move(listener)), sink_(std::move(sink)) {}

Result<std::unique_ptr<TcpIngress>> TcpIngress::Listen(MailboxPtr sink) {
  auto listener = TcpListener::Bind();
  if (!listener.ok()) return listener.status();
  return std::unique_ptr<TcpIngress>(
      new TcpIngress(std::move(*listener), std::move(sink)));
}

TcpIngress::~TcpIngress() { Join(); }

void TcpIngress::Start() {
  thread_ = std::thread([this] { Pump(); });
}

void TcpIngress::Pump() {
  auto conn = listener_.Accept();
  if (!conn.ok()) {
    MutexLock lock(mu_);
    first_error_ = conn.status();
    return;
  }
  for (;;) {
    auto m = conn->Receive();
    if (!m.ok()) {
      if (m.status().code() != StatusCode::kCancelled) {
        MutexLock lock(mu_);
        if (first_error_.ok()) first_error_ = m.status();
      }
      return;  // peer closed (or errored)
    }
    bool is_shutdown = m->type == MessageType::kShutdown;
    sink_->Push(std::move(*m));
    if (is_shutdown) return;
  }
}

Status TcpIngress::first_error() const {
  MutexLock lock(mu_);
  return first_error_;
}

void TcpIngress::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace net
}  // namespace fresque
