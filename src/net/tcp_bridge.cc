#include "net/tcp_bridge.h"

#include "common/logging.h"

namespace fresque {
namespace net {

TcpEgress::TcpEgress(TcpConnection conn, size_t mailbox_capacity)
    : conn_(std::move(conn)), mailbox_(MakeMailbox(mailbox_capacity)) {}

Result<std::unique_ptr<TcpEgress>> TcpEgress::Connect(
    uint16_t port, size_t mailbox_capacity) {
  auto conn = TcpConnect(port);
  if (!conn.ok()) return conn.status();
  auto egress = std::unique_ptr<TcpEgress>(
      new TcpEgress(std::move(*conn), mailbox_capacity));
  egress->thread_ = std::thread([raw = egress.get()] { raw->Pump(); });
  return egress;
}

TcpEgress::~TcpEgress() { Shutdown(); }

void TcpEgress::Pump() {
  for (;;) {
    auto m = mailbox_->Pop();
    if (!m.has_value()) return;  // mailbox closed and drained
    bool is_shutdown = m->type == MessageType::kShutdown;
    Status st = conn_.Send(*m);
    if (!st.ok()) {
      MutexLock lock(mu_);
      if (first_error_.ok()) {
        first_error_ = st;
        FRESQUE_LOG(Warn) << "tcp egress: " << st.ToString();
      }
    }
    if (is_shutdown) return;
  }
}

Status TcpEgress::first_error() const {
  MutexLock lock(mu_);
  return first_error_;
}

void TcpEgress::Shutdown() {
  mailbox_->Close();
  if (thread_.joinable()) thread_.join();
  conn_.Close();
}

TcpIngress::TcpIngress(TcpListener listener, MailboxPtr sink)
    : listener_(std::move(listener)), sink_(std::move(sink)) {}

Result<std::unique_ptr<TcpIngress>> TcpIngress::Listen(MailboxPtr sink) {
  auto listener = TcpListener::Bind();
  if (!listener.ok()) return listener.status();
  return std::unique_ptr<TcpIngress>(
      new TcpIngress(std::move(*listener), std::move(sink)));
}

TcpIngress::~TcpIngress() { Join(); }

void TcpIngress::Start() {
  thread_ = std::thread([this] { Pump(); });
}

void TcpIngress::Pump() {
  auto conn = listener_.Accept();
  if (!conn.ok()) {
    MutexLock lock(mu_);
    first_error_ = conn.status();
    return;
  }
  for (;;) {
    auto m = conn->Receive();
    if (!m.ok()) {
      if (m.status().code() != StatusCode::kCancelled) {
        MutexLock lock(mu_);
        if (first_error_.ok()) first_error_ = m.status();
      }
      return;  // peer closed (or errored)
    }
    bool is_shutdown = m->type == MessageType::kShutdown;
    sink_->Push(std::move(*m));
    if (is_shutdown) return;
  }
}

Status TcpIngress::first_error() const {
  MutexLock lock(mu_);
  return first_error_;
}

void TcpIngress::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace net
}  // namespace fresque
