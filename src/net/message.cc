#include "net/message.h"

namespace fresque {
namespace net {

const char* MessageTypeToString(MessageType t) {
  switch (t) {
    case MessageType::kRawLine:
      return "RawLine";
    case MessageType::kTaggedRecord:
      return "TaggedRecord";
    case MessageType::kCloudRecord:
      return "CloudRecord";
    case MessageType::kRemovedRecord:
      return "RemovedRecord";
    case MessageType::kPublish:
      return "Publish";
    case MessageType::kDone:
      return "Done";
    case MessageType::kTemplateInit:
      return "TemplateInit";
    case MessageType::kTemplateForward:
      return "TemplateForward";
    case MessageType::kAlSnapshot:
      return "AlSnapshot";
    case MessageType::kPublicationStart:
      return "PublicationStart";
    case MessageType::kIndexPublication:
      return "IndexPublication";
    case MessageType::kMatchingTable:
      return "MatchingTable";
    case MessageType::kCloudTaggedRecord:
      return "CloudTaggedRecord";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kPublicationAck:
      return "PublicationAck";
  }
  return "?";
}

Bytes Message::Serialize() const {
  Bytes out;
  SerializeAppend(&out);
  return out;
}

void Message::SerializeAppend(Bytes* out) const {
  out->reserve(out->size() + SerializedSize());
  auto put_u64 = [out](uint64_t v) {
    for (size_t i = 0; i < sizeof(v); ++i) {
      out->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  out->push_back(static_cast<uint8_t>(type));
  put_u64(pn);
  put_u64(leaf);
  out->push_back(dummy ? 1 : 0);
  put_u64(static_cast<uint64_t>(born_ns));
  const uint32_t plen = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < sizeof(plen); ++i) {
    out->push_back(static_cast<uint8_t>(plen >> (8 * i)));
  }
  out->insert(out->end(), payload.begin(), payload.end());
}

Result<Message> Message::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  auto type = r.GetU8();
  auto pn = r.GetU64();
  auto leaf = r.GetU64();
  auto dummy = r.GetU8();
  auto born = r.GetU64();
  auto payload = r.GetBytes();
  if (!type.ok() || !pn.ok() || !leaf.ok() || !dummy.ok() || !born.ok() ||
      !payload.ok()) {
    return Status::Corruption("truncated message frame");
  }
  if (*type > static_cast<uint8_t>(MessageType::kPublicationAck)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(*type));
  }
  Message m;
  m.type = static_cast<MessageType>(*type);
  m.pn = *pn;
  m.leaf = *leaf;
  m.dummy = *dummy != 0;
  m.born_ns = static_cast<int64_t>(*born);
  m.payload = std::move(*payload);
  return m;
}

MailboxPtr MakeMailbox(size_t capacity) {
  return std::make_shared<Mailbox>(capacity);
}

}  // namespace net
}  // namespace fresque
