#ifndef FRESQUE_NET_TCP_BRIDGE_H_
#define FRESQUE_NET_TCP_BRIDGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/tcp.h"

namespace fresque {
namespace net {

/// Pumps frames from a local Mailbox out over a TCP connection. Lets any
/// component that speaks MailboxPtr (every collector prototype) talk to a
/// peer in another process: hand the collector `egress.mailbox()` instead
/// of a local CloudNode inbox.
///
/// A kShutdown frame is forwarded and then stops the pump; closing the
/// mailbox stops it too (without forwarding anything).
class TcpEgress {
 public:
  /// Connects to a local listener and starts pumping.
  static Result<std::unique_ptr<TcpEgress>> Connect(
      uint16_t port, size_t mailbox_capacity = 8192);

  ~TcpEgress();

  const MailboxPtr& mailbox() const { return mailbox_; }

  /// First send error, if any (the pump keeps draining afterwards so
  /// producers do not block forever).
  Status first_error() const FRESQUE_EXCLUDES(mu_);

  /// Frames that were already in the mailbox behind a kShutdown frame
  /// when the pump stopped. They never reach the peer (nothing after
  /// kShutdown may, and the receiving pump stops at it anyway); a
  /// nonzero value means a producer kept pushing after initiating
  /// shutdown — a protocol bug upstream, previously discarded silently.
  /// Also exported as counter "net.egress.dropped_after_shutdown".
  uint64_t dropped_after_shutdown() const {
    return dropped_after_shutdown_.load(std::memory_order_relaxed);
  }

  /// Closes the mailbox and joins the pump thread.
  void Shutdown();

 private:
  TcpEgress(TcpConnection conn, size_t mailbox_capacity);
  void Pump() FRESQUE_EXCLUDES(mu_);

  TcpConnection conn_;
  MailboxPtr mailbox_;
  mutable Mutex mu_;
  Status first_error_ FRESQUE_GUARDED_BY(mu_);
  std::atomic<uint64_t> dropped_after_shutdown_{0};
  std::thread thread_;
};

/// Accepts one TCP peer and pushes every received frame into a local
/// mailbox (e.g. a CloudNode inbox). Stops at kShutdown (after forwarding
/// it) or when the peer closes.
class TcpIngress {
 public:
  /// Binds an ephemeral port; connect a TcpEgress to `port()`, then call
  /// Start() to accept and pump.
  static Result<std::unique_ptr<TcpIngress>> Listen(MailboxPtr sink);

  ~TcpIngress();

  uint16_t port() const { return listener_.port(); }

  /// Accepts the peer and starts pumping (blocking accept happens on the
  /// pump thread).
  void Start();

  Status first_error() const FRESQUE_EXCLUDES(mu_);

  /// Joins the pump thread (returns once the peer shut down).
  void Join();

 private:
  TcpIngress(TcpListener listener, MailboxPtr sink);
  void Pump() FRESQUE_EXCLUDES(mu_);

  TcpListener listener_;
  MailboxPtr sink_;
  mutable Mutex mu_;
  Status first_error_ FRESQUE_GUARDED_BY(mu_);
  // fresque-lint: allow(guarded-by) written only by Start()/Join() on the owner thread
  std::thread thread_;
};

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_TCP_BRIDGE_H_
