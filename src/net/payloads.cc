#include "net/payloads.h"

#include "crypto/hmac.h"

namespace fresque {
namespace net {

Bytes EncodeTemplate(const index::HistogramIndex& noise_index) {
  return noise_index.Serialize();
}

Result<index::HistogramIndex> DecodeTemplate(const Bytes& payload) {
  return index::HistogramIndex::Deserialize(payload);
}

Bytes EncodeAlSnapshot(const std::vector<int64_t>& al) {
  BinaryWriter w;
  w.PutU64(al.size());
  for (int64_t v : al) w.PutI64(v);
  return w.Release();
}

Result<std::vector<int64_t>> DecodeAlSnapshot(const Bytes& payload) {
  BinaryReader r(payload);
  auto n = r.GetU64();
  if (!n.ok()) return Status::Corruption("truncated AL snapshot");
  // Bound the claimed count by the bytes actually present (8 per entry),
  // so a corrupt header cannot trigger a huge allocation.
  if (*n > r.remaining() / sizeof(int64_t)) {
    return Status::Corruption("AL snapshot count exceeds payload");
  }
  std::vector<int64_t> al;
  al.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto v = r.GetI64();
    if (!v.ok()) return Status::Corruption("truncated AL entry");
    al.push_back(*v);
  }
  return al;
}

namespace {

/// HMAC over the two length-prefixed content segments.
Bytes TagOver(const Bytes& index_bytes, const Bytes& overflow_bytes,
              const Bytes& mac_key) {
  crypto::HmacSha256 mac(mac_key);
  BinaryWriter framed;
  framed.PutBytes(index_bytes);
  framed.PutBytes(overflow_bytes);
  mac.Update(framed.buffer());
  auto digest = mac.Finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

Bytes EncodeIndexPublication(const IndexPublication& pub) {
  BinaryWriter w;
  w.PutBytes(pub.index.Serialize());
  w.PutBytes(pub.overflow.Serialize());
  w.PutBytes(pub.integrity_tag);
  return w.Release();
}

Result<IndexPublication> DecodeIndexPublication(const Bytes& payload) {
  BinaryReader r(payload);
  auto index_bytes = r.GetBytes();
  auto overflow_bytes = r.GetBytes();
  auto tag = r.GetBytes();
  if (!index_bytes.ok() || !overflow_bytes.ok() || !tag.ok()) {
    return Status::Corruption("truncated index publication");
  }
  auto idx = index::HistogramIndex::Deserialize(*index_bytes);
  if (!idx.ok()) return idx.status();
  auto ovf = index::OverflowArrays::Deserialize(*overflow_bytes);
  if (!ovf.ok()) return ovf.status();
  IndexPublication pub(std::move(idx).ValueOrDie(),
                       std::move(ovf).ValueOrDie());
  pub.integrity_tag = std::move(*tag);
  return pub;
}

Bytes ComputeIndexPublicationTag(const IndexPublication& pub,
                                 const Bytes& mac_key) {
  return TagOver(pub.index.Serialize(), pub.overflow.Serialize(), mac_key);
}

Status VerifyIndexPublicationPayload(const Bytes& payload,
                                     const Bytes& mac_key) {
  BinaryReader r(payload);
  auto index_bytes = r.GetBytes();
  auto overflow_bytes = r.GetBytes();
  auto tag = r.GetBytes();
  if (!index_bytes.ok() || !overflow_bytes.ok() || !tag.ok()) {
    return Status::Corruption("truncated index publication");
  }
  if (tag->empty()) {
    return Status::FailedPrecondition("publication carries no tag");
  }
  Bytes expected = TagOver(*index_bytes, *overflow_bytes, mac_key);
  if (tag->size() != expected.size() ||
      !crypto::ConstantTimeEquals(tag->data(), expected.data(),
                                  expected.size())) {
    return Status::Corruption("publication integrity tag mismatch");
  }
  return Status::OK();
}

Bytes EncodeMatchingTable(const index::MatchingTable& table) {
  return table.Serialize();
}

Result<index::MatchingTable> DecodeMatchingTable(const Bytes& payload) {
  return index::MatchingTable::Deserialize(payload);
}

}  // namespace net
}  // namespace fresque
