#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace net {

namespace {
Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpConnection::SetNoDelay(bool on) {
  int flag = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status TcpConnection::SetRecvTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Result<size_t> TcpConnection::ReadSome(uint8_t* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  for (;;) {
    ssize_t n = ::recv(fd_, data, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv");
  }
}

Status TcpConnection::WriteRaw(const uint8_t* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  return WriteAll(data, len);
}

Status TcpConnection::WriteAll(const uint8_t* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::ReadAll(uint8_t* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::recv(fd_, data, len, 0);
    if (n == 0) return Status::Cancelled("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::Send(const Message& m) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  Bytes frame = m.Serialize();
  uint8_t header[4];
  uint32_t len = static_cast<uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  FRESQUE_RETURN_NOT_OK(WriteAll(header, 4));
  FRESQUE_RETURN_NOT_OK(WriteAll(frame.data(), frame.size()));
  FRESQUE_COUNTER_ADD("net.tcp.frames_sent", 1);
  FRESQUE_COUNTER_ADD("net.tcp.bytes_sent", 4 + frame.size());
  return Status::OK();
}

Status TcpConnection::SendBatch(const Message* msgs, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  if (n == 0) return Status::OK();
  // Gather every frame (u32 length || body, same as Send) into one
  // reused buffer and flush it with a single syscall. Coalescing in user
  // space rather than via writev keeps the iovec bookkeeping (IOV_MAX
  // chunking, partial-write resume straddling iovecs) out of the path —
  // the kernel sees one contiguous write either way.
  send_buf_.clear();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t len = static_cast<uint32_t>(msgs[i].SerializedSize());
    for (int b = 0; b < 4; ++b) {
      send_buf_.push_back(static_cast<uint8_t>(len >> (8 * b)));
    }
    msgs[i].SerializeAppend(&send_buf_);
  }
  FRESQUE_RETURN_NOT_OK(WriteAll(send_buf_.data(), send_buf_.size()));
  FRESQUE_COUNTER_ADD("net.tcp.frames_sent", n);
  FRESQUE_COUNTER_ADD("net.tcp.bytes_sent", send_buf_.size());
  FRESQUE_COUNTER_ADD("net.tcp.batch_flushes", 1);
  return Status::OK();
}

Result<Message> TcpConnection::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  uint8_t header[4];
  FRESQUE_RETURN_NOT_OK(ReadAll(header, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (len > (64u << 20)) {
    return Status::Corruption("oversized TCP frame");
  }
  Bytes frame(len);
  FRESQUE_RETURN_NOT_OK(ReadAll(frame.data(), frame.size()));
  FRESQUE_COUNTER_ADD("net.tcp.frames_received", 1);
  FRESQUE_COUNTER_ADD("net.tcp.bytes_received", 4 + frame.size());
  return Message::Deserialize(frame);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind() { return Bind("127.0.0.1", 0); }

Result<TcpListener> TcpListener::Bind(const std::string& host, uint16_t port) {
  in_addr bind_addr{};
  if (host.empty() || host == "localhost") {
    bind_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &bind_addr) != 1) {
    return Status::InvalidArgument("unparseable bind address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = bind_addr;
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  if (::listen(fd, 8) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

Result<TcpConnection> TcpListener::Accept() {
  int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return Errno("accept");
  return TcpConnection(cfd);
}

Result<TcpConnection> TcpConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect");
  }
  return TcpConnection(fd);
}

Result<double> MeasureTcpHopNanos(size_t messages, size_t payload_bytes,
                                  bool nodelay) {
  if (messages == 0) return Status::InvalidArgument("need messages > 0");
  auto listener = TcpListener::Bind();
  if (!listener.ok()) return listener.status();

  Status sink_status = Status::OK();
  std::thread sink([&] {
    auto conn = listener->Accept();
    if (!conn.ok()) {
      sink_status = conn.status();
      return;
    }
    // Drain everything, then echo one final ack so the sender can time
    // until full consumption (not just until the send buffer absorbed it).
    for (size_t i = 0; i < messages; ++i) {
      auto m = conn->Receive();
      if (!m.ok()) {
        sink_status = m.status();
        return;
      }
    }
    Message ack;
    ack.type = MessageType::kDone;
    sink_status = conn->Send(ack);
  });

  auto conn = TcpConnect(listener->port());
  if (!conn.ok()) {
    sink.join();
    return conn.status();
  }
  if (nodelay) {
    FRESQUE_RETURN_NOT_OK(conn->SetNoDelay(true));
  }

  Message m;
  m.type = MessageType::kCloudRecord;
  m.payload.assign(payload_bytes, 0x5A);

  Stopwatch watch;
  for (size_t i = 0; i < messages; ++i) {
    m.pn = i;
    Status st = conn->Send(m);
    if (!st.ok()) {
      sink.join();
      return st;
    }
  }
  auto ack = conn->Receive();
  double elapsed = static_cast<double>(watch.ElapsedNanos());
  sink.join();
  if (!ack.ok()) return ack.status();
  if (!sink_status.ok()) return sink_status;
  return elapsed / static_cast<double>(messages);
}

}  // namespace net
}  // namespace fresque
