#ifndef FRESQUE_NET_MESSAGE_H_
#define FRESQUE_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/queue.h"
#include "common/result.h"

namespace fresque {
namespace net {

/// Frame types exchanged between collector components and the cloud.
enum class MessageType : uint8_t {
  /// Data source / dispatcher -> computing node: one raw text line.
  kRawLine = 0,
  /// Computing node -> checking node: <leaf offset, e-record> pair, plus
  /// the collector-private dummy flag (stripped before the cloud).
  kTaggedRecord = 1,
  /// Checking node -> cloud: <leaf offset, e-record> of one publication.
  kCloudRecord = 2,
  /// Checker -> merger: a record removed to satisfy negative noise.
  kRemovedRecord = 3,
  /// Dispatcher -> computing nodes and checking node: interval over.
  kPublish = 4,
  /// Checking node -> computing nodes: previous publication flushed.
  kDone = 5,
  /// Dispatcher -> checking node: index template + PN for a new interval.
  kTemplateInit = 6,
  /// Checking node -> merger: the same template, forwarded.
  kTemplateForward = 7,
  /// Checking node -> merger: AL snapshot at end of interval.
  kAlSnapshot = 8,
  /// Checking node -> cloud: publication number opened.
  kPublicationStart = 9,
  /// Merger -> cloud: secure index + overflow arrays for a publication.
  kIndexPublication = 10,
  /// PINED-RQ++ collector -> cloud: matching table of a publication.
  kMatchingTable = 11,
  /// PINED-RQ++ collector -> cloud: `<random tag, e-record>` pair whose
  /// leaf stays hidden until the matching table is published.
  kCloudTaggedRecord = 12,
  /// Producer -> consumer: no more input, drain and stop.
  kShutdown = 13,
  /// Cloud node (on install) or checking node / merger (on failure) ->
  /// collector: publication `pn` reached a terminal state. `leaf == 0`
  /// means the publication installed at the cloud; any other value means
  /// it failed, with a human-readable reason in `payload`.
  kPublicationAck = 14,
};

const char* MessageTypeToString(MessageType t);

/// One frame. The envelope fields cover the hot-path cases; larger control
/// payloads (templates, indexes, AL snapshots) travel serialized in
/// `payload`.
struct Message {
  MessageType type = MessageType::kShutdown;
  /// Publication number the frame belongs to.
  uint64_t pn = 0;
  /// Leaf offset for record frames; random tag for PINED-RQ++ records.
  uint64_t leaf = 0;
  /// Collector-private dummy marker (paper's "special flag"); never set on
  /// frames addressed to the cloud.
  bool dummy = false;
  /// Monotonic (steady_clock) nanosecond stamp set when the frame's
  /// payload entered the pipeline, carried end-to-end so the final
  /// consumer can histogram true arrival→install latency. 0 = unstamped.
  /// Monotonic clocks are per-process, so the stamp is only meaningful
  /// within the process that set it (the in-process pipeline; across TCP
  /// it still measures bytes+frames but not latency).
  int64_t born_ns = 0;
  Bytes payload;

  /// Wire encoding; used by tests and by the frame-counting transports.
  Bytes Serialize() const;

  /// Appends the wire encoding to `*out` (same bytes as Serialize); a
  /// reused buffer makes repeated serialization allocation-free.
  void SerializeAppend(Bytes* out) const;

  /// Bytes SerializeAppend will append for this message.
  size_t SerializedSize() const { return 30 + payload.size(); }

  static Result<Message> Deserialize(const Bytes& data);
};

/// Bounded mailbox carrying frames between two components. Capacity gives
/// back-pressure like a bounded socket buffer.
using Mailbox = BoundedQueue<Message>;
using MailboxPtr = std::shared_ptr<Mailbox>;

/// Convenience: a mailbox with the default per-link capacity.
MailboxPtr MakeMailbox(size_t capacity = 4096);

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_MESSAGE_H_
