#ifndef FRESQUE_NET_PAYLOADS_H_
#define FRESQUE_NET_PAYLOADS_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "index/index.h"
#include "index/matching.h"
#include "index/overflow.h"

namespace fresque {
namespace net {

/// Codecs for the structured control payloads that travel inside Message
/// frames. Hot-path record frames keep their fields in the envelope; these
/// are the cold-path publication artifacts.

/// kTemplateInit / kTemplateForward body: the noise-only index of a new
/// publication.
Bytes EncodeTemplate(const index::HistogramIndex& noise_index);
Result<index::HistogramIndex> DecodeTemplate(const Bytes& payload);

/// kAlSnapshot body: per-leaf true counts at the end of an interval.
Bytes EncodeAlSnapshot(const std::vector<int64_t>& al);
Result<std::vector<int64_t>> DecodeAlSnapshot(const Bytes& payload);

/// kIndexPublication body: secure index + overflow arrays + an optional
/// HMAC-SHA-256 integrity tag computed by the trusted collector with the
/// publication's IndexMacKey. The cloud is honest-but-curious, but the
/// tag gives the client tamper *evidence* (defense in depth): a modified
/// index or overflow array no longer verifies.
struct IndexPublication {
  index::HistogramIndex index;
  index::OverflowArrays overflow;
  /// Empty when the producing prototype does not sign (baselines).
  Bytes integrity_tag;

  IndexPublication(index::HistogramIndex idx, index::OverflowArrays ovf)
      : index(std::move(idx)), overflow(std::move(ovf)) {}
};
Bytes EncodeIndexPublication(const IndexPublication& pub);
Result<IndexPublication> DecodeIndexPublication(const Bytes& payload);

/// Computes the integrity tag for `pub` under `mac_key` (HMAC over the
/// serialized index and overflow segments).
Bytes ComputeIndexPublicationTag(const IndexPublication& pub,
                                 const Bytes& mac_key);

/// Verifies a stored publication payload against `mac_key`. Fails with
/// Corruption on mismatch and FailedPrecondition when the payload carries
/// no tag.
Status VerifyIndexPublicationPayload(const Bytes& payload,
                                     const Bytes& mac_key);

/// kMatchingTable body.
Bytes EncodeMatchingTable(const index::MatchingTable& table);
Result<index::MatchingTable> DecodeMatchingTable(const Bytes& payload);

}  // namespace net
}  // namespace fresque

#endif  // FRESQUE_NET_PAYLOADS_H_
