#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fresque {

void RunningStats::Add(double x) {
  owner_.AssertOwned();
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double LatencyRecorder::Quantile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  double idx = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

FixedHistogram::FixedHistogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void FixedHistogram::Add(double x) {
  owner_.AssertOwned();
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  long idx = width > 0 ? static_cast<long>((x - lo_) / width) : 0;
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double FixedHistogram::TotalVariationDistance(
    const FixedHistogram& other) const {
  if (total_ == 0 || other.total_ == 0) return 1.0;
  double tv = 0.0;
  size_t n = std::min(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    double p = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    double q = static_cast<double>(other.counts_[i]) /
               static_cast<double>(other.total_);
    tv += std::abs(p - q);
  }
  return tv / 2.0;
}

std::string FixedHistogram::ToString() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ")x" << counts_.size() << ":";
  for (uint64_t c : counts_) os << " " << c;
  return os.str();
}

}  // namespace fresque
