#include "common/status.h"

namespace fresque {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  // fresque-lint: allow(hot-alloc) error-path formatting; ok() case allocates nothing
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fresque
