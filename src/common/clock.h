#ifndef FRESQUE_COMMON_CLOCK_H_
#define FRESQUE_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace fresque {

/// Time source abstraction so components can run against either real time
/// (threaded runtime) or a virtual clock (discrete-event simulator and
/// deterministic tests). Times are nanoseconds from an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;

  double NowSeconds() const {
    return static_cast<double>(NowNanos()) * 1e-9;
  }
};

/// Monotonic wall clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance (trivially destructible per style rules).
  static SystemClock* Global();
};

/// Manually-advanced clock for simulation and tests.
class VirtualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }

  void AdvanceNanos(int64_t delta) { now_ += delta; }
  void SetNanos(int64_t t) { now_ = t; }

 private:
  int64_t now_ = 0;
};

/// Scoped stopwatch reporting elapsed nanoseconds.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = SystemClock::Global())
      : clock_(clock), start_(clock->NowNanos()) {}

  int64_t ElapsedNanos() const { return clock_->NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }
  void Reset() { start_ = clock_->NowNanos(); }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_CLOCK_H_
