#ifndef FRESQUE_COMMON_RNG_H_
#define FRESQUE_COMMON_RNG_H_

#include <cstdint>

namespace fresque {

/// SplitMix64: used to expand a single seed into stream state. Not for
/// cryptographic use (see crypto::SecureRandom for that).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast deterministic PRNG for workload generation and
/// reproducible tests. Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1]; never returns 0, which makes it safe as the
  /// argument of log() in inverse-CDF sampling.
  double NextDoubleOpenLow() {
    return ((Next() >> 11) + 1) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling over the top of the range to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_RNG_H_
