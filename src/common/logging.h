#ifndef FRESQUE_COMMON_LOGGING_H_
#define FRESQUE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fresque {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Thread-safe in the sense that
/// each message is emitted with a single stream insertion.
class Logger {
 public:
  /// Messages below this level are dropped. Default: kInfo.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  static void Log(LogLevel level, const std::string& msg);
};

namespace log_internal {

/// Collects one message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace fresque

#define FRESQUE_LOG(level)                                             \
  ::fresque::log_internal::LogMessage(::fresque::LogLevel::k##level,   \
                                      __FILE__, __LINE__)              \
      .stream()

/// Fatal invariant check: logs and aborts. Used for programming errors
/// only; recoverable conditions use Status.
#define FRESQUE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fresque::Logger::Log(::fresque::LogLevel::kError,                \
                             std::string("CHECK failed: " #cond " at ") + \
                                 __FILE__ + ":" + std::to_string(__LINE__)); \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // FRESQUE_COMMON_LOGGING_H_
