#ifndef FRESQUE_COMMON_THREAD_ANNOTATIONS_H_
#define FRESQUE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (no-ops on GCC and MSVC).
///
/// These macros turn the repo's lock discipline into compile-time proofs:
/// fields carry FRESQUE_GUARDED_BY(mu_), lock-held helpers carry
/// FRESQUE_REQUIRES(mu_), and a Clang build with -Werror=thread-safety
/// (see the FRESQUE_WERROR CMake option and the `clang-thread-safety` CI
/// job) rejects any access that does not hold the right mutex.
///
/// The analysis only understands capability-annotated lock types, and
/// libstdc++'s std::mutex is not annotated — use fresque::Mutex /
/// fresque::MutexLock from common/mutex.h for any state shared across
/// threads. See DESIGN.md "Concurrency invariants" for the mutex
/// inventory and the allowed lock order.

#if defined(__clang__) && defined(__has_attribute)
#define FRESQUE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FRESQUE_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex").
#define FRESQUE_CAPABILITY(x) FRESQUE_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define FRESQUE_SCOPED_CAPABILITY FRESQUE_THREAD_ANNOTATION_(scoped_lockable)

/// Field is protected by the given mutex.
#define FRESQUE_GUARDED_BY(x) FRESQUE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define FRESQUE_PT_GUARDED_BY(x) FRESQUE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function must be called with the given mutex(es) held.
#define FRESQUE_REQUIRES(...) \
  FRESQUE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must be called with the given mutex(es) held in shared mode.
#define FRESQUE_REQUIRES_SHARED(...) \
  FRESQUE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the given mutex(es) and does not release them.
#define FRESQUE_ACQUIRE(...) \
  FRESQUE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the given mutex(es).
#define FRESQUE_RELEASE(...) \
  FRESQUE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define FRESQUE_TRY_ACQUIRE(...) \
  FRESQUE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the given mutex(es) held
/// (deadlock-prevention: it acquires them itself).
#define FRESQUE_EXCLUDES(...) \
  FRESQUE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering: this mutex must be acquired after `x`.
#define FRESQUE_ACQUIRED_AFTER(...) \
  FRESQUE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Documents lock-ordering: this mutex must be acquired before `x`.
#define FRESQUE_ACQUIRED_BEFORE(...) \
  FRESQUE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Function returns a reference to the given mutex.
#define FRESQUE_RETURN_CAPABILITY(x) \
  FRESQUE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function is safe for reasons the analysis cannot
/// see (justify with a comment at every use).
#define FRESQUE_NO_THREAD_SAFETY_ANALYSIS \
  FRESQUE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FRESQUE_COMMON_THREAD_ANNOTATIONS_H_
