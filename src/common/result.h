#ifndef FRESQUE_COMMON_RESULT_H_
#define FRESQUE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace fresque {

/// Either a value of type T or an error Status. Mirrors arrow::Result.
///
/// A default-constructed Result is in the error state (Internal). Use
/// `ok()` before dereferencing; `ValueOrDie()` asserts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Error state; deliberately not OK so an unset Result is never mistaken
  /// for a value.
  Result() : repr_(Status::Internal("uninitialized Result")) {}

  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit so `return SomeStatus();` works. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value into `out` and returns OK, or returns the error.
  Status MoveTo(T* out) && {
    if (!ok()) return std::get<Status>(std::move(repr_));
    *out = std::get<T>(std::move(repr_));
    return Status::OK();
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace fresque

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define FRESQUE_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  do {                                                       \
    auto _res = (rexpr);                                     \
    if (!_res.ok()) return _res.status();                    \
    lhs = std::move(_res).ValueOrDie();                      \
  } while (false)

#endif  // FRESQUE_COMMON_RESULT_H_
