#include "common/bytes.h"

namespace fresque {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0F]);
  }
  return out;
}

Result<Bytes> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace fresque
