#ifndef FRESQUE_COMMON_BYTES_H_
#define FRESQUE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fresque {

/// Owning byte sequence used for wire frames, ciphertexts and stored
/// records.
using Bytes = std::vector<uint8_t>;

/// Appends fixed-width little-endian integers, floats and length-prefixed
/// blobs to a growing byte buffer. All record/message/index serialization
/// in FRESQUE goes through this writer so the framing is uniform.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI32(int32_t v) { PutLE(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }

  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Raw bytes without a length prefix.
  void PutRaw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }
  void PutRaw(const Bytes& b) { PutRaw(b.data(), b.size()); }

  /// u32 length prefix followed by the bytes.
  void PutBytes(const Bytes& b) {
    PutU32(static_cast<uint32_t>(b.size()));
    PutRaw(b);
  }

  /// u32 length prefix followed by the characters.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const Bytes& buffer() const { return buf_; }
  Bytes Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads values written by BinaryWriter. All getters return OutOfRange if
/// the buffer is exhausted, so corrupt frames fail cleanly instead of
/// reading past the end.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit BinaryReader(const Bytes& b) : BinaryReader(b.data(), b.size()) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > len_) return Eof("u8");
    return data_[pos_++];
  }
  Result<uint16_t> GetU16() { return GetLE<uint16_t>(); }
  Result<uint32_t> GetU32() { return GetLE<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetLE<uint64_t>(); }
  Result<int32_t> GetI32() {
    auto r = GetLE<uint32_t>();
    if (!r.ok()) return r.status();
    return static_cast<int32_t>(*r);
  }
  Result<int64_t> GetI64() {
    auto r = GetLE<uint64_t>();
    if (!r.ok()) return r.status();
    return static_cast<int64_t>(*r);
  }

  Result<double> GetF64() {
    auto r = GetU64();
    if (!r.ok()) return r.status();
    double v;
    uint64_t bits = *r;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Reads a u32 length prefix then that many bytes.
  Result<Bytes> GetBytes() {
    auto n = GetU32();
    if (!n.ok()) return n.status();
    if (pos_ + *n > len_) return Eof("bytes body");
    Bytes out(data_ + pos_, data_ + pos_ + *n);
    pos_ += *n;
    return out;
  }

  Result<std::string> GetString() {
    auto n = GetU32();
    if (!n.ok()) return n.status();
    if (pos_ + *n > len_) return Eof("string body");
    std::string out(reinterpret_cast<const char*>(data_) + pos_, *n);
    pos_ += *n;
    return out;
  }

  /// Reads exactly `n` raw bytes (no length prefix).
  Result<Bytes> GetRaw(size_t n) {
    if (pos_ + n > len_) return Eof("raw");
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= len_; }

 private:
  template <typename T>
  Result<T> GetLE() {
    if (pos_ + sizeof(T) > len_) return Eof("integer");
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  static Status Eof(const char* what) {
    return Status::OutOfRange(std::string("BinaryReader: truncated ") + what);
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Lower-case hex encoding of `b` ("deadbeef").
std::string ToHex(const Bytes& b);

/// Parses lower- or upper-case hex; fails on odd length or non-hex chars.
Result<Bytes> FromHex(const std::string& hex);

}  // namespace fresque

#endif  // FRESQUE_COMMON_BYTES_H_
