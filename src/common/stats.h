#ifndef FRESQUE_COMMON_STATS_H_
#define FRESQUE_COMMON_STATS_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace fresque {

/// Debug-build proof of the "owned by one thread" contract below: the
/// first mutating call claims the instance for the calling thread, and
/// any later mutation from a different thread fires an assert. Compiles
/// away entirely under NDEBUG (release), so the accumulators stay free of
/// synchronization cost. For state that genuinely crosses threads, don't
/// silence the assert — wrap with fresque::Mutex and FRESQUE_GUARDED_BY
/// (common/mutex.h, common/thread_annotations.h) or use the lock-free
/// telemetry registry (telemetry/metrics.h) instead.
class ThreadOwnershipChecker {
 public:
#ifndef NDEBUG
  ThreadOwnershipChecker() = default;
  /// Copies and moves start unclaimed: the destination is a fresh
  /// accumulator owned by whichever thread mutates it next.
  ThreadOwnershipChecker(const ThreadOwnershipChecker&) {}
  ThreadOwnershipChecker& operator=(const ThreadOwnershipChecker&) {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    return *this;
  }

  void AssertOwned() {
    std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unclaimed
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_relaxed) &&
        expected != self) {
      assert(false &&
             "single-thread accumulator mutated from a second thread; "
             "wrap it with a Mutex (see common/stats.h)");
    }
  }

 private:
  std::atomic<std::thread::id> owner_{};
#else
  void AssertOwned() {}
#endif
};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// Thread-compatibility (applies to every class in this header):
/// unsynchronized by design — these are benchmark/report accumulators
/// owned by one thread; wrap with a fresque::Mutex if ever shared. Debug
/// builds enforce the single-owner contract via ThreadOwnershipChecker;
/// every current user (sim/pipeline.cc, the dp/common/randomer tests) is
/// single-threaded, and nothing in this header crosses threads after the
/// telemetry wiring (cross-thread latency lives in telemetry::Histogram).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  ThreadOwnershipChecker owner_;
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; answers arbitrary quantiles by sorting on demand.
/// Intended for benchmark reporting, not hot paths.
class LatencyRecorder {
 public:
  void Add(double x) {
    owner_.AssertOwned();
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Quantile(double q);
  double Mean() const;

 private:
  ThreadOwnershipChecker owner_;
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for arrival-time distribution checks in the randomer
/// security experiments.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }

  /// Total-variation distance to another histogram over the same range:
  /// 0.5 * sum |p_i - q_i| of the normalized bucket masses. Returns 1.0 if
  /// either histogram is empty. Bucket layouts must match.
  double TotalVariationDistance(const FixedHistogram& other) const;

  std::string ToString() const;

 private:
  ThreadOwnershipChecker owner_;
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_STATS_H_
