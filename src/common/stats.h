#ifndef FRESQUE_COMMON_STATS_H_
#define FRESQUE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fresque {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// Thread-compatibility (applies to every class in this header):
/// unsynchronized by design — these are benchmark/report accumulators
/// owned by one thread; wrap with a fresque::Mutex if ever shared.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; answers arbitrary quantiles by sorting on demand.
/// Intended for benchmark reporting, not hot paths.
class LatencyRecorder {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Quantile(double q);
  double Mean() const;

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for arrival-time distribution checks in the randomer
/// security experiments.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }

  /// Total-variation distance to another histogram over the same range:
  /// 0.5 * sum |p_i - q_i| of the normalized bucket masses. Returns 1.0 if
  /// either histogram is empty. Bucket layouts must match.
  double TotalVariationDistance(const FixedHistogram& other) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_STATS_H_
