#ifndef FRESQUE_COMMON_STATUS_H_
#define FRESQUE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fresque {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIOError = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kUnimplemented = 10,
  kInternal = 11,
  kDeadlineExceeded = 12,
  /// The system is shedding load: the request was rejected at admission
  /// (queue watermarks or the token bucket), not failed mid-flight. The
  /// caller may retry later or at a higher priority.
  kOverloaded = 13,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK or an error code with a message.
///
/// FRESQUE ingestion paths do not throw; fallible operations return Status
/// (or Result<T> for value-producing ones). The OK status carries no
/// allocation; error statuses carry a message describing the failure.
///
/// [[nodiscard]] on the class makes the compiler reject silently dropped
/// failures at every call site returning Status by value; helpers that
/// hand a Status out by pointer/reference are backstopped by
/// tools/fresque_lint (discarded-status check). Intentional discards are
/// spelled `(void)Expr();` with a comment saying why the failure is
/// ignorable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fresque

/// Returns from the enclosing function if `expr` evaluates to a non-OK
/// Status.
#define FRESQUE_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::fresque::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // FRESQUE_COMMON_STATUS_H_
