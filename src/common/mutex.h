#ifndef FRESQUE_COMMON_MUTEX_H_
#define FRESQUE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace fresque {

/// Capability-annotated wrapper over std::mutex.
///
/// Clang's thread-safety analysis can only track lock types annotated as
/// capabilities, and libstdc++ ships std::mutex without annotations.
/// Every mutex protecting cross-thread state in this repo is therefore a
/// fresque::Mutex, so FRESQUE_GUARDED_BY / FRESQUE_REQUIRES declarations
/// are *checked*, not just documentation.
///
/// Also satisfies BasicLockable (lowercase lock/unlock), so it can be
/// passed directly to CondVar::Wait below.
class FRESQUE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FRESQUE_ACQUIRE() { mu_.lock(); }
  void Unlock() FRESQUE_RELEASE() { mu_.unlock(); }
  bool TryLock() FRESQUE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, for std::condition_variable_any.
  void lock() FRESQUE_ACQUIRE() { mu_.lock(); }
  void unlock() FRESQUE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for fresque::Mutex (the std::lock_guard equivalent the
/// analysis understands).
class FRESQUE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FRESQUE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FRESQUE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with fresque::Mutex.
///
/// Wait() atomically releases and reacquires the mutex; from the
/// analysis's point of view the capability is held across the call,
/// which matches the caller-visible contract. Callers loop on their
/// predicate explicitly (no lambda overload: the analysis cannot see a
/// lambda body's capability context, so predicates live in the caller
/// where guarded fields are checked).
class CondVar {
 public:
  void Wait(Mutex& mu) FRESQUE_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      FRESQUE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      FRESQUE_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_MUTEX_H_
