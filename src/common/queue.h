#ifndef FRESQUE_COMMON_QUEUE_H_
#define FRESQUE_COMMON_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fresque {

/// Thread-safe bounded FIFO used as the mailbox between pipeline nodes.
///
/// Push blocks while full (back-pressure, like a TCP socket with a bounded
/// send window); Pop blocks while empty. Close() wakes all waiters: pushes
/// after Close fail, pops drain the remaining items then return nullopt.
///
/// The queue keeps lifetime counters (accepted / rejected pushes, depth
/// high-watermark) so operators can see where back-pressure builds up
/// without attaching a profiler.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      ++rejected_;
      return false;
    }
    items_.push_back(std::move(item));
    ++enqueued_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    items_.push_back(std::move(item));
    ++enqueued_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After Close, pushes fail and pops drain then return nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Items accepted over the queue's lifetime.
  uint64_t enqueued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enqueued_;
  }

  /// Pushes that failed (queue closed, or TryPush on a full queue).
  uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }

  /// Deepest the queue has ever been; `== capacity()` means producers
  /// have hit back-pressure at least once.
  size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  uint64_t enqueued_ = 0;
  uint64_t rejected_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_QUEUE_H_
