#ifndef FRESQUE_COMMON_QUEUE_H_
#define FRESQUE_COMMON_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/hot.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fresque {

/// Thread-safe bounded FIFO used as the mailbox between pipeline nodes.
///
/// Push blocks while full (back-pressure, like a TCP socket with a bounded
/// send window); Pop blocks while empty. Close() wakes all waiters: pushes
/// after Close fail, pops drain the remaining items then return nullopt.
///
/// The queue keeps lifetime counters (accepted pushes, rejects split by
/// cause, depth high-watermark) so operators can see where back-pressure
/// builds up — and tell it apart from shutdown — without attaching a
/// profiler.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue is closed.
  FRESQUE_HOT bool Push(T item) FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) {
        ++rejected_closed_;
        return false;
      }
      items_.push_back(std::move(item));
      StampPushLocked();
      ++enqueued_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Pushes items[0..n) in FIFO order with one lock acquisition and one
  /// consumer wakeup per chunk instead of one per item. Blocks while the
  /// queue is full, so batches larger than the capacity land in chunks as
  /// the consumer frees space. Returns how many items were accepted —
  /// `n`, or fewer iff the queue was closed mid-batch (the rest are
  /// counted as rejected-closed and left in a valid moved-from state).
  FRESQUE_HOT size_t PushBatch(T* items, size_t n) FRESQUE_EXCLUDES(mu_) {
    size_t accepted = 0;
    while (accepted < n) {
      size_t chunk = 0;
      {
        MutexLock lock(mu_);
        while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
        if (closed_) {
          rejected_closed_ += n - accepted;
          return accepted;
        }
        while (accepted < n && items_.size() < capacity_) {
          items_.push_back(std::move(items[accepted]));
          StampPushLocked();
          ++enqueued_;
          ++accepted;
          ++chunk;
        }
        if (items_.size() > high_water_) high_water_ = items_.size();
      }
      if (chunk > 1) {
        not_empty_.NotifyAll();
      } else if (chunk == 1) {
        not_empty_.NotifyOne();
      }
    }
    return accepted;
  }

  /// Non-blocking push. Returns false if full (back-pressure) or closed.
  FRESQUE_HOT bool TryPush(T item) FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) {
        ++rejected_closed_;
        return false;
      }
      if (items_.size() >= capacity_) {
        ++rejected_full_;
        return false;
      }
      items_.push_back(std::move(item));
      StampPushLocked();
      ++enqueued_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  FRESQUE_HOT std::optional<T> Pop() FRESQUE_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      StampPopLocked();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Pops up to `max` items into `*out` (appended) with one lock
  /// acquisition. Blocks until at least one item is available; then, if
  /// `linger` is positive and fewer than `max` items are queued, waits up
  /// to `linger` for the batch to fill before returning ("bounded
  /// linger": the added latency is capped by the knob; the default 0
  /// means batches form only from natural queue depth under load and an
  /// idle-queue pop returns the moment one item arrives). Returns the
  /// number popped; 0 means closed-and-drained, the terminal state.
  ///
  /// `backlog_after`, when non-null, receives the queue depth left behind
  /// by this pop, observed under the same lock acquisition — a free
  /// congestion signal for adaptive consumers (net::Node's controller):
  /// popping a full batch while a backlog remains means the consumer is
  /// behind; an empty backlog with an underfilled batch means the queue
  /// is short and batching should cost no latency.
  FRESQUE_HOT size_t PopBatch(
      std::vector<T>* out, size_t max,
      std::chrono::nanoseconds linger = std::chrono::nanoseconds(0),
      size_t* backlog_after = nullptr) FRESQUE_EXCLUDES(mu_) {
    if (max == 0) {
      if (backlog_after != nullptr) *backlog_after = size();
      return 0;
    }
    size_t popped = 0;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (linger.count() > 0 && !closed_ && items_.size() < max) {
        const auto deadline = std::chrono::steady_clock::now() + linger;
        while (!closed_ && items_.size() < max) {
          if (not_empty_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      while (popped < max && !items_.empty()) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        StampPopLocked();
        ++popped;
      }
      if (backlog_after != nullptr) *backlog_after = items_.size();
    }
    if (popped > 1) {
      not_full_.NotifyAll();
    } else if (popped == 1) {
      not_full_.NotifyOne();
    }
    return popped;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() FRESQUE_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      StampPopLocked();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// After Close, pushes fail and pops drain then return nullopt.
  void Close() FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Items accepted over the queue's lifetime.
  uint64_t enqueued() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return enqueued_;
  }

  /// Pushes that failed for any reason (back-pressure or shutdown).
  uint64_t rejected() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_full_ + rejected_closed_;
  }

  /// TryPush calls that failed because the queue was full — genuine
  /// back-pressure: the consumer is the bottleneck.
  uint64_t rejected_full() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_full_;
  }

  /// Pushes that failed because the queue was closed — expected during
  /// shutdown, alarming mid-run.
  uint64_t rejected_closed() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_closed_;
  }

  /// Deepest the queue has ever been; `== capacity()` means producers
  /// have hit back-pressure at least once.
  size_t high_watermark() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return high_water_;
  }

  /// Attaches a time-in-queue observer: `hook(wait_ns)` fires on pop
  /// with the nanoseconds the item spent enqueued (monotonic clock).
  /// Systematically sampled — every `kWaitSampleStride`-th item is
  /// stamped, the rest pay one deque op and no clock read — because the
  /// clock reads sit inside the queue critical section, where on the
  /// contended hops (k producers into the checking node) they would
  /// serialize the whole pipeline. Arrivals are oblivious to the stride,
  /// so the sampled waits are an unbiased draw of the distribution; only
  /// hooks see the sampling, the queue's own accounting stays exact.
  /// Existing callers with no hook attached pay nothing. Items already
  /// enqueued are stamped "now", so their reported wait starts at attach
  /// time. The hook runs under the queue lock: keep it cheap and
  /// lock-free (a relaxed-atomic histogram record is fine), and never
  /// touch this queue from inside it. Passing nullptr detaches.
  static constexpr uint64_t kWaitSampleStride = 64;

  void SetWaitHook(std::function<void(int64_t)> hook) FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    wait_hook_ = std::move(hook);
    stamps_.clear();
    if (wait_hook_) stamps_.assign(items_.size(), NowNs());
  }

 private:
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void StampPushLocked() FRESQUE_REQUIRES(mu_) {
    if (wait_hook_) {
      // 0 marks an unsampled item (a real stamp is never 0 on a
      // monotonic clock that started in the past).
      stamps_.push_back(stamp_round_robin_++ % kWaitSampleStride == 0
                            ? NowNs()
                            : 0);
    }
  }

  void StampPopLocked() FRESQUE_REQUIRES(mu_) {
    if (wait_hook_ && !stamps_.empty()) {
      const int64_t stamp = stamps_.front();
      stamps_.pop_front();
      if (stamp != 0) wait_hook_(NowNs() - stamp);
    }
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ FRESQUE_GUARDED_BY(mu_);
  /// Parallel enqueue stamps; non-empty only while a wait hook is set.
  std::deque<int64_t> stamps_ FRESQUE_GUARDED_BY(mu_);
  std::function<void(int64_t)> wait_hook_ FRESQUE_GUARDED_BY(mu_);
  uint64_t stamp_round_robin_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t enqueued_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t rejected_full_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t rejected_closed_ FRESQUE_GUARDED_BY(mu_) = 0;
  size_t high_water_ FRESQUE_GUARDED_BY(mu_) = 0;
  bool closed_ FRESQUE_GUARDED_BY(mu_) = false;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_QUEUE_H_
