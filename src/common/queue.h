#ifndef FRESQUE_COMMON_QUEUE_H_
#define FRESQUE_COMMON_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fresque {

/// Thread-safe bounded FIFO used as the mailbox between pipeline nodes.
///
/// Push blocks while full (back-pressure, like a TCP socket with a bounded
/// send window); Pop blocks while empty. Close() wakes all waiters: pushes
/// after Close fail, pops drain the remaining items then return nullopt.
///
/// The queue keeps lifetime counters (accepted pushes, rejects split by
/// cause, depth high-watermark) so operators can see where back-pressure
/// builds up — and tell it apart from shutdown — without attaching a
/// profiler.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue is closed.
  bool Push(T item) FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) {
        ++rejected_closed_;
        return false;
      }
      items_.push_back(std::move(item));
      ++enqueued_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push. Returns false if full (back-pressure) or closed.
  bool TryPush(T item) FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) {
        ++rejected_closed_;
        return false;
      }
      if (items_.size() >= capacity_) {
        ++rejected_full_;
        return false;
      }
      items_.push_back(std::move(item));
      ++enqueued_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() FRESQUE_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() FRESQUE_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// After Close, pushes fail and pops drain then return nullopt.
  void Close() FRESQUE_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Items accepted over the queue's lifetime.
  uint64_t enqueued() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return enqueued_;
  }

  /// Pushes that failed for any reason (back-pressure or shutdown).
  uint64_t rejected() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_full_ + rejected_closed_;
  }

  /// TryPush calls that failed because the queue was full — genuine
  /// back-pressure: the consumer is the bottleneck.
  uint64_t rejected_full() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_full_;
  }

  /// Pushes that failed because the queue was closed — expected during
  /// shutdown, alarming mid-run.
  uint64_t rejected_closed() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_closed_;
  }

  /// Deepest the queue has ever been; `== capacity()` means producers
  /// have hit back-pressure at least once.
  size_t high_watermark() const FRESQUE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return high_water_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ FRESQUE_GUARDED_BY(mu_);
  uint64_t enqueued_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t rejected_full_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t rejected_closed_ FRESQUE_GUARDED_BY(mu_) = 0;
  size_t high_water_ FRESQUE_GUARDED_BY(mu_) = 0;
  bool closed_ FRESQUE_GUARDED_BY(mu_) = false;
};

}  // namespace fresque

#endif  // FRESQUE_COMMON_QUEUE_H_
