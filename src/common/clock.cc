#include "common/clock.h"

namespace fresque {

SystemClock* SystemClock::Global() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

}  // namespace fresque
