#ifndef FRESQUE_COMMON_HOT_H_
#define FRESQUE_COMMON_HOT_H_

/// FRESQUE_HOT marks a function as part of the steady-state ingestion hot
/// path: the per-record / per-batch surfaces that PR 5's zero-allocation
/// overhaul made allocation-free (codec batch encrypt, queue push/pop
/// batch, the dispatcher/CN/checker/merger batch handlers).
///
/// The tag has two consumers:
///
///  1. The compiler: it expands to `__attribute__((hot))` on GCC/Clang,
///     biasing inlining and code layout toward these functions.
///  2. tools/fresque_lint's `hot-alloc` check: a FRESQUE_HOT function —
///     and everything it transitively calls inside src/ — must not
///     allocate (no new/malloc/make_unique/make_shared, no heap-backed
///     locals constructed per call). Member scratch buffers are the
///     sanctioned pattern: they amortize to zero once warmed up, and the
///     runtime side of the contract (tests/alloc_regression_test.cc
///     counting operator new in steady state) keeps that honest.
///
/// Allocations that are genuinely off the steady-state path (cold error
/// handling, once-per-publication setup) are suppressed per site with
///   // fresque-lint: allow(hot-alloc) <reason>
/// on the offending line or the line above it. See DESIGN.md
/// "Static analysis layer".
///
/// Place the macro at the start of the declaration:
///   FRESQUE_HOT bool HandleBatch(std::vector<net::Message>& batch);
/// Tag the in-class declaration (not the out-of-line definition); the
/// lint associates the tag with the definition by qualified name.
#if defined(__clang__)
// The annotate attribute makes the tag visible to libclang AST consumers
// (fresque_lint's clang frontend) without relying on token inspection.
#define FRESQUE_HOT __attribute__((hot, annotate("fresque_hot")))
#elif defined(__GNUC__)
#define FRESQUE_HOT __attribute__((hot))
#else
#define FRESQUE_HOT
#endif

#endif  // FRESQUE_COMMON_HOT_H_
