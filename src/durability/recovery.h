#ifndef FRESQUE_DURABILITY_RECOVERY_H_
#define FRESQUE_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cloud/server.h"
#include "common/clock.h"
#include "common/result.h"
#include "durability/metrics.h"
#include "durability/wal.h"

namespace fresque {
namespace durability {

struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;
  uint64_t frames_replayed = 0;
  uint64_t records_replayed = 0;
  uint64_t installs_replayed = 0;
  uint64_t last_lsn = 0;
  /// The final WAL frame was torn (in-flight at crash time) and was
  /// discarded — expected after a crash, never data loss for acked state.
  bool torn_tail = false;
  uint64_t torn_bytes = 0;
  double recovery_millis = 0;

  void MergeInto(DurabilityMetrics* m) const {
    m->frames_replayed = frames_replayed;
    m->recovery_millis = recovery_millis;
  }
};

struct RecoveredCloud {
  std::unique_ptr<cloud::CloudServer> server;
  RecoveryStats stats;
};

/// Rebuilds a CloudServer from a durability data directory: loads the
/// MANIFEST's snapshot (if any), then replays the WAL tail (frames past
/// the snapshot's LSN) through the server's normal mutation API, so the
/// recovered state is byte-identical to what was acked before the crash.
///
/// Errors: NotFound when the directory holds neither a snapshot nor any
/// WAL frame; Corruption when the log or snapshot is damaged anywhere
/// other than a torn final frame.
class RecoveryManager {
 public:
  static Result<RecoveredCloud> Recover(
      const std::string& dir, const Clock* clock = SystemClock::Global());
};

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_RECOVERY_H_
