#ifndef FRESQUE_DURABILITY_IO_H_
#define FRESQUE_DURABILITY_IO_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace fresque {
namespace durability {

/// Small POSIX file helpers shared by the WAL and the snapshot manager.
/// Everything here reports failures as Status (IOError) — durability code
/// never throws and never ignores a failed write or fsync.

/// Reads the whole file into memory.
Result<Bytes> ReadFile(const std::string& path);

/// fsync()s an existing file by path (open + fsync + close).
Status SyncFile(const std::string& path);

/// fsync()s a directory so renames/creates/unlinks inside it are durable.
Status SyncDir(const std::string& dir);

/// Atomically replaces `path` with `data`: writes `path + ".tmp"`, fsyncs
/// it, renames over `path`, then fsyncs the parent directory. A crash at
/// any point leaves either the old file or the new file, never a torn mix.
Status WriteFileAtomic(const std::string& path, const Bytes& data);

/// Atomically installs an already-written-and-synced `tmp_path` as `path`
/// (rename + parent directory fsync).
Status RenameAtomic(const std::string& tmp_path, const std::string& path);

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_IO_H_
