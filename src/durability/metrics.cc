#include "durability/metrics.h"

#include "telemetry/telemetry.h"

#if FRESQUE_TELEMETRY_ENABLED
#include "telemetry/metrics.h"
#endif

namespace fresque {
namespace durability {

#if FRESQUE_TELEMETRY_ENABLED

void ExportToRegistry(const DurabilityMetrics& m) {
  auto* reg = telemetry::Registry::Global();
  auto set = [reg](const char* name, uint64_t v) {
    reg->GetGauge(name)->Set(static_cast<int64_t>(v));
  };
  set("wal.frames", m.wal_frames);
  set("wal.record_batches", m.wal_record_batches);
  set("wal.bytes", m.wal_bytes);
  set("wal.fsyncs", m.wal_fsyncs);
  set("wal.segments_created", m.wal_segments_created);
  set("wal.segments_deleted", m.wal_segments_deleted);
  set("wal.torn_bytes_discarded", m.wal_torn_bytes_discarded);
  set("snapshot.written", m.snapshots_written);
  set("snapshot.failures", m.snapshot_failures);
  set("snapshot.last_millis", static_cast<uint64_t>(m.last_snapshot_millis));
  set("recovery.frames_replayed", m.frames_replayed);
  set("recovery.millis", static_cast<uint64_t>(m.recovery_millis));
}

#else  // !FRESQUE_TELEMETRY_ENABLED

void ExportToRegistry(const DurabilityMetrics&) {}

#endif  // FRESQUE_TELEMETRY_ENABLED

}  // namespace durability
}  // namespace fresque
