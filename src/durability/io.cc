#include "durability/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace fresque {
namespace durability {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  std::filesystem::path p(path);
  auto parent = p.parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

Result<Bytes> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Bytes out;
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

Status SyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open for fsync", path);
  Status st;
  if (::fsync(fd) != 0) st = Errno("fsync", path);
  ::close(fd);
  return st;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  Status st;
  if (::fsync(fd) != 0) st = Errno("fsync dir", dir);
  ::close(fd);
  return st;
}

Status WriteFileAtomic(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("create", tmp);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write", tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", tmp);
  }
  ::close(fd);
  return RenameAtomic(tmp, path);
}

Status RenameAtomic(const std::string& tmp_path, const std::string& path) {
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Errno("rename to", path);
  }
  return SyncDir(ParentDir(path));
}

}  // namespace durability
}  // namespace fresque
