#ifndef FRESQUE_DURABILITY_METRICS_H_
#define FRESQUE_DURABILITY_METRICS_H_

#include <cstdint>

namespace fresque {
namespace durability {

/// Cumulative durability counters, assembled on demand from the WAL, the
/// snapshot manager and (after a restart) the recovery run. Plain values,
/// no internal locking — same convention as engine::CollectorMetrics.
struct DurabilityMetrics {
  /// WAL frames appended (meta + start + batch + install frames).
  uint64_t wal_frames = 0;
  /// Record-batch frames among wal_frames (each packs many e-records).
  uint64_t wal_record_batches = 0;
  /// Frame bytes handed to the OS across all segments, including deleted
  /// ones (segment headers excluded).
  uint64_t wal_bytes = 0;
  /// fsync() calls issued by the WAL (policy-dependent).
  uint64_t wal_fsyncs = 0;
  uint64_t wal_segments_created = 0;
  /// Segments dropped by snapshot-driven truncation.
  uint64_t wal_segments_deleted = 0;
  /// Torn-tail bytes discarded when reopening an existing WAL.
  uint64_t wal_torn_bytes_discarded = 0;

  /// Snapshots successfully written (tmp + rename + manifest).
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
  double last_snapshot_millis = 0;

  /// Filled in by whoever ran recovery (zero on a fresh start).
  uint64_t frames_replayed = 0;
  double recovery_millis = 0;
};

/// Publishes a DurabilityMetrics snapshot into the process-wide telemetry
/// registry as gauges under "wal.*" / "snapshot.*" / "recovery.*", next
/// to the native wal.fsync_ns / wal.commit_ns / snapshot.write_ns
/// histograms the hot path records directly. No-op when built with
/// FRESQUE_TELEMETRY=OFF.
void ExportToRegistry(const DurabilityMetrics& m);

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_METRICS_H_
