#ifndef FRESQUE_DURABILITY_WAL_H_
#define FRESQUE_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/metrics.h"

namespace fresque {
namespace durability {

/// When the WAL fsync()s relative to Commit():
///   kAlways     — every Commit() fsyncs; an acked publication survives a
///                 power cut. The durable default.
///   kIntervalMs — Commit() fsyncs only if `fsync_interval_ms` elapsed
///                 since the last fsync; bounds data-at-risk by time.
///   kNever      — flush to the OS page cache only; survives a process
///                 kill but not a kernel crash. Fastest.
enum class FsyncPolicy : uint8_t { kAlways = 0, kIntervalMs = 1, kNever = 2 };

const char* FsyncPolicyToString(FsyncPolicy p);
/// Parses "always", "never", "interval" or "interval:<ms>" (the latter
/// also returns the interval through `interval_ms` if non-null).
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& s,
                                     uint64_t* interval_ms = nullptr);

struct WalOptions {
  /// Directory holding `wal-<base lsn>.log` segments. Created if missing.
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Minimum time between fsyncs under kIntervalMs.
  uint64_t fsync_interval_ms = 50;
  /// Rotate to a new segment once the current one exceeds this.
  size_t segment_bytes = 16u << 20;
  /// Frames are staged in memory and written out once the stage exceeds
  /// this (or on Commit/rotation), so hot-path appends are memcpy-cheap.
  size_t buffer_bytes = 256u << 10;
  /// Per-publication e-record batch cap: buffered records are packed into
  /// one kRecordBatch frame once this many accumulate (or earlier, when
  /// the publication installs or Commit() runs).
  size_t batch_records = 256;
  /// Time source for the interval fsync policy.
  const Clock* clock = SystemClock::Global();
};

/// Logical operation carried by one WAL frame.
enum class WalOp : uint8_t {
  /// Domain binning of the cloud store; first frame of a fresh log so
  /// recovery can rebuild a CloudServer without a snapshot.
  kMeta = 1,
  /// StartPublication(pn).
  kStart = 2,
  /// A batch of `<leaf, e-record>` ingests for one publication.
  kRecordBatch = 3,
  /// A batch of `<tag, e-record>` ingests for one publication.
  kTaggedBatch = 4,
  /// PublishIndexed(pn, payload): payload is the verbatim encoded
  /// IndexPublication (also the integrity evidence).
  kInstall = 5,
  /// PublishWithMatchingTable(pn, payload, table payload).
  kInstallTagged = 6,
};

const char* WalOpToString(WalOp op);

/// Decoded frame bodies (see the frame grammar in wal.cc / DESIGN.md §10).
struct WalMeta {
  double domain_min = 0;
  double domain_max = 0;
  double bin_width = 0;
};
struct WalRecordBatch {
  uint64_t pn = 0;
  std::vector<std::pair<uint32_t, Bytes>> records;  // <leaf, e-record>
};
struct WalTaggedBatch {
  uint64_t pn = 0;
  std::vector<std::pair<uint64_t, Bytes>> records;  // <tag, e-record>
};
struct WalInstall {
  uint64_t pn = 0;
  Bytes publication;  // encoded net::IndexPublication, verbatim
  Bytes table;        // encoded matching table; empty for kInstall
};

Result<WalMeta> DecodeWalMeta(const Bytes& body);
Result<uint64_t> DecodeWalStart(const Bytes& body);
Result<WalRecordBatch> DecodeWalRecordBatch(const Bytes& body);
Result<WalTaggedBatch> DecodeWalTaggedBatch(const Bytes& body);
/// Handles both kInstall and kInstallTagged bodies.
Result<WalInstall> DecodeWalInstall(WalOp op, const Bytes& body);

/// Append-only, CRC32-framed, segment-rotating write-ahead log.
///
/// Frame on disk: `u32 crc, u32 len, body[len]` where the body starts with
/// `u8 op, u64 lsn` and the CRC covers `len || body`. Segments are
/// `wal-<base lsn>.log` files starting with an 8-byte magic and the u64
/// base LSN; LSNs are assigned densely in append order, so file order ==
/// replay order.
///
/// Contract: after Commit() returns OK, every previously appended frame
/// survives a crash according to the fsync policy. Appends stage records
/// into per-publication batches and a write buffer; nothing is promised
/// until Commit().
///
/// Thread-safe; typically driven by the single CloudNode handler thread
/// while metrics are polled from elsewhere.
class Wal {
 public:
  /// Opens (or creates) the log in `opts.dir`. If the last segment ends in
  /// a torn frame — the previous process died mid-write — the tail is
  /// truncated away (counted in metrics) so new appends start clean.
  static Result<std::unique_ptr<Wal>> Open(WalOptions opts);

  /// Flushes staged frames to the OS (best effort, no fsync) and closes.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  Status AppendMeta(double domain_min, double domain_max, double bin_width)
      FRESQUE_EXCLUDES(mu_);
  Status AppendStart(uint64_t pn) FRESQUE_EXCLUDES(mu_);
  /// Stages one record into the publication's open batch frame.
  Status AppendRecord(uint64_t pn, uint32_t leaf, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);
  Status AppendTagged(uint64_t pn, uint64_t tag, const Bytes& e_record)
      FRESQUE_EXCLUDES(mu_);
  /// Seals the publication's record batch, then appends the install frame
  /// (so replay sees every record before the install).
  Status AppendInstall(uint64_t pn, const Bytes& publication)
      FRESQUE_EXCLUDES(mu_);
  Status AppendInstallTagged(uint64_t pn, const Bytes& publication,
                             const Bytes& table) FRESQUE_EXCLUDES(mu_);

  /// Makes everything appended so far durable per the fsync policy:
  /// seals all open batches, writes the stage to the segment file, and
  /// fsyncs (always / when the interval elapsed / never). Call before
  /// acking a publication.
  Status Commit() FRESQUE_EXCLUDES(mu_);

  /// Like Commit() but never fsyncs (flush to OS only).
  Status Flush() FRESQUE_EXCLUDES(mu_);

  /// Rotates to a fresh segment and deletes sealed segments whose every
  /// frame has LSN <= `through_lsn` (they are covered by a snapshot).
  /// Returns the number of segments deleted.
  Result<size_t> TruncateObsolete(uint64_t through_lsn) FRESQUE_EXCLUDES(mu_);

  /// LSN of the last frame appended (0 if none). Staged batches have no
  /// LSN yet; Commit()/install seals them first.
  uint64_t last_lsn() const FRESQUE_EXCLUDES(mu_);
  /// Frame bytes written to the OS so far (the durable prefix length
  /// under FsyncPolicy::kAlways after a Commit()).
  uint64_t flushed_bytes() const FRESQUE_EXCLUDES(mu_);

  void FillMetrics(DurabilityMetrics* m) const FRESQUE_EXCLUDES(mu_);

  const WalOptions& options() const { return opts_; }

  /// One decoded frame during replay.
  struct Frame {
    uint64_t lsn = 0;
    WalOp op = WalOp::kMeta;
    Bytes body;  // op-specific body, without the op/lsn prefix
  };

  struct ReplayStats {
    uint64_t frames = 0;          // frames delivered to the callback
    uint64_t frames_skipped = 0;  // lsn <= after_lsn (snapshot-covered)
    uint64_t last_lsn = 0;
    bool torn_tail = false;
    uint64_t torn_bytes = 0;
  };

  /// Replays every frame with lsn > `after_lsn` in LSN order. A torn or
  /// truncated frame at the very tail of the last segment ends the replay
  /// cleanly (reported in stats); anything inconsistent earlier is
  /// Corruption. The callback's first error aborts the replay.
  static Result<ReplayStats> Replay(
      const std::string& dir, uint64_t after_lsn,
      const std::function<Status(const Frame&)>& fn);

 private:
  explicit Wal(WalOptions opts);

  Status AppendFrameLocked(WalOp op, const Bytes& body)
      FRESQUE_REQUIRES(mu_);
  Status SealBatchLocked(uint64_t pn) FRESQUE_REQUIRES(mu_);
  Status SealAllBatchesLocked() FRESQUE_REQUIRES(mu_);
  Status WriteStageLocked() FRESQUE_REQUIRES(mu_);
  Status RotateLocked() FRESQUE_REQUIRES(mu_);
  Status OpenSegmentLocked(uint64_t base_lsn) FRESQUE_REQUIRES(mu_);
  Status FsyncLocked(bool force) FRESQUE_REQUIRES(mu_);

  const WalOptions opts_;

  mutable Mutex mu_;
  int fd_ FRESQUE_GUARDED_BY(mu_) = -1;
  uint64_t next_lsn_ FRESQUE_GUARDED_BY(mu_) = 1;
  size_t segment_written_ FRESQUE_GUARDED_BY(mu_) = 0;
  Bytes stage_ FRESQUE_GUARDED_BY(mu_);
  std::map<uint64_t, WalRecordBatch> record_batches_ FRESQUE_GUARDED_BY(mu_);
  std::map<uint64_t, WalTaggedBatch> tagged_batches_ FRESQUE_GUARDED_BY(mu_);
  struct Segment {
    std::string path;
    uint64_t base_lsn = 0;
  };
  std::vector<Segment> segments_ FRESQUE_GUARDED_BY(mu_);
  int64_t last_fsync_nanos_ FRESQUE_GUARDED_BY(mu_) = 0;

  // Metrics.
  uint64_t frames_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t record_batch_frames_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t flushed_bytes_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t fsyncs_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t segments_created_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t segments_deleted_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t torn_bytes_discarded_ FRESQUE_GUARDED_BY(mu_) = 0;
};

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_WAL_H_
