#include "durability/recovery.h"

#include <utility>

#include "durability/snapshot_manager.h"
#include "index/binning.h"
#include "net/payloads.h"
#include "obs/flight.h"

namespace fresque {
namespace durability {

Result<RecoveredCloud> RecoveryManager::Recover(const std::string& dir,
                                                const Clock* clock) {
  Stopwatch watch(clock);
  RecoveredCloud out;

  uint64_t after_lsn = 0;
  auto manifest = ReadManifest(dir);
  if (manifest.ok()) {
    if (!manifest->snapshot_file.empty()) {
      auto server =
          cloud::CloudServer::LoadSnapshot(dir + "/" + manifest->snapshot_file);
      if (!server.ok()) return server.status();
      out.server = std::move(*server);
      out.stats.snapshot_loaded = true;
      FRESQUE_FLIGHT_EVENT(kRecovery, "snapshot loaded", manifest->wal_lsn, 0,
                           0);
    }
    after_lsn = manifest->wal_lsn;
    out.stats.snapshot_lsn = manifest->wal_lsn;
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  auto apply = [&out](const Wal::Frame& frame) -> Status {
    cloud::CloudServer* server = out.server.get();
    if (frame.op != WalOp::kMeta && server == nullptr) {
      return Status::Corruption(
          "WAL frame before any meta frame and no snapshot");
    }
    switch (frame.op) {
      case WalOp::kMeta: {
        auto meta = DecodeWalMeta(frame.body);
        if (!meta.ok()) return meta.status();
        if (server != nullptr) return Status::OK();  // re-attach marker
        auto binning = index::DomainBinning::Create(
            meta->domain_min, meta->domain_max, meta->bin_width);
        if (!binning.ok()) return binning.status();
        out.server = std::make_unique<cloud::CloudServer>(
            std::move(binning).ValueOrDie());
        return Status::OK();
      }
      case WalOp::kStart: {
        auto pn = DecodeWalStart(frame.body);
        if (!pn.ok()) return pn.status();
        return server->StartPublication(*pn);
      }
      case WalOp::kRecordBatch: {
        auto batch = DecodeWalRecordBatch(frame.body);
        if (!batch.ok()) return batch.status();
        for (const auto& [leaf, rec] : batch->records) {
          FRESQUE_RETURN_NOT_OK(server->IngestRecord(batch->pn, leaf, rec));
          ++out.stats.records_replayed;
        }
        return Status::OK();
      }
      case WalOp::kTaggedBatch: {
        auto batch = DecodeWalTaggedBatch(frame.body);
        if (!batch.ok()) return batch.status();
        for (const auto& [tag, rec] : batch->records) {
          FRESQUE_RETURN_NOT_OK(server->IngestTagged(batch->pn, tag, rec));
          ++out.stats.records_replayed;
        }
        return Status::OK();
      }
      case WalOp::kInstall:
      case WalOp::kInstallTagged: {
        auto ins = DecodeWalInstall(frame.op, frame.body);
        if (!ins.ok()) return ins.status();
        auto pub = net::DecodeIndexPublication(ins->publication);
        if (!pub.ok()) return pub.status();
        if (frame.op == WalOp::kInstall) {
          auto stats = server->PublishIndexed(ins->pn, std::move(*pub),
                                              std::move(ins->publication));
          if (!stats.ok()) return stats.status();
        } else {
          auto table = net::DecodeMatchingTable(ins->table);
          if (!table.ok()) return table.status();
          auto stats = server->PublishWithMatchingTable(
              ins->pn, std::move(*pub), *table, std::move(ins->publication));
          if (!stats.ok()) return stats.status();
        }
        ++out.stats.installs_replayed;
        return Status::OK();
      }
    }
    return Status::Corruption("unhandled WAL op");
  };

  auto replay = Wal::Replay(dir, after_lsn, apply);
  if (!replay.ok()) return replay.status();
  out.stats.frames_replayed = replay->frames;
  out.stats.last_lsn = replay->last_lsn;
  out.stats.torn_tail = replay->torn_tail;
  out.stats.torn_bytes = replay->torn_bytes;

  if (out.server == nullptr) {
    return Status::NotFound("nothing to recover in " + dir +
                            " (no snapshot, no WAL frames)");
  }
  out.stats.recovery_millis = watch.ElapsedMillis();
  FRESQUE_FLIGHT_EVENT(kRecovery, "wal replay complete", out.stats.frames_replayed,
                       out.stats.last_lsn, out.stats.torn_tail ? 1 : 0);
  return out;
}

}  // namespace durability
}  // namespace fresque
