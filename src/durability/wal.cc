// WAL on-disk grammar (all integers little-endian):
//
//   segment file "wal-<base lsn, 10 digits>.log":
//     magic "FQWAL001" (8 bytes), u64 base_lsn, then frames back to back.
//
//   frame:
//     u32 crc        CRC32 over (len || body)
//     u32 len        body length, >= 9
//     body           u8 op, u64 lsn, op-specific payload
//
//   payloads:
//     kMeta          f64 domain_min, f64 domain_max, f64 bin_width
//     kStart         u64 pn
//     kRecordBatch   u64 pn, u32 n, n x { u32 leaf, bytes e_record }
//     kTaggedBatch   u64 pn, u32 n, n x { u64 tag, bytes e_record }
//     kInstall       u64 pn, bytes publication
//     kInstallTagged u64 pn, bytes publication, bytes table
//
// LSNs are dense and strictly increasing in file order, so replay order is
// simply segment order. The crash model is a prefix truncation (the file
// is a prefix of the intended byte stream), so "torn" can only ever be ONE
// incomplete frame at the very end of the final segment: an incomplete
// frame header, a body shorter than its length field, or a CRC mismatch on
// the frame that ends exactly at EOF. Tolerated (and cut off) there,
// Corruption anywhere else — a bad CRC followed by more data, a
// structurally impossible length, bad magic, an unknown op or a
// non-increasing LSN are damage a crash cannot explain, and replaying past
// them would fabricate state.

#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "durability/crc32.h"
#include "durability/io.h"
#include "obs/flight.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace durability {

namespace {

constexpr char kSegMagic[8] = {'F', 'Q', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kSegHeaderSize = 16;
constexpr size_t kFrameHeaderSize = 8;  // crc + len
constexpr size_t kFrameBodyPrefix = 9;  // op + lsn
constexpr size_t kMaxFrameBody = 256u << 20;

void PutLE32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutLE64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetLE32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetLE64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

std::string SegmentName(uint64_t base_lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%010llu.log",
                static_cast<unsigned long long>(base_lsn));
  return name;
}

struct SegInfo {
  std::string path;
  uint64_t base_lsn = 0;
};

/// Finds wal-*.log files in `dir`, ordered by the base LSN encoded in the
/// file name (which is also replay order).
Result<std::vector<SegInfo>> ListSegments(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<SegInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    unsigned long long base = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%10llu.log%n", &base, &consumed) != 1 ||
        static_cast<size_t>(consumed) != name.size()) {
      continue;
    }
    out.push_back({entry.path().string(), base});
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end(), [](const SegInfo& a, const SegInfo& b) {
    return a.base_lsn < b.base_lsn;
  });
  return out;
}

struct ScanResult {
  /// Byte offset where the last fully valid frame ends (never less than
  /// the header size for a well-formed segment).
  size_t valid_end = 0;
  uint64_t last_lsn = 0;
  uint64_t frames = 0;
  bool torn = false;
  size_t torn_bytes = 0;
};

/// Walks every frame of one segment image, stopping at the first torn or
/// invalid frame. `fn` (optional) receives each valid frame. Structural
/// impossibilities that a torn write cannot explain (bad magic with a full
/// header, an unknown op under a valid CRC, non-increasing LSNs) are
/// Corruption; everything else at the cut point is reported as torn.
Result<ScanResult> ScanSegment(
    const Bytes& data, const SegInfo& seg,
    const std::function<Status(Wal::Frame&&)>& fn) {
  ScanResult res;
  if (data.size() < kSegHeaderSize) {
    // The previous process died while writing the 16-byte header.
    res.torn = true;
    res.torn_bytes = data.size();
    return res;
  }
  if (!std::equal(std::begin(kSegMagic), std::end(kSegMagic),
                  reinterpret_cast<const char*>(data.data()))) {
    return Status::Corruption("bad WAL magic in " + seg.path);
  }
  if (GetLE64(data.data() + 8) != seg.base_lsn) {
    return Status::Corruption("WAL header/filename base LSN mismatch in " +
                              seg.path);
  }
  res.valid_end = kSegHeaderSize;
  uint64_t prev_lsn = seg.base_lsn == 0 ? 0 : seg.base_lsn - 1;
  size_t pos = kSegHeaderSize;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderSize) break;  // torn header
    const uint32_t crc = GetLE32(data.data() + pos);
    const uint32_t len = GetLE32(data.data() + pos + 4);
    if (len < kFrameBodyPrefix || len > kMaxFrameBody) {
      // A truncation leaves every present byte intact, so a fully present
      // but impossible length field is damage, not an in-flight write.
      return Status::Corruption("impossible WAL frame length in " + seg.path);
    }
    if (len > data.size() - pos - kFrameHeaderSize) break;  // torn body
    const uint8_t* body = data.data() + pos + kFrameHeaderSize;
    uint8_t lenb[4];
    PutLE32(lenb, len);
    uint32_t actual = Crc32(lenb, sizeof(lenb));
    actual = Crc32(body, len, actual);
    if (actual != crc) {
      if (pos + kFrameHeaderSize + len < data.size()) {
        // More frames follow the mismatch: a torn write cannot be in the
        // middle of the stream. Refuse rather than silently drop them.
        return Status::Corruption("WAL frame CRC mismatch mid-segment in " +
                                  seg.path);
      }
      break;  // torn final write
    }
    const uint8_t op_raw = body[0];
    const uint64_t lsn = GetLE64(body + 1);
    if (op_raw < static_cast<uint8_t>(WalOp::kMeta) ||
        op_raw > static_cast<uint8_t>(WalOp::kInstallTagged)) {
      return Status::Corruption("unknown WAL op " + std::to_string(op_raw) +
                                " in " + seg.path);
    }
    if (lsn <= prev_lsn) {
      return Status::Corruption("non-increasing WAL LSN in " + seg.path);
    }
    if (fn) {
      Wal::Frame frame;
      frame.lsn = lsn;
      frame.op = static_cast<WalOp>(op_raw);
      frame.body.assign(body + kFrameBodyPrefix, body + len);
      FRESQUE_RETURN_NOT_OK(fn(std::move(frame)));
    }
    prev_lsn = lsn;
    pos += kFrameHeaderSize + len;
    res.valid_end = pos;
    res.last_lsn = lsn;
    ++res.frames;
  }
  if (pos < data.size()) {
    res.torn = true;
    res.torn_bytes = data.size() - res.valid_end;
  }
  return res;
}

}  // namespace

const char* FsyncPolicyToString(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kIntervalMs:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& s,
                                     uint64_t* interval_ms) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "never") return FsyncPolicy::kNever;
  if (s == "interval") return FsyncPolicy::kIntervalMs;
  const std::string prefix = "interval:";
  if (s.rfind(prefix, 0) == 0) {
    char* end = nullptr;
    errno = 0;
    unsigned long long ms = std::strtoull(s.c_str() + prefix.size(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        end == s.c_str() + prefix.size()) {
      return Status::InvalidArgument("bad fsync interval in \"" + s + "\"");
    }
    if (interval_ms != nullptr) *interval_ms = ms;
    return FsyncPolicy::kIntervalMs;
  }
  return Status::InvalidArgument(
      "unknown fsync policy \"" + s +
      "\" (want always|never|interval|interval:<ms>)");
}

const char* WalOpToString(WalOp op) {
  switch (op) {
    case WalOp::kMeta:
      return "meta";
    case WalOp::kStart:
      return "start";
    case WalOp::kRecordBatch:
      return "record-batch";
    case WalOp::kTaggedBatch:
      return "tagged-batch";
    case WalOp::kInstall:
      return "install";
    case WalOp::kInstallTagged:
      return "install-tagged";
  }
  return "?";
}

Result<WalMeta> DecodeWalMeta(const Bytes& body) {
  BinaryReader r(body);
  auto dmin = r.GetF64();
  auto dmax = r.GetF64();
  auto width = r.GetF64();
  if (!dmin.ok() || !dmax.ok() || !width.ok() || !r.exhausted()) {
    return Status::Corruption("bad WAL meta frame");
  }
  WalMeta m;
  m.domain_min = *dmin;
  m.domain_max = *dmax;
  m.bin_width = *width;
  return m;
}

Result<uint64_t> DecodeWalStart(const Bytes& body) {
  BinaryReader r(body);
  auto pn = r.GetU64();
  if (!pn.ok() || !r.exhausted()) {
    return Status::Corruption("bad WAL start frame");
  }
  return *pn;
}

Result<WalRecordBatch> DecodeWalRecordBatch(const Bytes& body) {
  BinaryReader r(body);
  auto pn = r.GetU64();
  auto n = r.GetU32();
  if (!pn.ok() || !n.ok()) {
    return Status::Corruption("bad WAL record batch header");
  }
  WalRecordBatch batch;
  batch.pn = *pn;
  for (uint32_t i = 0; i < *n; ++i) {
    auto leaf = r.GetU32();
    auto rec = r.GetBytes();
    if (!leaf.ok() || !rec.ok()) {
      return Status::Corruption("truncated WAL record batch");
    }
    batch.records.emplace_back(*leaf, std::move(*rec));
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes in WAL record batch");
  }
  return batch;
}

Result<WalTaggedBatch> DecodeWalTaggedBatch(const Bytes& body) {
  BinaryReader r(body);
  auto pn = r.GetU64();
  auto n = r.GetU32();
  if (!pn.ok() || !n.ok()) {
    return Status::Corruption("bad WAL tagged batch header");
  }
  WalTaggedBatch batch;
  batch.pn = *pn;
  for (uint32_t i = 0; i < *n; ++i) {
    auto tag = r.GetU64();
    auto rec = r.GetBytes();
    if (!tag.ok() || !rec.ok()) {
      return Status::Corruption("truncated WAL tagged batch");
    }
    batch.records.emplace_back(*tag, std::move(*rec));
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes in WAL tagged batch");
  }
  return batch;
}

Result<WalInstall> DecodeWalInstall(WalOp op, const Bytes& body) {
  BinaryReader r(body);
  auto pn = r.GetU64();
  auto publication = r.GetBytes();
  if (!pn.ok() || !publication.ok()) {
    return Status::Corruption("bad WAL install frame");
  }
  WalInstall ins;
  ins.pn = *pn;
  ins.publication = std::move(*publication);
  if (op == WalOp::kInstallTagged) {
    auto table = r.GetBytes();
    if (!table.ok()) return Status::Corruption("bad WAL install table");
    ins.table = std::move(*table);
  }
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes in WAL install frame");
  }
  return ins;
}

Wal::Wal(WalOptions opts) : opts_(std::move(opts)) {}

Wal::~Wal() {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    // Best effort: push staged frames to the OS so a clean shutdown keeps
    // the tail. No fsync — destructors cannot report failures anyway and
    // Commit() is the durability point.
    (void)SealAllBatchesLocked();
    (void)WriteStageLocked();
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(WalOptions opts) {
  if (opts.dir.empty()) {
    return Status::InvalidArgument("WalOptions.dir is empty");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opts.dir, ec);
  if (ec) {
    return Status::IOError("create " + opts.dir + ": " + ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(std::move(opts)));
  MutexLock lock(wal->mu_);

  auto listed = ListSegments(wal->opts_.dir);
  if (!listed.ok()) return listed.status();
  for (const auto& seg : *listed) {
    wal->segments_.push_back({seg.path, seg.base_lsn});
  }

  if (wal->segments_.empty()) {
    FRESQUE_RETURN_NOT_OK(wal->OpenSegmentLocked(1));
    return wal;
  }

  // Reopen: find the end of the valid frame run in the final segment,
  // truncate any torn tail, and continue appending after it.
  const Segment last = wal->segments_.back();
  auto data = ReadFile(last.path);
  if (!data.ok()) return data.status();
  auto scan = ScanSegment(*data, {last.path, last.base_lsn}, nullptr);
  if (!scan.ok()) return scan.status();
  wal->next_lsn_ = scan->frames > 0
                       ? scan->last_lsn + 1
                       : (last.base_lsn > 0 ? last.base_lsn : 1);
  if (scan->torn) {
    wal->torn_bytes_discarded_ = scan->torn_bytes;
    if (::truncate(last.path.c_str(),
                   static_cast<off_t>(scan->valid_end)) != 0) {
      return Errno("truncate torn tail of", last.path);
    }
  }
  int fd = ::open(last.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return Errno("open", last.path);
  wal->fd_ = fd;
  wal->segment_written_ = scan->torn ? scan->valid_end : data->size();
  if (wal->segment_written_ < kSegHeaderSize) {
    // The torn tail was inside the header itself; rewrite it.
    uint8_t header[kSegHeaderSize];
    std::memcpy(header, kSegMagic, sizeof(kSegMagic));
    PutLE64(header + 8, last.base_lsn);
    if (::write(fd, header, sizeof(header)) !=
        static_cast<ssize_t>(sizeof(header))) {
      return Errno("rewrite header of", last.path);
    }
    wal->segment_written_ = kSegHeaderSize;
  }
  return wal;
}

Status Wal::OpenSegmentLocked(uint64_t base_lsn) {
  const std::string path = opts_.dir + "/" + SegmentName(base_lsn);
  int fd = ::open(path.c_str(),
                  O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("create segment", path);
  uint8_t header[kSegHeaderSize];
  std::memcpy(header, kSegMagic, sizeof(kSegMagic));
  PutLE64(header + 8, base_lsn);
  if (::write(fd, header, sizeof(header)) !=
      static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Errno("write header of", path);
  }
  fd_ = fd;
  segment_written_ = kSegHeaderSize;
  segments_.push_back({path, base_lsn});
  ++segments_created_;
  FRESQUE_FLIGHT_EVENT(kDurability, "wal segment opened", base_lsn,
                       segments_created_, 0);
  return SyncDir(opts_.dir);
}

Status Wal::RotateLocked() {
  if (segment_written_ <= kSegHeaderSize) return Status::OK();  // empty
  FRESQUE_RETURN_NOT_OK(WriteStageLocked());
  // Seal: the closed segment never changes again. fsync it now (unless
  // the policy is kNever) so later fsyncs only ever touch the active fd.
  if (opts_.fsync_policy != FsyncPolicy::kNever && fd_ >= 0) {
    if (::fsync(fd_) != 0) return Errno("fsync sealed", segments_.back().path);
    ++fsyncs_;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  return OpenSegmentLocked(next_lsn_);
}

Status Wal::WriteStageLocked() {
  if (stage_.empty()) return Status::OK();
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  size_t off = 0;
  while (off < stage_.size()) {
    ssize_t n = ::write(fd_, stage_.data() + off, stage_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", segments_.back().path);
    }
    off += static_cast<size_t>(n);
  }
  flushed_bytes_ += stage_.size();
  segment_written_ += stage_.size();
  stage_.clear();
  if (segment_written_ >= opts_.segment_bytes) return RotateLocked();
  return Status::OK();
}

Status Wal::AppendFrameLocked(WalOp op, const Bytes& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (payload.size() > kMaxFrameBody - kFrameBodyPrefix) {
    return Status::InvalidArgument("WAL frame payload too large");
  }
  const uint64_t lsn = next_lsn_;
  const uint32_t len = static_cast<uint32_t>(kFrameBodyPrefix + payload.size());
  uint8_t lenb[4];
  PutLE32(lenb, len);
  uint8_t prefix[kFrameBodyPrefix];
  prefix[0] = static_cast<uint8_t>(op);
  PutLE64(prefix + 1, lsn);
  uint32_t crc = Crc32(lenb, sizeof(lenb));
  crc = Crc32(prefix, sizeof(prefix), crc);
  crc = Crc32(payload.data(), payload.size(), crc);
  uint8_t crcb[4];
  PutLE32(crcb, crc);

  stage_.insert(stage_.end(), crcb, crcb + sizeof(crcb));
  stage_.insert(stage_.end(), lenb, lenb + sizeof(lenb));
  stage_.insert(stage_.end(), prefix, prefix + sizeof(prefix));
  stage_.insert(stage_.end(), payload.begin(), payload.end());

  ++next_lsn_;
  ++frames_;
  if (stage_.size() >= opts_.buffer_bytes) return WriteStageLocked();
  return Status::OK();
}

Status Wal::SealBatchLocked(uint64_t pn) {
  if (auto it = record_batches_.find(pn); it != record_batches_.end()) {
    BinaryWriter w;
    w.PutU64(pn);
    w.PutU32(static_cast<uint32_t>(it->second.records.size()));
    for (const auto& [leaf, rec] : it->second.records) {
      w.PutU32(leaf);
      w.PutBytes(rec);
    }
    record_batches_.erase(it);
    ++record_batch_frames_;
    FRESQUE_RETURN_NOT_OK(AppendFrameLocked(WalOp::kRecordBatch, w.buffer()));
  }
  if (auto it = tagged_batches_.find(pn); it != tagged_batches_.end()) {
    BinaryWriter w;
    w.PutU64(pn);
    w.PutU32(static_cast<uint32_t>(it->second.records.size()));
    for (const auto& [tag, rec] : it->second.records) {
      w.PutU64(tag);
      w.PutBytes(rec);
    }
    tagged_batches_.erase(it);
    ++record_batch_frames_;
    FRESQUE_RETURN_NOT_OK(AppendFrameLocked(WalOp::kTaggedBatch, w.buffer()));
  }
  return Status::OK();
}

Status Wal::SealAllBatchesLocked() {
  while (!record_batches_.empty()) {
    FRESQUE_RETURN_NOT_OK(SealBatchLocked(record_batches_.begin()->first));
  }
  while (!tagged_batches_.empty()) {
    FRESQUE_RETURN_NOT_OK(SealBatchLocked(tagged_batches_.begin()->first));
  }
  return Status::OK();
}

Status Wal::AppendMeta(double domain_min, double domain_max,
                       double bin_width) {
  MutexLock lock(mu_);
  BinaryWriter w;
  w.PutF64(domain_min);
  w.PutF64(domain_max);
  w.PutF64(bin_width);
  return AppendFrameLocked(WalOp::kMeta, w.buffer());
}

Status Wal::AppendStart(uint64_t pn) {
  MutexLock lock(mu_);
  BinaryWriter w;
  w.PutU64(pn);
  return AppendFrameLocked(WalOp::kStart, w.buffer());
}

Status Wal::AppendRecord(uint64_t pn, uint32_t leaf, const Bytes& e_record) {
  MutexLock lock(mu_);
  auto& batch = record_batches_[pn];
  batch.pn = pn;
  batch.records.emplace_back(leaf, e_record);
  if (batch.records.size() >= opts_.batch_records) return SealBatchLocked(pn);
  return Status::OK();
}

Status Wal::AppendTagged(uint64_t pn, uint64_t tag, const Bytes& e_record) {
  MutexLock lock(mu_);
  auto& batch = tagged_batches_[pn];
  batch.pn = pn;
  batch.records.emplace_back(tag, e_record);
  if (batch.records.size() >= opts_.batch_records) return SealBatchLocked(pn);
  return Status::OK();
}

Status Wal::AppendInstall(uint64_t pn, const Bytes& publication) {
  MutexLock lock(mu_);
  FRESQUE_RETURN_NOT_OK(SealBatchLocked(pn));
  BinaryWriter w;
  w.PutU64(pn);
  w.PutBytes(publication);
  return AppendFrameLocked(WalOp::kInstall, w.buffer());
}

Status Wal::AppendInstallTagged(uint64_t pn, const Bytes& publication,
                                const Bytes& table) {
  MutexLock lock(mu_);
  FRESQUE_RETURN_NOT_OK(SealBatchLocked(pn));
  BinaryWriter w;
  w.PutU64(pn);
  w.PutBytes(publication);
  w.PutBytes(table);
  return AppendFrameLocked(WalOp::kInstallTagged, w.buffer());
}

Status Wal::FsyncLocked(bool force) {
  bool due = force;
  switch (opts_.fsync_policy) {
    case FsyncPolicy::kAlways:
      due = true;
      break;
    case FsyncPolicy::kIntervalMs: {
      const int64_t now = opts_.clock->NowNanos();
      if (now - last_fsync_nanos_ >=
          static_cast<int64_t>(opts_.fsync_interval_ms) * 1000000) {
        due = true;
      }
      break;
    }
    case FsyncPolicy::kNever:
      break;
  }
  if (!due) return Status::OK();
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  {
    FRESQUE_TRACE_SPAN("wal.fsync");
    const int64_t fsync_start = FRESQUE_TELEMETRY_NOW_NS();
    if (::fsync(fd_) != 0) return Errno("fsync", segments_.back().path);
    FRESQUE_HISTOGRAM_RECORD("wal.fsync_ns",
                             FRESQUE_TELEMETRY_NOW_NS() - fsync_start);
  }
  ++fsyncs_;
  last_fsync_nanos_ = opts_.clock->NowNanos();
  return Status::OK();
}

Status Wal::Commit() {
  MutexLock lock(mu_);
  const int64_t commit_start = FRESQUE_TELEMETRY_NOW_NS();
  FRESQUE_RETURN_NOT_OK(SealAllBatchesLocked());
  FRESQUE_RETURN_NOT_OK(WriteStageLocked());
  FRESQUE_RETURN_NOT_OK(FsyncLocked(false));
  FRESQUE_HISTOGRAM_RECORD("wal.commit_ns",
                           FRESQUE_TELEMETRY_NOW_NS() - commit_start);
  return Status::OK();
}

Status Wal::Flush() {
  MutexLock lock(mu_);
  FRESQUE_RETURN_NOT_OK(SealAllBatchesLocked());
  return WriteStageLocked();
}

Result<size_t> Wal::TruncateObsolete(uint64_t through_lsn) {
  MutexLock lock(mu_);
  FRESQUE_RETURN_NOT_OK(SealAllBatchesLocked());
  FRESQUE_RETURN_NOT_OK(WriteStageLocked());
  FRESQUE_RETURN_NOT_OK(RotateLocked());
  // Segment i covers [base_i, base_{i+1} - 1]; it is obsolete once its
  // last frame is <= through_lsn. The active (last) segment never goes.
  size_t deleted = 0;
  while (segments_.size() > 1 &&
         segments_[1].base_lsn <= through_lsn + 1) {
    if (::unlink(segments_.front().path.c_str()) != 0) {
      return Errno("unlink", segments_.front().path);
    }
    segments_.erase(segments_.begin());
    ++deleted;
    ++segments_deleted_;
  }
  if (deleted > 0) FRESQUE_RETURN_NOT_OK(SyncDir(opts_.dir));
  return deleted;
}

uint64_t Wal::last_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_ - 1;
}

uint64_t Wal::flushed_bytes() const {
  MutexLock lock(mu_);
  return flushed_bytes_;
}

void Wal::FillMetrics(DurabilityMetrics* m) const {
  MutexLock lock(mu_);
  m->wal_frames = frames_;
  m->wal_record_batches = record_batch_frames_;
  m->wal_bytes = flushed_bytes_;
  m->wal_fsyncs = fsyncs_;
  m->wal_segments_created = segments_created_;
  m->wal_segments_deleted = segments_deleted_;
  m->wal_torn_bytes_discarded = torn_bytes_discarded_;
}

Result<Wal::ReplayStats> Wal::Replay(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(const Frame&)>& fn) {
  auto listed = ListSegments(dir);
  if (!listed.ok()) return listed.status();
  ReplayStats stats;
  uint64_t prev_lsn = 0;
  for (size_t i = 0; i < listed->size(); ++i) {
    const SegInfo& seg = (*listed)[i];
    const bool is_last = i + 1 == listed->size();
    auto data = ReadFile(seg.path);
    if (!data.ok()) return data.status();
    auto deliver = [&](Frame&& frame) -> Status {
      if (prev_lsn != 0 && frame.lsn <= prev_lsn) {
        return Status::Corruption("WAL LSN went backwards across segments");
      }
      prev_lsn = frame.lsn;
      stats.last_lsn = frame.lsn;
      if (frame.lsn <= after_lsn) {
        ++stats.frames_skipped;
        return Status::OK();
      }
      ++stats.frames;
      return fn(frame);
    };
    auto scan = ScanSegment(*data, seg, deliver);
    if (!scan.ok()) return scan.status();
    if (scan->torn) {
      if (!is_last) {
        return Status::Corruption("torn frame inside non-final WAL segment " +
                                  seg.path);
      }
      stats.torn_tail = true;
      stats.torn_bytes = scan->torn_bytes;
    }
  }
  return stats;
}

}  // namespace durability
}  // namespace fresque
