#include "durability/snapshot_manager.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "durability/io.h"
#include "obs/flight.h"
#include "telemetry/telemetry.h"

namespace fresque {
namespace durability {

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestMagic = "FQMANIFEST1";

std::string SnapshotName(uint64_t wal_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "snapshot-%010llu.bin",
                static_cast<unsigned long long>(wal_lsn));
  return name;
}

}  // namespace

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no MANIFEST in " + dir);
  }
  auto data = ReadFile(path);
  if (!data.ok()) return data.status();
  std::string text(data->begin(), data->end());

  Manifest m;
  bool magic_ok = false;
  bool lsn_ok = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == kManifestMagic) {
      magic_ok = true;
    } else if (line.rfind("snapshot=", 0) == 0) {
      m.snapshot_file = line.substr(9);
    } else if (line.rfind("wal_lsn=", 0) == 0) {
      char* end = nullptr;
      m.wal_lsn = std::strtoull(line.c_str() + 8, &end, 10);
      lsn_ok = end != nullptr && *end == '\0';
    }
  }
  if (!magic_ok || !lsn_ok) {
    return Status::Corruption("malformed MANIFEST in " + dir);
  }
  if (!m.snapshot_file.empty() &&
      m.snapshot_file.find('/') != std::string::npos) {
    return Status::Corruption("MANIFEST snapshot path escapes data dir");
  }
  return m;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  // fresque-lint: allow(hot-alloc) manifest writes run at snapshot cadence, not per record
  std::string text = std::string(kManifestMagic) + "\n" +
                     "snapshot=" + m.snapshot_file + "\n" +
                     "wal_lsn=" + std::to_string(m.wal_lsn) +  // fresque-lint: allow(hot-alloc) snapshot cadence
                     "\n";
  // fresque-lint: allow(hot-alloc) same snapshot-cadence path as above
  Bytes data(text.begin(), text.end());
  return WriteFileAtomic(dir + "/" + kManifestName, data);
}

SnapshotManager::SnapshotManager(SnapshotOptions opts,
                                 const cloud::CloudServer* server, Wal* wal)
    : opts_(std::move(opts)), server_(server), wal_(wal) {}

Status SnapshotManager::NoteInstall() {
  MutexLock lock(mu_);
  ++installs_since_snapshot_;
  if (opts_.snapshot_every_installs == 0 ||
      installs_since_snapshot_ < opts_.snapshot_every_installs) {
    return Status::OK();
  }
  return WriteSnapshotLocked();
}

Status SnapshotManager::WriteSnapshot() {
  MutexLock lock(mu_);
  return WriteSnapshotLocked();
}

Status SnapshotManager::WriteSnapshotLocked() {
  FRESQUE_TRACE_SPAN("snapshot");
  const int64_t write_start = FRESQUE_TELEMETRY_NOW_NS();
  Stopwatch watch(opts_.clock);
  // Everything appended so far is applied (appender == snapshotter
  // thread); flush it so the manifest's LSN is never ahead of the log.
  Status st = wal_->Flush();
  const uint64_t lsn = wal_->last_lsn();
  const std::string file = SnapshotName(lsn);
  const std::string tmp = opts_.dir + "/" + file + ".tmp";

  if (st.ok()) st = server_->SaveSnapshot(tmp);
  if (st.ok()) st = SyncFile(tmp);
  if (st.ok()) st = RenameAtomic(tmp, opts_.dir + "/" + file);
  if (st.ok()) st = WriteManifest(opts_.dir, {file, lsn});
  if (!st.ok()) {
    ++snapshot_failures_;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // best-effort cleanup
    return st;
  }

  // The snapshot is durable and visible; the log prefix and any older
  // snapshot files are now garbage.
  auto dropped = wal_->TruncateObsolete(lsn);
  if (!dropped.ok()) {
    ++snapshot_failures_;
    return dropped.status();
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opts_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 && name != file) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }

  installs_since_snapshot_ = 0;
  ++snapshots_written_;
  last_snapshot_millis_ = watch.ElapsedMillis();
  FRESQUE_HISTOGRAM_RECORD("snapshot.write_ns",
                           FRESQUE_TELEMETRY_NOW_NS() - write_start);
  FRESQUE_FLIGHT_EVENT(kDurability, "snapshot written", lsn,
                       snapshots_written_, 0);
  return Status::OK();
}

void SnapshotManager::FillMetrics(DurabilityMetrics* m) const {
  MutexLock lock(mu_);
  m->snapshots_written = snapshots_written_;
  m->snapshot_failures = snapshot_failures_;
  m->last_snapshot_millis = last_snapshot_millis_;
}

}  // namespace durability
}  // namespace fresque
