#ifndef FRESQUE_DURABILITY_CRC32_H_
#define FRESQUE_DURABILITY_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace fresque {
namespace durability {

/// CRC-32 (IEEE 802.3, the zlib/ethernet polynomial) over `data`.
///
/// `seed` is the running CRC of everything hashed so far, letting callers
/// chain calls over discontiguous buffers:
///   uint32_t c = Crc32(header, hlen);
///   c = Crc32(body, blen, c);
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(const Bytes& b, uint32_t seed = 0) {
  return Crc32(b.data(), b.size(), seed);
}

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_CRC32_H_
