#ifndef FRESQUE_DURABILITY_SNAPSHOT_MANAGER_H_
#define FRESQUE_DURABILITY_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cloud/server.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/metrics.h"
#include "durability/wal.h"

namespace fresque {
namespace durability {

/// What the MANIFEST file points at: the current snapshot (may be empty on
/// a log-only data dir) and the last WAL LSN the snapshot covers.
struct Manifest {
  std::string snapshot_file;  // relative to the data dir
  uint64_t wal_lsn = 0;
};

/// Reads `dir`/MANIFEST. NotFound when the data dir has no manifest yet.
Result<Manifest> ReadManifest(const std::string& dir);

/// Atomically replaces `dir`/MANIFEST (tmp + rename + dir fsync).
Status WriteManifest(const std::string& dir, const Manifest& m);

struct SnapshotOptions {
  /// Data directory (shared with the WAL).
  std::string dir;
  /// Write a snapshot automatically every N successful publication
  /// installs; 0 disables automatic snapshots (WriteSnapshot() only).
  uint64_t snapshot_every_installs = 8;
  const Clock* clock = SystemClock::Global();
};

/// Periodically serializes the whole CloudServer through its existing
/// snapshot codec, installs the file atomically (tmp + rename + MANIFEST
/// flip), then truncates WAL segments the snapshot made obsolete.
///
/// Crash-safety argument: the snapshot becomes visible only via the
/// MANIFEST rename, and WAL segments are deleted only after the MANIFEST
/// (and the snapshot it names) are fsynced — at every instant, MANIFEST +
/// remaining WAL tail reconstruct the full acked state.
///
/// Call sites run on the CloudNode handler thread, which is also the only
/// WAL appender, so `server` is quiescent during serialization and
/// `wal->last_lsn()` exactly bounds the state being snapshotted.
class SnapshotManager {
 public:
  /// `server` and `wal` must outlive the manager.
  SnapshotManager(SnapshotOptions opts, const cloud::CloudServer* server,
                  Wal* wal);

  /// Counts one successful install; snapshots when the configured cadence
  /// is reached. Failures are reported (and counted) but leave the
  /// previous snapshot + WAL intact — durability never regresses.
  Status NoteInstall() FRESQUE_EXCLUDES(mu_);

  /// Unconditionally writes a snapshot now and truncates obsolete WAL
  /// segments.
  Status WriteSnapshot() FRESQUE_EXCLUDES(mu_);

  void FillMetrics(DurabilityMetrics* m) const FRESQUE_EXCLUDES(mu_);

 private:
  Status WriteSnapshotLocked() FRESQUE_REQUIRES(mu_);

  const SnapshotOptions opts_;
  const cloud::CloudServer* server_;
  Wal* wal_;

  mutable Mutex mu_;
  uint64_t installs_since_snapshot_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t snapshots_written_ FRESQUE_GUARDED_BY(mu_) = 0;
  uint64_t snapshot_failures_ FRESQUE_GUARDED_BY(mu_) = 0;
  double last_snapshot_millis_ FRESQUE_GUARDED_BY(mu_) = 0;
};

}  // namespace durability
}  // namespace fresque

#endif  // FRESQUE_DURABILITY_SNAPSHOT_MANAGER_H_
