#include "telemetry/metrics.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fresque {
namespace telemetry {

// ---------------------------------------------------------------------------
// Histogram

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(b));
      const double frac =
          (target - static_cast<double>(prev)) /
          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * (frac < 0 ? 0 : frac > 1 ? 1 : frac);
    }
  }
  return static_cast<double>(Histogram::BucketUpperBound(buckets.size() - 1));
}

// ---------------------------------------------------------------------------
// Registry

Registry* Registry::Global() {
  static Registry* registry = new Registry();  // leaked: lives past exit
  return registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.sum = h->Sum();
    for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
      hs.buckets[b] = h->BucketValue(b);
      hs.count += hs.buckets[b];
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

/// "ingest.records_in" -> "fresque_ingest_records_in".
std::string PromName(const std::string& name) {
  std::string out = "fresque_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void JsonEscape(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string p = PromName(h.name);
    out << "# TYPE " << p << " histogram\n";
    // Cumulative buckets; stop at the last non-empty bucket, +Inf closes.
    size_t last = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    uint64_t cum = 0;
    for (size_t b = 0; b <= last; ++b) {
      cum += h.buckets[b];
      out << p << "_bucket{le=\"" << Histogram::BucketUpperBound(b) << "\"} "
          << cum << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << p << "_sum " << h.sum << "\n"
        << p << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string ToJson(const MetricsSnapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ");
    JsonEscape(snap.counters[i].first, out);
    out << ": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ");
    JsonEscape(snap.gauges[i].first, out);
    out << ": " << snap.gauges[i].second;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i ? ",\n    " : "\n    ");
    JsonEscape(h.name, out);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out << (first ? "" : ", ") << "[" << b << ", " << h.buckets[b] << "]";
      first = false;
    }
    out << "]}";
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (full grammar; numbers kept as raw text so uint64
// counters round-trip exactly).

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // raw number text, or decoded string
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::Corruption("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > 64) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end");
    Result<JsonValue> out;  // error state until a branch assigns
    const char c = s_[pos_];
    if (c == '{') {
      out = ParseObject();
    } else if (c == '[') {
      out = ParseArray();
    } else if (c == '"') {
      out = ParseString();
    } else if (c == 't' || c == 'f' || c == 'n') {
      out = ParseKeyword();
    } else {
      out = ParseNumber();
    }
    --depth_;
    return out;
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Err("expected ':'");
      auto val = ParseValue();
      if (!val.ok()) return val;
      v.object.emplace_back(std::move(key->text), std::move(*val));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return v;
    while (true) {
      auto val = ParseValue();
      if (!val.ok()) return val;
      v.array.push_back(std::move(*val));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Err("expected string");
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            v.text.push_back(e);
            break;
          case 'n':
            v.text.push_back('\n');
            break;
          case 't':
            v.text.push_back('\t');
            break;
          case 'r':
            v.text.push_back('\r');
            break;
          case 'b':
          case 'f':
            v.text.push_back(' ');
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
            // Decoded only far enough for ASCII round-trips.
            unsigned code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr,
                                         16);
            pos_ += 4;
            v.text.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        v.text.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseKeyword() {
    auto match = [&](const char* kw) {
      size_t n = std::string(kw).size();
      if (s_.compare(pos_, n, kw) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    JsonValue v;
    if (match("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (match("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (match("null")) return v;
    return Err("bad keyword");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = s_.substr(start, pos_ - start);
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<uint64_t> AsU64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    return Status::Corruption("json: expected number");
  }
  errno = 0;
  char* end = nullptr;
  uint64_t out = std::strtoull(v.text.c_str(), &end, 10);
  if (errno != 0 || end == v.text.c_str() || *end != '\0') {
    return Status::Corruption("json: bad uint64 \"" + v.text + "\"");
  }
  return out;
}

Result<int64_t> AsI64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    return Status::Corruption("json: expected number");
  }
  errno = 0;
  char* end = nullptr;
  int64_t out = std::strtoll(v.text.c_str(), &end, 10);
  if (errno != 0 || end == v.text.c_str() || *end != '\0') {
    return Status::Corruption("json: bad int64 \"" + v.text + "\"");
  }
  return out;
}

}  // namespace

Status ValidateJsonSyntax(const std::string& text) {
  return JsonParser(text).Parse().status();
}

Result<MetricsSnapshot> ParseMetricsJson(const std::string& text) {
  auto root = JsonParser(text).Parse();
  if (!root.ok()) return root.status();
  if (root->kind != JsonValue::Kind::kObject) {
    return Status::Corruption("metrics json: top level is not an object");
  }
  MetricsSnapshot snap;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* v = root->Find(section);
    if (v != nullptr && v->kind != JsonValue::Kind::kObject) {
      return Status::Corruption(std::string("metrics json: \"") + section +
                                "\" is not an object");
    }
  }
  if (const JsonValue* counters = root->Find("counters")) {
    for (const auto& [name, v] : counters->object) {
      auto value = AsU64(v);
      if (!value.ok()) return value.status();
      snap.counters.emplace_back(name, *value);
    }
  }
  if (const JsonValue* gauges = root->Find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      auto value = AsI64(v);
      if (!value.ok()) return value.status();
      snap.gauges.emplace_back(name, *value);
    }
  }
  if (const JsonValue* histograms = root->Find("histograms")) {
    for (const auto& [name, v] : histograms->object) {
      HistogramSnapshot hs;
      hs.name = name;
      const JsonValue* count = v.Find("count");
      const JsonValue* sum = v.Find("sum");
      const JsonValue* buckets = v.Find("buckets");
      if (count == nullptr || sum == nullptr || buckets == nullptr ||
          buckets->kind != JsonValue::Kind::kArray) {
        return Status::Corruption("metrics json: histogram \"" + name +
                                  "\" missing count/sum/buckets");
      }
      auto c = AsU64(*count);
      auto s = AsU64(*sum);
      if (!c.ok()) return c.status();
      if (!s.ok()) return s.status();
      hs.count = *c;
      hs.sum = *s;
      for (const auto& pair : buckets->array) {
        if (pair.array.size() != 2) {
          return Status::Corruption("metrics json: bucket is not a pair");
        }
        auto idx = AsU64(pair.array[0]);
        auto n = AsU64(pair.array[1]);
        if (!idx.ok()) return idx.status();
        if (!n.ok()) return n.status();
        if (*idx >= hs.buckets.size()) {
          return Status::Corruption("metrics json: bucket index out of range");
        }
        hs.buckets[*idx] = *n;
      }
      snap.histograms.push_back(std::move(hs));
    }
  }
  return snap;
}

std::string FormatMetricsTable(const MetricsSnapshot& snap) {
  std::ostringstream out;
  char buf[256];
  if (!snap.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << buf;
    }
  }
  if (!snap.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-44s %20lld\n", name.c_str(),
                    static_cast<long long>(value));
      out << buf;
    }
  }
  if (!snap.histograms.empty()) {
    out << "histograms:                                      "
           "count         mean          p50          p99          max\n";
    for (const auto& h : snap.histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s %7llu %12.0f %12.0f %12.0f %12.0f\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.Mean(), h.Quantile(0.5), h.Quantile(0.99),
                    h.Quantile(1.0));
      out << buf;
    }
  }
  return out.str();
}

Status WriteMetricsFile(const MetricsSnapshot& snap, const std::string& path) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? ToJson(snap) : ToPrometheusText(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out << body;
    if (!out.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace telemetry
}  // namespace fresque
