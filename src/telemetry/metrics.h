#ifndef FRESQUE_TELEMETRY_METRICS_H_
#define FRESQUE_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace fresque {
namespace telemetry {

/// Process-wide metrics registry (DESIGN.md §11).
///
/// Hot-path writes (Counter::Add, Gauge::Set, Histogram::Record) are
/// single relaxed atomic RMWs — no locks, no allocation — so they are
/// safe to leave in the ingest path. Registration (Registry::Get*) takes
/// a mutex and allocates; call sites amortize it behind a function-local
/// static (see FRESQUE_COUNTER_ADD in telemetry/telemetry.h).
///
/// Reads are snapshot-on-demand: Registry::Snapshot() walks every metric
/// with relaxed loads. Counters read at different instants may be
/// mutually inconsistent by a few in-flight events — same convention as
/// engine::CollectorMetrics.

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, high watermark...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram over uint64 samples (typically nanoseconds).
///
/// Bucket b holds the samples whose bit width is b, i.e. the value range
/// [2^(b-1), 2^b - 1]; bucket 0 holds only zeros. 65 buckets cover the
/// whole uint64 range, so Record() is branch-free: one bit-scan plus two
/// relaxed fetch_adds. Roughly 2x resolution per bucket — enough to
/// separate a 10 us queue wait from a 10 ms fsync stall, which is the
/// question this repo's latency histograms exist to answer.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 65;

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  /// Convenience for elapsed-time deltas: clamps negatives to 0.
  void RecordNanos(int64_t ns) {
    Record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }

  static size_t BucketIndex(uint64_t v) {
    return static_cast<size_t>(std::bit_width(v));
  }
  /// Largest value stored in bucket `b` (inclusive).
  static uint64_t BucketUpperBound(size_t b) {
    return b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1;
  }
  /// Smallest value stored in bucket `b` (bucket 0 holds only zeros,
  /// bucket 1 only ones).
  static uint64_t BucketLowerBound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  uint64_t BucketValue(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void ResetForTest();

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of one histogram, with derived statistics.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBucketCount> buckets{};

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Approximate quantile (q in [0,1]), linearly interpolated inside the
  /// winning log2 bucket. Good to a factor of 2 by construction.
  double Quantile(double q) const;
};

/// Point-in-time copy of the whole registry. Plain values, no locking.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Name -> metric map. Pointers returned by Get* are stable for the
/// process lifetime; the registry never deletes a metric.
class Registry {
 public:
  /// Process-wide instance (leaked singleton, trivially destructible at
  /// exit per style rules).
  static Registry* Global();

  Counter* GetCounter(const std::string& name) FRESQUE_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) FRESQUE_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) FRESQUE_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const FRESQUE_EXCLUDES(mu_);

  /// Zeroes every registered metric (registrations and pointers survive).
  /// Test isolation only — racing writers see no torn state, but counts
  /// spanning the reset are meaningless.
  void ResetForTest() FRESQUE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FRESQUE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FRESQUE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FRESQUE_GUARDED_BY(mu_);
};

/// Prometheus text exposition format (one # TYPE line per metric,
/// histograms as cumulative _bucket{le=...}/_sum/_count series). Metric
/// names are sanitized ("ingest.records_in" -> fresque_ingest_records_in).
std::string ToPrometheusText(const MetricsSnapshot& snap);

/// JSON export: {"counters":{...},"gauges":{...},"histograms":{name:
/// {"count":c,"sum":s,"buckets":[[bucket_index,count],...]}}}. Bucket
/// indexes (not bounds) are emitted so uint64 bounds survive double-less
/// parsers; ParseMetricsJson reverses this exactly.
std::string ToJson(const MetricsSnapshot& snap);

/// Parses a ToJson() document back into a snapshot (used by the
/// `fresque_cli metrics-dump` subcommand and the golden-file tests).
Result<MetricsSnapshot> ParseMetricsJson(const std::string& text);

/// Generic JSON well-formedness check (full grammar, values discarded);
/// the trace golden test runs Chrome trace output through this.
Status ValidateJsonSyntax(const std::string& text);

/// Human-readable table of a snapshot (metrics-dump output).
std::string FormatMetricsTable(const MetricsSnapshot& snap);

/// Writes the snapshot to `path` atomically (tmp + rename): JSON when the
/// path ends in ".json", Prometheus text otherwise.
Status WriteMetricsFile(const MetricsSnapshot& snap, const std::string& path);

}  // namespace telemetry
}  // namespace fresque

#endif  // FRESQUE_TELEMETRY_METRICS_H_
