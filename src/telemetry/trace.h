#ifndef FRESQUE_TELEMETRY_TRACE_H_
#define FRESQUE_TELEMETRY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace fresque {
namespace telemetry {

/// Monotonic clock for spans and pipeline latency stamps.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the tracer) — only the pointer is stored.
struct TraceSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> duration_ns{0};
};

/// Per-thread fixed-size ring of completed spans.
///
/// Exactly one thread writes (the owner, via Record); the dumper reads
/// concurrently with relaxed loads. A span being overwritten mid-read can
/// yield a torn (name, start, duration) triple — acceptable for a
/// diagnostic trace, and race-free as far as TSan is concerned because
/// every field is atomic. Once `head` passes `capacity`, the oldest spans
/// are silently overwritten and counted as dropped.
class TraceBuffer {
 public:
  TraceBuffer(std::string thread_name, size_t capacity)
      : thread_name_(std::move(thread_name)), slots_(capacity) {}

  void Record(const char* name, int64_t start_ns, int64_t duration_ns) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    TraceSlot& slot = slots_[h % slots_.size()];
    slot.name.store(name, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_relaxed);
  }

  const std::string& thread_name() const { return thread_name_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    const uint64_t h = recorded();
    return h > slots_.size() ? h - slots_.size() : 0;
  }
  const TraceSlot& slot(size_t i) const { return slots_[i]; }

 private:
  const std::string thread_name_;
  std::vector<TraceSlot> slots_;
  std::atomic<uint64_t> head_{0};
};

struct TracerStats {
  uint64_t threads = 0;
  uint64_t recorded = 0;  ///< spans ever recorded, including overwritten
  uint64_t retained = 0;  ///< spans currently held in ring buffers
  uint64_t dropped = 0;   ///< spans overwritten by ring wraparound
};

/// Process-wide tracer. Disabled by default: ScopedSpan checks a relaxed
/// bool and does nothing else, so dormant spans cost ~1 ns. Enable()
/// allocates one ring buffer per thread on first span from that thread.
class Tracer {
 public:
  static Tracer* Global();

  /// Starts capturing. `capacity` is slots per thread ring.
  void Enable(size_t capacity = 1 << 16) FRESQUE_EXCLUDES(mu_);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Names the calling thread in trace output ("cn0", "merger"...). Safe
  /// to call whether or not tracing is enabled.
  void SetCurrentThreadName(const std::string& name) FRESQUE_EXCLUDES(mu_);

  /// Records a completed span on the calling thread's ring. No-op when
  /// disabled (callers normally go through ScopedSpan, which already
  /// checked).
  void Record(const char* name, int64_t start_ns, int64_t duration_ns)
      FRESQUE_EXCLUDES(mu_);

  TracerStats GetStats() const FRESQUE_EXCLUDES(mu_);

  /// Chrome trace_event JSON ("X" duration events + thread-name
  /// metadata): load the file in chrome://tracing or ui.perfetto.dev.
  std::string ToChromeTraceJson() const FRESQUE_EXCLUDES(mu_);
  Status WriteChromeTrace(const std::string& path) const
      FRESQUE_EXCLUDES(mu_);

  /// Disables tracing and discards all buffers. Threads re-register on
  /// their next span after a later Enable().
  void ResetForTest() FRESQUE_EXCLUDES(mu_);

 private:
  TraceBuffer* CurrentThreadBuffer() FRESQUE_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  size_t capacity_ FRESQUE_GUARDED_BY(mu_) = 1 << 16;
  /// Bumped by ResetForTest so stale thread_local pointers are refreshed.
  std::atomic<uint64_t> generation_{1};
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ FRESQUE_GUARDED_BY(mu_);
  std::vector<std::pair<uint64_t, std::string>> thread_names_
      FRESQUE_GUARDED_BY(mu_);  // (tid, name) set before first span
};

/// RAII span: records [construction, destruction) on the calling thread.
/// `name` must be a string literal.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::Global()->enabled()) {
      name_ = name;
      start_ns_ = NowNanos();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::Global()->Record(name_, start_ns_, NowNanos() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace telemetry
}  // namespace fresque

#endif  // FRESQUE_TELEMETRY_TRACE_H_
