#ifndef FRESQUE_TELEMETRY_TELEMETRY_H_
#define FRESQUE_TELEMETRY_TELEMETRY_H_

/// Instrumentation macros — the only telemetry API the pipeline code
/// uses directly. With the default build (FRESQUE_TELEMETRY=ON) they
/// expand to relaxed-atomic registry updates and RAII spans; configure
/// with -DFRESQUE_TELEMETRY=OFF and every macro compiles to nothing
/// (scripts/overhead_check.sh holds the ON build to <5% overhead against
/// this baseline).
///
///   FRESQUE_COUNTER_ADD("ingest.records_in", n);
///   FRESQUE_GAUGE_SET("node.cn0.queue_depth", depth);
///   FRESQUE_HISTOGRAM_RECORD("wal.fsync_ns", elapsed_ns);
///   FRESQUE_TRACE_SPAN("parse");          // RAII: spans the full scope
///   int64_t t0 = FRESQUE_TELEMETRY_NOW_NS();
///
/// Metric names must be string literals: the registry lookup is cached in
/// a function-local static, so each call site pays the mutex exactly once.

#ifndef FRESQUE_TELEMETRY_DISABLED

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#define FRESQUE_TELEMETRY_ENABLED 1

#define FRESQUE_COUNTER_ADD(name, delta)                                   \
  do {                                                                     \
    static ::fresque::telemetry::Counter* fresque_counter_ =               \
        ::fresque::telemetry::Registry::Global()->GetCounter(name);        \
    fresque_counter_->Add(static_cast<uint64_t>(delta));                   \
  } while (0)

#define FRESQUE_GAUGE_SET(name, value)                                     \
  do {                                                                     \
    static ::fresque::telemetry::Gauge* fresque_gauge_ =                   \
        ::fresque::telemetry::Registry::Global()->GetGauge(name);          \
    fresque_gauge_->Set(static_cast<int64_t>(value));                      \
  } while (0)

#define FRESQUE_HISTOGRAM_RECORD(name, nanos)                              \
  do {                                                                     \
    static ::fresque::telemetry::Histogram* fresque_histogram_ =           \
        ::fresque::telemetry::Registry::Global()->GetHistogram(name);      \
    fresque_histogram_->RecordNanos(static_cast<int64_t>(nanos));          \
  } while (0)

#define FRESQUE_TELEMETRY_CONCAT_(a, b) a##b
#define FRESQUE_TELEMETRY_CONCAT(a, b) FRESQUE_TELEMETRY_CONCAT_(a, b)

/// Spans the enclosing scope; ~1 ns when tracing is not Enable()d.
#define FRESQUE_TRACE_SPAN(name)                            \
  ::fresque::telemetry::ScopedSpan FRESQUE_TELEMETRY_CONCAT( \
      fresque_span_, __LINE__)(name)

#define FRESQUE_TELEMETRY_NOW_NS() ::fresque::telemetry::NowNanos()

#else  // FRESQUE_TELEMETRY_DISABLED

#include <cstdint>

#define FRESQUE_TELEMETRY_ENABLED 0

// sizeof keeps the operands syntactically checked (and "uses" local
// variables, silencing -Wunused under -Werror) without evaluating them.
#define FRESQUE_COUNTER_ADD(name, delta) \
  do {                                   \
    (void)sizeof(name);                  \
    (void)sizeof(delta);                 \
  } while (0)

#define FRESQUE_GAUGE_SET(name, value) \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(value);               \
  } while (0)

#define FRESQUE_HISTOGRAM_RECORD(name, nanos) \
  do {                                        \
    (void)sizeof(name);                       \
    (void)sizeof(nanos);                      \
  } while (0)

#define FRESQUE_TRACE_SPAN(name) ((void)sizeof(name))

#define FRESQUE_TELEMETRY_NOW_NS() int64_t{0}

#endif  // FRESQUE_TELEMETRY_DISABLED

#endif  // FRESQUE_TELEMETRY_TELEMETRY_H_
