#include "telemetry/trace.h"

#include <fstream>
#include <sstream>

namespace fresque {
namespace telemetry {

namespace {

/// Small dense thread id (the value of a std::thread::id is opaque and
/// unordered; Chrome trace wants small integers).
uint64_t CurrentTid() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

struct ThreadCache {
  uint64_t generation = 0;
  TraceBuffer* buffer = nullptr;
};

ThreadCache& LocalCache() {
  thread_local ThreadCache cache;
  return cache;
}

void JsonEscapeInto(const std::string& s, std::ostringstream& out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

}  // namespace

Tracer* Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: lives past exit
  return tracer;
}

void Tracer::Enable(size_t capacity) {
  {
    MutexLock lock(mu_);
    capacity_ = capacity > 0 ? capacity : 1;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  const uint64_t tid = CurrentTid();
  MutexLock lock(mu_);
  for (auto& [id, n] : thread_names_) {
    if (id == tid) {
      n = name;
      return;
    }
  }
  thread_names_.emplace_back(tid, name);
}

TraceBuffer* Tracer::CurrentThreadBuffer() {
  ThreadCache& cache = LocalCache();
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  if (cache.buffer != nullptr && cache.generation == gen) {
    return cache.buffer;
  }
  const uint64_t tid = CurrentTid();
  MutexLock lock(mu_);
  std::string name = "thread-" + std::to_string(tid);
  for (const auto& [id, n] : thread_names_) {
    if (id == tid) name = n;
  }
  buffers_.push_back(std::make_unique<TraceBuffer>(std::move(name), capacity_));
  cache.buffer = buffers_.back().get();
  cache.generation = gen;
  return cache.buffer;
}

void Tracer::Record(const char* name, int64_t start_ns, int64_t duration_ns) {
  if (!enabled()) return;
  CurrentThreadBuffer()->Record(name, start_ns, duration_ns);
}

TracerStats Tracer::GetStats() const {
  MutexLock lock(mu_);
  TracerStats stats;
  stats.threads = buffers_.size();
  for (const auto& buf : buffers_) {
    stats.recorded += buf->recorded();
    stats.dropped += buf->dropped();
    stats.retained += buf->recorded() - buf->dropped();
  }
  return stats;
}

std::string Tracer::ToChromeTraceJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& event) {
    out << (first ? "\n" : ",\n") << event;
    first = false;
  };
  for (size_t t = 0; t < buffers_.size(); ++t) {
    const TraceBuffer& buf = *buffers_[t];
    const uint64_t tid = t + 1;
    {
      std::ostringstream meta;
      meta << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << tid << ", \"args\": {\"name\": \"";
      JsonEscapeInto(buf.thread_name(), meta);
      meta << "\"}}";
      emit(meta.str());
    }
    const uint64_t recorded = buf.recorded();
    const size_t n =
        recorded < buf.capacity() ? static_cast<size_t>(recorded)
                                  : buf.capacity();
    for (size_t i = 0; i < n; ++i) {
      const TraceSlot& slot = buf.slot(i);
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      const int64_t start =
          slot.start_ns.load(std::memory_order_relaxed);
      const int64_t dur =
          slot.duration_ns.load(std::memory_order_relaxed);
      std::ostringstream ev;
      // Chrome trace timestamps are microseconds (doubles are fine).
      ev << "{\"name\": \"" << name
         << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << static_cast<double>(start) / 1000.0
         << ", \"dur\": " << static_cast<double>(dur) / 1000.0 << "}";
      emit(ev.str());
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string body = ToChromeTraceJson();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out << body;
    if (!out.good()) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

void Tracer::ResetForTest() {
  enabled_.store(false, std::memory_order_relaxed);
  MutexLock lock(mu_);
  buffers_.clear();
  thread_names_.clear();
  // Release pairs with the acquire in CurrentThreadBuffer: a thread that
  // sees the new generation also sees the cleared buffer list.
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace telemetry
}  // namespace fresque
