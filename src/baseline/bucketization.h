#ifndef FRESQUE_BASELINE_BUCKETIZATION_H_
#define FRESQUE_BASELINE_BUCKETIZATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace fresque {
namespace baseline {

/// Bucketization baseline (Table 1): the attribute domain splits into a
/// fixed number of equal-width buckets; each bucket gets a random opaque
/// tag. The client keeps the tag directory; the server sees only tags and
/// returns whole buckets, so every query over-fetches up to two bucket
/// widths (false positives filtered client-side). No formal security
/// guarantee: bucket cardinalities leak the histogram at bucket
/// granularity.
class Bucketization {
 public:
  /// `num_buckets` >= 1 over the domain [domain_min, domain_max).
  static Result<Bucketization> Create(const Bytes& key, double domain_min,
                                      double domain_max,
                                      size_t num_buckets);

  /// Opaque tag of the bucket covering `v` (what the server indexes by).
  Result<uint64_t> TagOf(double v) const;

  /// Tags of every bucket intersecting [lo, hi] — the query the client
  /// sends to the server.
  Result<std::vector<uint64_t>> TagsForRange(double lo, double hi) const;

  size_t num_buckets() const { return tags_.size(); }
  /// Client-side directory size in bytes.
  size_t DirectoryBytes() const { return tags_.size() * sizeof(uint64_t); }

  /// Expected over-fetch factor for queries of width `w`: buckets must be
  /// returned whole, so up to (w + 2*bucket_width) / w of the data
  /// qualifies.
  double OverfetchFactor(double query_width) const;

 private:
  Bucketization(double lo, double hi, std::vector<uint64_t> tags)
      : lo_(lo), hi_(hi), tags_(std::move(tags)) {}

  size_t BucketIndex(double v) const;

  double lo_;
  double hi_;
  std::vector<uint64_t> tags_;  // bucket index -> random tag
};

}  // namespace baseline
}  // namespace fresque

#endif  // FRESQUE_BASELINE_BUCKETIZATION_H_
