#include "baseline/bucketization.h"

#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace fresque {
namespace baseline {

Result<Bucketization> Bucketization::Create(const Bytes& key,
                                            double domain_min,
                                            double domain_max,
                                            size_t num_buckets) {
  if (!(domain_max > domain_min)) {
    return Status::InvalidArgument("bucketization domain must be non-empty");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  auto digest = crypto::Sha256::Hash(key);
  uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | digest[i];
  crypto::SecureRandom prf(seed);
  std::vector<uint64_t> tags(num_buckets);
  for (auto& t : tags) t = prf.NextU64();
  return Bucketization(domain_min, domain_max, std::move(tags));
}

size_t Bucketization::BucketIndex(double v) const {
  double width = (hi_ - lo_) / static_cast<double>(tags_.size());
  if (v <= lo_) return 0;
  size_t idx = static_cast<size_t>((v - lo_) / width);
  return idx >= tags_.size() ? tags_.size() - 1 : idx;
}

Result<uint64_t> Bucketization::TagOf(double v) const {
  if (v < lo_ || v >= hi_) {
    return Status::OutOfRange("value outside bucketized domain");
  }
  return tags_[BucketIndex(v)];
}

Result<std::vector<uint64_t>> Bucketization::TagsForRange(double lo,
                                                          double hi) const {
  if (lo > hi) return Status::InvalidArgument("empty range");
  size_t first = BucketIndex(lo < lo_ ? lo_ : lo);
  size_t last = BucketIndex(hi >= hi_ ? hi_ - 1e-9 : hi);
  std::vector<uint64_t> out;
  out.reserve(last - first + 1);
  for (size_t i = first; i <= last; ++i) out.push_back(tags_[i]);
  return out;
}

double Bucketization::OverfetchFactor(double query_width) const {
  if (query_width <= 0) return 1.0;
  double bucket_width = (hi_ - lo_) / static_cast<double>(tags_.size());
  return (query_width + 2 * bucket_width) / query_width;
}

}  // namespace baseline
}  // namespace fresque
