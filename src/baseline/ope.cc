#include "baseline/ope.h"

#include <algorithm>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace fresque {
namespace baseline {

Result<OpeScheme> OpeScheme::Create(const Bytes& key, uint64_t domain_size,
                                    uint64_t max_gap) {
  if (domain_size == 0) {
    return Status::InvalidArgument("OPE domain must be non-empty");
  }
  if (max_gap < 2) {
    return Status::InvalidArgument("OPE max gap must be >= 2");
  }
  // Key the gap stream with a hash of the key so equal keys give equal
  // mappings and different keys diverge completely.
  auto digest = crypto::Sha256::Hash(key);
  uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | digest[i];
  crypto::SecureRandom prf(seed);

  std::vector<uint64_t> cum(domain_size);
  uint64_t acc = prf.NextBounded(max_gap) + 1;
  for (uint64_t v = 0; v < domain_size; ++v) {
    cum[v] = acc;
    acc += prf.NextBounded(max_gap) + 1;  // gaps >= 1 keep strict order
  }
  return OpeScheme(std::move(cum));
}

Result<uint64_t> OpeScheme::Encrypt(uint64_t v) const {
  if (v >= cum_.size()) {
    return Status::OutOfRange("OPE plaintext outside domain");
  }
  return cum_[v];
}

Result<uint64_t> OpeScheme::Decrypt(uint64_t c) const {
  auto it = std::lower_bound(cum_.begin(), cum_.end(), c);
  if (it == cum_.end() || *it != c) {
    return Status::NotFound("not a valid OPE ciphertext");
  }
  return static_cast<uint64_t>(it - cum_.begin());
}

Result<std::pair<uint64_t, uint64_t>> OpeScheme::EncryptRange(
    uint64_t lo, uint64_t hi) const {
  if (lo > hi) return Status::InvalidArgument("empty OPE range");
  auto clo = Encrypt(lo);
  auto chi = Encrypt(hi);
  if (!clo.ok()) return clo.status();
  if (!chi.ok()) return chi.status();
  return std::make_pair(*clo, *chi);
}

}  // namespace baseline
}  // namespace fresque
