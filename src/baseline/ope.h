#ifndef FRESQUE_BASELINE_OPE_H_
#define FRESQUE_BASELINE_OPE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace fresque {
namespace baseline {

/// Order-preserving encryption over an integer domain [0, domain_size):
/// ciphertext(v) = base + sum of keyed pseudo-random gaps up to v, so
/// v1 < v2  <=>  Enc(v1) < Enc(v2).
///
/// Implemented as one of Table 1's comparison points. Range predicates
/// evaluate directly on ciphertexts — no index needed — but the scheme
/// leaks the total order (and with it the plaintext distribution), which
/// the paper's Table 1 flags as the lack of formal security guarantees.
/// The bench demonstrates that leak empirically (rank correlation 1).
class OpeScheme {
 public:
  /// Expands the keyed gap table for the whole domain. O(domain_size)
  /// time and 8 bytes per domain value.
  static Result<OpeScheme> Create(const Bytes& key, uint64_t domain_size,
                                  uint64_t max_gap = 16);

  /// Deterministic order-preserving ciphertext of `v`.
  Result<uint64_t> Encrypt(uint64_t v) const;

  /// Inverts a ciphertext (binary search over the monotone table).
  Result<uint64_t> Decrypt(uint64_t c) const;

  /// Ciphertext interval equivalent to the plaintext range [lo, hi].
  Result<std::pair<uint64_t, uint64_t>> EncryptRange(uint64_t lo,
                                                     uint64_t hi) const;

  uint64_t domain_size() const { return cum_.size(); }
  /// Bytes of key-dependent state the encryptor must keep.
  size_t StateBytes() const { return cum_.size() * sizeof(uint64_t); }

 private:
  explicit OpeScheme(std::vector<uint64_t> cum) : cum_(std::move(cum)) {}

  std::vector<uint64_t> cum_;  // cum_[v] = Enc(v), strictly increasing
};

}  // namespace baseline
}  // namespace fresque

#endif  // FRESQUE_BASELINE_OPE_H_
