#include "dp/individual_ledger.h"

#include <cassert>

namespace fresque {
namespace dp {

IndividualLedger::IndividualLedger(double total_epsilon)
    : total_(total_epsilon) {
  assert(total_epsilon > 0);
}

Status IndividualLedger::Admit(uint64_t individual, double epsilon) {
  if (epsilon <= 0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  MutexLock lock(mu_);
  double& spent = spent_[individual];
  if (spent + epsilon > total_ * (1.0 + 1e-9)) {
    return Status::ResourceExhausted(
        "individual " + std::to_string(individual) +
        " has consumed " + std::to_string(spent) + " of " +
        std::to_string(total_));
  }
  spent += epsilon;
  return Status::OK();
}

double IndividualLedger::Spent(uint64_t individual) const {
  MutexLock lock(mu_);
  auto it = spent_.find(individual);
  return it == spent_.end() ? 0.0 : it->second;
}

double IndividualLedger::Remaining(uint64_t individual) const {
  return total_ - Spent(individual);
}

size_t IndividualLedger::size() const {
  MutexLock lock(mu_);
  return spent_.size();
}

}  // namespace dp
}  // namespace fresque
