#ifndef FRESQUE_DP_BUDGET_H_
#define FRESQUE_DP_BUDGET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace fresque {
namespace dp {

/// Tracks cumulative epsilon consumption across publications under
/// sequential composition (Theorem 1 of the paper): the epsilons of all
/// mechanisms run over the same individual's data add up.
///
/// The FluTracking-style deployment (paper §8) divides a total budget
/// over a retention horizon — e.g. epsilon_total over 52 weekly
/// publications — which `SplitEvenly` models.
class BudgetAccountant {
 public:
  /// `total_epsilon` must be positive.
  explicit BudgetAccountant(double total_epsilon);

  /// Attempts to reserve `epsilon` for one mechanism invocation. Fails
  /// with ResourceExhausted once the total would be exceeded.
  Status Spend(double epsilon, const std::string& label)
      FRESQUE_EXCLUDES(mu_);

  double total_epsilon() const { return total_; }
  double spent() const FRESQUE_EXCLUDES(mu_);
  double remaining() const FRESQUE_EXCLUDES(mu_);

  /// Per-publication epsilon when the total is split evenly over
  /// `num_publications` sequential publications.
  static double SplitEvenly(double total_epsilon, size_t num_publications);

  /// Labels of all successful spends, in order (for audit output).
  std::vector<std::string> History() const FRESQUE_EXCLUDES(mu_);

 private:
  const double total_;
  mutable Mutex mu_;
  double spent_ FRESQUE_GUARDED_BY(mu_) = 0.0;
  std::vector<std::string> history_ FRESQUE_GUARDED_BY(mu_);
};

}  // namespace dp
}  // namespace fresque

#endif  // FRESQUE_DP_BUDGET_H_
