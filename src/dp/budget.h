#ifndef FRESQUE_DP_BUDGET_H_
#define FRESQUE_DP_BUDGET_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace fresque {
namespace dp {

/// Tracks cumulative epsilon consumption across publications under
/// sequential composition (Theorem 1 of the paper): the epsilons of all
/// mechanisms run over the same individual's data add up.
///
/// The FluTracking-style deployment (paper §8) divides a total budget
/// over a retention horizon — e.g. epsilon_total over 52 weekly
/// publications — which `SplitEvenly` models.
class BudgetAccountant {
 public:
  /// `total_epsilon` must be positive.
  explicit BudgetAccountant(double total_epsilon);

  /// Attempts to reserve `epsilon` for one mechanism invocation. Fails
  /// with ResourceExhausted once the total would be exceeded.
  Status Spend(double epsilon, const std::string& label);

  double total_epsilon() const { return total_; }
  double spent() const;
  double remaining() const;

  /// Per-publication epsilon when the total is split evenly over
  /// `num_publications` sequential publications.
  static double SplitEvenly(double total_epsilon, size_t num_publications);

  /// Labels of all successful spends, in order (for audit output).
  std::vector<std::string> History() const;

 private:
  const double total_;
  mutable std::mutex mu_;
  double spent_ = 0.0;
  std::vector<std::string> history_;
};

}  // namespace dp
}  // namespace fresque

#endif  // FRESQUE_DP_BUDGET_H_
