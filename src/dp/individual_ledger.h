#ifndef FRESQUE_DP_INDIVIDUAL_LEDGER_H_
#define FRESQUE_DP_INDIVIDUAL_LEDGER_H_

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace fresque {
namespace dp {

/// Per-individual budget management for multi-insertion workloads
/// (paper §8): when the same participant submits records to several
/// publications, sequential composition charges that individual the sum
/// of the publications' epsilons — not the system-wide average.
///
/// The ledger tracks, per individual, how much epsilon their submissions
/// have consumed, and refuses admissions that would push them past the
/// total. The FluTracking pattern — at most one record per individual
/// per weekly publication, 52 publications per year — then enforces
/// itself: Admit(id, eps_week) succeeds exactly 52 times per id when
/// eps_week = eps_total / 52.
class IndividualLedger {
 public:
  /// `total_epsilon` each individual may consume over the retention
  /// horizon; must be positive.
  explicit IndividualLedger(double total_epsilon);

  /// Charges `epsilon` to `individual` for participating in the current
  /// publication. ResourceExhausted once the individual's budget would
  /// be exceeded (the submission must then be rejected or deferred).
  Status Admit(uint64_t individual, double epsilon) FRESQUE_EXCLUDES(mu_);

  /// Epsilon already consumed by `individual` (0 if never seen).
  double Spent(uint64_t individual) const FRESQUE_EXCLUDES(mu_);

  /// Remaining budget for `individual`.
  double Remaining(uint64_t individual) const FRESQUE_EXCLUDES(mu_);

  /// Individuals tracked so far.
  size_t size() const FRESQUE_EXCLUDES(mu_);

  double total_epsilon() const { return total_; }

 private:
  const double total_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, double> spent_ FRESQUE_GUARDED_BY(mu_);
};

}  // namespace dp
}  // namespace fresque

#endif  // FRESQUE_DP_INDIVIDUAL_LEDGER_H_
