#include "dp/budget.h"

#include <cassert>

namespace fresque {
namespace dp {

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_(total_epsilon) {
  assert(total_epsilon > 0.0);
}

Status BudgetAccountant::Spend(double epsilon, const std::string& label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  MutexLock lock(mu_);
  // Tolerate floating-point drift when budgets are split evenly.
  if (spent_ + epsilon > total_ * (1.0 + 1e-9)) {
    return Status::ResourceExhausted(
        "privacy budget exhausted: spent " + std::to_string(spent_) +
        " of " + std::to_string(total_) + ", requested " +
        std::to_string(epsilon) + " for " + label);
  }
  spent_ += epsilon;
  history_.push_back(label);
  return Status::OK();
}

double BudgetAccountant::spent() const {
  MutexLock lock(mu_);
  return spent_;
}

double BudgetAccountant::remaining() const {
  MutexLock lock(mu_);
  return total_ - spent_;
}

double BudgetAccountant::SplitEvenly(double total_epsilon,
                                     size_t num_publications) {
  if (num_publications == 0) return 0.0;
  return total_epsilon / static_cast<double>(num_publications);
}

std::vector<std::string> BudgetAccountant::History() const {
  MutexLock lock(mu_);
  return history_;
}

}  // namespace dp
}  // namespace fresque
