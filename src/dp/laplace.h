#ifndef FRESQUE_DP_LAPLACE_H_
#define FRESQUE_DP_LAPLACE_H_

#include <cstdint>

#include "common/result.h"
#include "crypto/chacha20.h"

namespace fresque {
namespace dp {

/// Laplace(0, b) density at x.
double LaplacePdf(double x, double scale);

/// Laplace(0, b) cumulative distribution at x.
double LaplaceCdf(double x, double scale);

/// Inverse CDF (quantile) of Laplace(0, b): the x with CDF(x) = p,
/// p in (0, 1). Used both for sampling and for the randomer buffer bound
/// (paper §5.2: per-leaf dummy upper bound s_i at probability δ').
double LaplaceQuantile(double p, double scale);

/// Draws Laplace(0, scale) noise via inverse-CDF sampling over a
/// cryptographically strong uniform source. The PINED-RQ index perturbs
/// every histogram count with one independent draw.
class LaplaceSampler {
 public:
  /// `scale` = sensitivity / epsilon; must be > 0.
  /// `rng` must outlive the sampler.
  LaplaceSampler(double scale, crypto::SecureRandom* rng);

  double Sample();

  /// Noise rounded to the nearest integer, as applied to histogram counts.
  int64_t SampleInteger();

  double scale() const { return scale_; }

 private:
  double scale_;
  crypto::SecureRandom* rng_;
};

/// Upper bound, holding with probability >= delta, on a single
/// max(0, round(Lap(0, scale))) draw — the number of dummy records one
/// leaf can demand. (Positive noise on a leaf becomes dummy records.)
int64_t DummyUpperBoundPerLeaf(double scale, double delta);

/// Paper-style bound on the total dummy records of an index: every leaf
/// bounded at the same per-leaf probability delta' (the paper sets
/// delta' = 99%), T = num_leaves * s.
int64_t DummyUpperBoundTotal(double scale, double delta_per_leaf,
                             size_t num_leaves);

/// Stricter variant: T holds *simultaneously* for all leaves with
/// probability >= delta, via a union bound (per-leaf level
/// 1 - (1-delta)/num_leaves). Used by the ablation benchmarks.
int64_t DummyUpperBoundTotalUnion(double scale, double delta,
                                  size_t num_leaves);

/// Randomer buffer capacity S = alpha * T (paper §5.2; alpha >= 2).
Result<size_t> RandomerBufferSize(double scale, double delta,
                                  size_t num_leaves, double alpha);

}  // namespace dp
}  // namespace fresque

#endif  // FRESQUE_DP_LAPLACE_H_
