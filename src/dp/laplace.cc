#include "dp/laplace.h"

#include <algorithm>
#include <cmath>

namespace fresque {
namespace dp {

double LaplacePdf(double x, double scale) {
  return std::exp(-std::abs(x) / scale) / (2.0 * scale);
}

double LaplaceCdf(double x, double scale) {
  if (x < 0) return 0.5 * std::exp(x / scale);
  return 1.0 - 0.5 * std::exp(-x / scale);
}

double LaplaceQuantile(double p, double scale) {
  // F^{-1}(p) = -b * sgn(p - 1/2) * ln(1 - 2|p - 1/2|)
  double u = p - 0.5;
  double sign = (u > 0) - (u < 0);
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

LaplaceSampler::LaplaceSampler(double scale, crypto::SecureRandom* rng)
    : scale_(scale), rng_(rng) {}

double LaplaceSampler::Sample() {
  // Inverse-CDF sampling; NextDoubleOpenLow keeps log()'s argument > 0.
  double u = rng_->NextDoubleOpenLow() - 0.5;
  double sign = (u > 0) - (u < 0);
  double mag = std::abs(u);
  // Guard the p == 1 edge (u == 0.5 exactly) which maps to +inf.
  mag = std::min(mag, 0.5 - 1e-17);
  return -scale_ * sign * std::log(1.0 - 2.0 * mag);
}

int64_t LaplaceSampler::SampleInteger() {
  return static_cast<int64_t>(std::llround(Sample()));
}

int64_t DummyUpperBoundPerLeaf(double scale, double delta) {
  if (delta >= 1.0) delta = 1.0 - 1e-12;
  if (delta <= 0.5) return 0;  // quantile is non-positive at or below median
  double q = LaplaceQuantile(delta, scale);
  return std::max<int64_t>(0, static_cast<int64_t>(std::ceil(q)));
}

int64_t DummyUpperBoundTotal(double scale, double delta_per_leaf,
                             size_t num_leaves) {
  if (num_leaves == 0) return 0;
  int64_t per_leaf = DummyUpperBoundPerLeaf(scale, delta_per_leaf);
  return per_leaf * static_cast<int64_t>(num_leaves);
}

int64_t DummyUpperBoundTotalUnion(double scale, double delta,
                                  size_t num_leaves) {
  if (num_leaves == 0) return 0;
  // If each leaf exceeds its bound with probability (1-delta)/m, all m
  // leaves respect theirs simultaneously with probability >= delta.
  double per_leaf_delta =
      1.0 - (1.0 - delta) / static_cast<double>(num_leaves);
  int64_t per_leaf = DummyUpperBoundPerLeaf(scale, per_leaf_delta);
  return per_leaf * static_cast<int64_t>(num_leaves);
}

Result<size_t> RandomerBufferSize(double scale, double delta,
                                  size_t num_leaves, double alpha) {
  if (alpha < 2.0) {
    return Status::InvalidArgument(
        "randomer coefficient alpha must be >= 2 (paper §5.2)");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("Laplace scale must be positive");
  }
  int64_t total = DummyUpperBoundTotal(scale, delta, num_leaves);
  double size = alpha * static_cast<double>(total);
  // Never return a degenerate buffer even for tiny domains.
  return static_cast<size_t>(std::max(size, 16.0));
}

}  // namespace dp
}  // namespace fresque
