#ifndef FRESQUE_SIM_COST_MODEL_H_
#define FRESQUE_SIM_COST_MODEL_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "record/dataset.h"

namespace fresque {
namespace sim {

/// Measured per-record service times (nanoseconds) of every pipeline
/// stage, for one workload.
///
/// The paper's throughput experiments ran on a 17-node Galactica cluster;
/// this host has one core, so real threads cannot exhibit 12-way scaling.
/// Instead the *actual component code* is run here, single-threaded, to
/// measure honest per-record costs, and the queueing simulator
/// (pipeline.h) replays the paper's topologies with those costs. See
/// DESIGN.md §2 for the substitution argument.
struct CostModel {
  std::string dataset;

  // Shared primitive costs.
  double parse_ns = 0;           ///< raw line -> typed record
  double leaf_offset_ns = 0;     ///< O(1) array-of-leaves offset (FRESQUE)
  double encrypt_ns = 0;         ///< record serialize + AES-CBC encrypt
  double encrypt_dummy_ns = 0;   ///< dummy padding encrypt
  double tree_walk_ns = 0;       ///< O(log_k n) checker descent (PINED-RQ++)
  double tree_update_ns = 0;     ///< O(log_k n) path update (PINED-RQ++)
  double al_update_ns = 0;       ///< O(1) AL/ALN admit (FRESQUE)
  double table_add_ns = 0;       ///< matching-table insert (PINED-RQ++)
  double randomer_push_ns = 0;   ///< randomer buffer insert + eviction
  double hop_ns = 0;             ///< mailbox enqueue+dequeue (one link)
  double cloud_store_ns = 0;     ///< segment append + metadata cache
  /// Shard-router placement: LineParser::IndexedValue substring extraction
  /// + the O(1) ShardPlacement lookup (src/shard). Far below parse_ns by
  /// design — the router must not re-introduce the parsing bottleneck.
  double route_extract_ns = 0;

  /// Mean ciphertext size (bytes) — reported for context.
  double ciphertext_bytes = 0;

  std::string ToString() const;
};

/// Runs each component's real code over `samples` generated records and
/// returns the measured means. Deterministic workload (seeded), wall-clock
/// timed.
Result<CostModel> MeasureCosts(const record::DatasetSpec& spec,
                               size_t samples = 20000, uint64_t seed = 1);

/// Cost profile emulating the paper's Table-2 cluster (Java 1.8 on 2.4 GHz
/// 2-CPU computing-node VMs, TCP links) for the NASA workload.
///
/// Derivation: the profile is fitted to the paper's *reported* anchors and
/// then validated against the rest of its curves —
///   non-parallel PINED-RQ++ NASA ............ 3,159 rec/s  (§7.2a)
///   FRESQUE NASA @ 12 computing nodes ....... ~142k rec/s  (Fig 9)
///   "parsing halves the parallel collector" .. parse >= checker (§4.2)
/// which pins parse+walk (dispatcher), parse+encrypt (computing node) and
/// update+table (worker) up to small slack. All remaining curves — the
/// 43x/5.6x improvements, the plateau positions — are *predictions* of
/// the queueing model, not inputs. See EXPERIMENTS.md.
CostModel PaperProfileNasa();

/// Paper-cluster profile for Gowalla. Anchors: non-parallel PINED-RQ++
/// 13,223 rec/s (§7.2a) and the FRESQUE plateau at ~165k rec/s from 8
/// computing nodes (Fig 9).
CostModel PaperProfileGowalla();

}  // namespace sim
}  // namespace fresque

#endif  // FRESQUE_SIM_COST_MODEL_H_
